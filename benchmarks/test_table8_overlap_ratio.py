"""Benchmark E4 — Table VIII: robustness to the training overlap-user ratio.

Paper shape to reproduce: CDRIB's metrics improve (or at least do not
degrade) as more overlapping users are available for training, and CDRIB
stays ahead of SA-VAE at every ratio.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_overlap_ratio

_COLUMNS = ["method", "overlap_ratio", "direction", "MRR", "NDCG@10", "HR@10"]
_RATIOS = (0.2, 0.4, 0.6, 0.8, 1.0)


def test_table8_overlap_ratio(benchmark, profile, bench_scenarios, strict_shapes):
    scenario_name = bench_scenarios[0]
    rows = benchmark.pedantic(
        run_overlap_ratio, args=(scenario_name,),
        kwargs={"ratios": _RATIOS, "profile": profile, "compare_savae": True},
        rounds=1, iterations=1,
    )
    print(f"\n=== Table VIII: overlap-ratio robustness on {scenario_name} ===")
    print(format_rows(rows, _COLUMNS))

    def mean_mrr(method, ratio):
        values = [row["MRR"] for row in rows
                  if row["method"] == method and row["overlap_ratio"] == ratio]
        return float(np.mean(values))

    ratios = sorted({row["overlap_ratio"] for row in rows})
    assert ratios == sorted(_RATIOS)

    cdrib_avg = np.mean([mean_mrr("CDRIB", r) for r in ratios])
    savae_avg = np.mean([mean_mrr("SA-VAE", r) for r in ratios])
    print(f"mean MRR across ratios: CDRIB {cdrib_avg:.2f}, SA-VAE {savae_avg:.2f}")
    if strict_shapes:
        # Shape 1: CDRIB with the full bridge is at least as good as with the
        # smallest bridge (robustness trend, allowing small-scale noise).
        assert mean_mrr("CDRIB", 1.0) >= 0.7 * mean_mrr("CDRIB", ratios[0])
        # Shape 2: CDRIB beats SA-VAE on average across ratios.
        assert cdrib_avg > savae_avg
