"""Training throughput benchmark: the fast training engine vs the seed path.

Acceptance gates for the fast training engine:

* at the smoke profile, the fused engine reaches at least 3x the trainer
  steps/sec of the seed full-graph path (the ``"reference"`` engine, which
  preserves the seed implementation op by op),
* both fast engines stay strictly faithful: their per-step losses match the
  reference trajectory to 1e-10 (observed: ~1e-15) on the very steps being
  timed.

At the larger fast/full profiles the 3x smoke gate is replaced by a looser
regression guard — the fused-kernel advantage is partly Python-overhead
relief, which shrinks relative to BLAS time as the graphs grow.

Run with ``pytest benchmarks/test_training_throughput.py -s`` to see the
throughput table.
"""

import pytest

from repro.experiments import format_rows, run_training_benchmark

SCENARIO = "game_video"
ENGINES = ("reference", "fused", "subgraph")


@pytest.fixture(scope="module")
def throughput_rows(profile):
    rows = run_training_benchmark(SCENARIO, engines=ENGINES,
                                  steps_per_block=15, repeats=5,
                                  profile=profile)
    print("\n" + format_rows(rows))
    return rows


def _by_engine(rows):
    return {row["engine"]: row for row in rows}


class TestTrainingThroughput:
    def test_row_schema(self, throughput_rows):
        assert {"engine", "steps_per_sec", "speedup_vs_reference",
                "max_loss_deviation"} <= set(throughput_rows[0])
        assert [row["engine"] for row in throughput_rows] == list(ENGINES)

    def test_fused_engine_at_least_3x_at_smoke(self, throughput_rows, profile):
        """Acceptance: fused trainer >= 3x seed steps/sec at smoke profile."""
        by_engine = _by_engine(throughput_rows)
        floor = 3.0 if profile.name == "smoke" else 1.5
        assert by_engine["fused"]["speedup_vs_reference"] >= floor, (
            f"fused engine speedup "
            f"{by_engine['fused']['speedup_vs_reference']:.2f}x under the "
            f"{floor}x floor at profile {profile.name!r}"
        )

    def test_subgraph_engine_not_slower_than_seed(self, throughput_rows):
        by_engine = _by_engine(throughput_rows)
        assert by_engine["subgraph"]["speedup_vs_reference"] >= 1.3

    def test_reference_row_is_the_baseline(self, throughput_rows):
        by_engine = _by_engine(throughput_rows)
        assert by_engine["reference"]["speedup_vs_reference"] == pytest.approx(1.0)
        assert by_engine["reference"]["max_loss_deviation"] == 0.0


class TestTrainingFaithfulness:
    def test_timed_losses_match_seed_to_1e10(self, throughput_rows):
        """Acceptance: the fast engines' losses equal the seed trajectory.

        The deviation is computed over the exact steps used for timing, so
        the benchmark cannot pass by trading correctness for speed.
        """
        for row in throughput_rows:
            assert row["max_loss_deviation"] <= 1e-10, (
                f"engine {row['engine']!r} deviated by "
                f"{row['max_loss_deviation']:.3e}"
            )
