"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints the
rows it produced, so ``pytest benchmarks/ --benchmark-only -s`` doubles as a
results report.  The workload size is controlled by the ``REPRO_BENCH_PROFILE``
environment variable (``smoke`` / ``fast`` / ``full``; default ``fast``).
"""

import os

import pytest

from repro.experiments import get_profile


def pytest_report_header(config):
    profile = get_profile()
    return (
        f"repro benchmark profile: {profile.name} "
        f"(scenario_scale={profile.scenario_scale}, "
        f"eval_negatives={profile.eval_negatives}, cdrib_epochs={profile.cdrib.epochs})"
    )


@pytest.fixture(scope="session")
def profile():
    """The experiment profile every benchmark runs under."""
    return get_profile()


@pytest.fixture(scope="session")
def strict_shapes(profile):
    """Whether to enforce the paper-shape assertions.

    The smoke profile trains for a handful of epochs purely to exercise the
    harness, so only schema checks are enforced there; the fast / full
    profiles also check the qualitative shapes reported by the paper.
    """
    return profile.name != "smoke"


@pytest.fixture(scope="session")
def bench_scenarios():
    """Scenario names to benchmark; override with REPRO_BENCH_SCENARIOS=a,b."""
    raw = os.environ.get("REPRO_BENCH_SCENARIOS", "")
    if raw.strip():
        return [name.strip() for name in raw.split(",") if name.strip()]
    return ["music_movie", "phone_elec", "cloth_sport", "game_video"]


@pytest.fixture(scope="session")
def suite_jobs():
    """Worker-pool size for suite benchmarks; override with REPRO_BENCH_JOBS=N."""
    raw = os.environ.get("REPRO_BENCH_JOBS", "").strip()
    return int(raw) if raw else 2
