"""Concurrent serving latency benchmark (``repro.experiments.loadgen``).

Drives the thread-safe :class:`~repro.serve.ServingFrontend` with concurrent
closed-loop client workers and reports the saturation-curve rows that
``bench-serve`` emits: users/sec plus p50/p90/p99 submit-to-result latency
per batch size x workers x backend configuration.

The gates here are *structural* — percentile ordering, positive throughput,
the cache earning hits on skewed traffic — not absolute latency numbers,
which would flake on shared CI machines.  Absolute numbers live in the
``BENCH_serve.json`` artifact the CI smoke job uploads.

Run with ``pytest benchmarks/test_serving_latency.py -s`` to see the table.
"""

import pytest

from repro.experiments import format_rows, run_loadgen_benchmark

SCENARIO = "game_video"


@pytest.fixture(scope="module")
def latency_rows(profile):
    rows = run_loadgen_benchmark(SCENARIO, batch_sizes=(8, 64),
                                 workers=(1, 4), backends=("exact", "ivf"),
                                 num_requests=192, top_k=10, profile=profile)
    print("\n" + format_rows(rows, columns=[
        "backend", "nprobe", "max_batch_size", "workers", "users_per_sec",
        "p50_ms", "p90_ms", "p99_ms", "cache_hit_rate"]))
    return rows


class TestServingLatency:
    def test_one_row_per_swept_configuration(self, latency_rows):
        # 2 batch sizes x 2 worker counts x 2 backends.
        assert len(latency_rows) == 8
        seen = {(r["backend"], r["max_batch_size"], r["workers"])
                for r in latency_rows}
        assert len(seen) == 8

    def test_row_schema_matches_bench_serve_artifact(self, latency_rows):
        required = {"backend", "nprobe", "max_batch_size", "workers",
                    "requests", "users_per_sec", "p50_ms", "p90_ms", "p99_ms",
                    "mean_ms", "cache_hit_rate", "errors"}
        assert required <= set(latency_rows[0])

    def test_percentiles_ordered_and_throughput_positive(self, latency_rows):
        for row in latency_rows:
            assert row["errors"] == 0
            assert row["users_per_sec"] > 0
            assert 0 < row["p50_ms"] <= row["p90_ms"] <= row["p99_ms"]

    def test_skewed_traffic_earns_cache_hits(self, latency_rows):
        # The generated stream is 80/20 skewed with duplicates, so every
        # configuration should see some hits once the hot set is resident.
        assert all(0.0 <= row["cache_hit_rate"] <= 1.0 for row in latency_rows)
        assert any(row["cache_hit_rate"] > 0.0 for row in latency_rows)

    def test_every_request_served(self, latency_rows):
        assert all(row["requests"] == 192 for row in latency_rows)
