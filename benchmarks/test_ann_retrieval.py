"""ANN retrieval benchmark: IVF vs brute force at catalogue scale.

Acceptance gates for the approximate retrieval subsystem
(``repro.serve.ann``), per the PR-5 issue:

* at a >= 200k-item synthetic catalogue, the IVF backend at its *default*
  ``nprobe`` delivers at least **5x** the queries/sec of exact search with
  **recall@10 >= 0.95** against the exact top-10 lists, and
* ``serve --checkpoint ... --index ivf --index-dir D`` round-trips through a
  checkpointed index whose manifest checksum validates: the second
  invocation loads the saved index (no k-means re-run) and serves
  bit-identical lists, while a corrupted index artifact refuses to load.

The catalogue-scale gates are profile-independent (synthetic latents, fixed
size); only the checkpoint round-trip trains a model, at the harness
profile.  Run with ``pytest benchmarks/test_ann_retrieval.py -s`` to see the
throughput/recall table.
"""

import numpy as np
import pytest

from repro.experiments import format_rows
from repro.experiments.runners import run_ann_benchmark, run_checkpoint_serving
from repro.io import CheckpointError

CATALOG_ITEMS = 200_000
CATALOG_DIM = 64


@pytest.fixture(scope="module")
def ann_rows():
    """Exact vs IVF at default settings on the 200k catalogue (the gate)."""
    rows = run_ann_benchmark(num_items=CATALOG_ITEMS, dim=CATALOG_DIM,
                             top_k=10)
    print("\n" + format_rows(rows, float_digits=3))
    return rows


class TestAnnRetrievalGates:
    def test_row_schema(self, ann_rows):
        assert [row["backend"] for row in ann_rows] == ["exact", "ivf"]
        assert {"num_items", "queries_per_sec", "speedup_vs_exact",
                "recall_at_k", "build_seconds"} <= set(ann_rows[0])
        assert all(row["num_items"] >= 200_000 for row in ann_rows)

    def test_exact_backend_is_its_own_reference(self, ann_rows):
        exact = next(row for row in ann_rows if row["backend"] == "exact")
        assert exact["recall_at_k"] == 1.0
        assert exact["speedup_vs_exact"] == 1.0

    def test_ivf_at_least_5x_exact_throughput(self, ann_rows):
        """Acceptance: >= 5x queries/sec over brute force at default nprobe."""
        ivf = next(row for row in ann_rows if row["backend"] == "ivf")
        assert ivf["speedup_vs_exact"] >= 5.0, ivf

    def test_ivf_recall_at_10_floor(self, ann_rows):
        """Acceptance: recall@10 >= 0.95 against exact search."""
        ivf = next(row for row in ann_rows if row["backend"] == "ivf")
        assert ivf["recall_at_k"] >= 0.95, ivf


class TestCheckpointedIndexRoundTrip:
    """serve --checkpoint --index ivf --index-dir: durable-index acceptance."""

    @pytest.fixture(scope="class")
    def checkpoint(self, tmp_path_factory, profile):
        from repro.experiments.runners import run_training_job

        path = str(tmp_path_factory.mktemp("ann-ckpt") / "ckpt")
        run_training_job("game_video", profile=profile, epochs=1,
                         save_path=path)
        return path

    def test_round_trip_is_identical_and_checksummed(self, tmp_path_factory,
                                                     checkpoint):
        from repro.io import load_checkpoint

        index_dir = str(tmp_path_factory.mktemp("ann-index") / "ivf-index")
        first = run_checkpoint_serving(checkpoint, top_k=5, num_users=4,
                                       index_backend="ivf", nprobe=4,
                                       index_dir=index_dir)
        # The first call persisted the index as a repro.io checkpoint whose
        # manifest checksum validates.
        artifact = load_checkpoint(index_dir, expect_kind="topk-index")
        assert artifact.manifest["index"]["backend"] == "ivf"
        assert len(artifact.manifest["payload"]["sha256"]) == 64

        # The second call loads that artifact (k-means not re-run) and must
        # serve the exact same lists and scores.
        second = run_checkpoint_serving(checkpoint, top_k=5, num_users=4,
                                        index_backend="ivf", nprobe=4,
                                        index_dir=index_dir)
        assert first == second
        assert all(row["index"] == "ivf" for row in second)

    def test_ivf_lists_are_subsets_of_exact_serving(self, checkpoint):
        exact = run_checkpoint_serving(checkpoint, top_k=5, num_users=4)
        generous = run_checkpoint_serving(checkpoint, top_k=5, num_users=4,
                                          index_backend="ivf", nprobe=1000)
        # With every cell probed the IVF candidates cover the catalogue, so
        # the served lists coincide with exact serving.
        for row_exact, row_ivf in zip(exact, generous):
            assert row_exact["items"] == row_ivf["items"]
            np.testing.assert_allclose(row_exact["scores"], row_ivf["scores"],
                                       rtol=1e-12, atol=1e-14)

    def test_corrupt_index_artifact_refuses_to_load(self, tmp_path_factory,
                                                    checkpoint):
        import os

        index_dir = str(tmp_path_factory.mktemp("ann-rot") / "idx")
        run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                               index_backend="ivf", nprobe=4,
                               index_dir=index_dir)
        with open(os.path.join(index_dir, "payload.npz"), "ab") as handle:
            handle.write(b"bitrot")
        with pytest.raises(CheckpointError, match="checksum"):
            run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                                   index_backend="ivf", nprobe=4,
                                   index_dir=index_dir)

    def test_backend_mismatch_refused(self, tmp_path_factory, checkpoint):
        index_dir = str(tmp_path_factory.mktemp("ann-mismatch") / "idx")
        run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                               index_backend="ivf", nprobe=4,
                               index_dir=index_dir)
        with pytest.raises(CheckpointError, match="backend"):
            run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                                   index_backend="exact", index_dir=index_dir)

    def test_nprobe_is_ignored_for_exact_backend(self, checkpoint):
        # --nprobe without --index ivf must not crash exact serving (the
        # flag only means something to IVF).
        rows = run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                                      nprobe=8)
        assert all(row["index"] == "exact" for row in rows)

    def test_stale_index_from_other_latents_refused(self, tmp_path_factory,
                                                    checkpoint):
        # An index artifact of the right backend and *size* but built from
        # different item latents (e.g. an older training run) must refuse
        # to serve rather than score against a stale catalogue.
        from repro.serve import IVFIndex, load_index, save_index

        index_dir = str(tmp_path_factory.mktemp("ann-stale") / "idx")
        run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                               index_backend="ivf", nprobe=4,
                               index_dir=index_dir)
        genuine = load_index(index_dir)
        stale_latents = genuine.item_latents + 0.05
        save_index(index_dir, IVFIndex(stale_latents,
                                       domain=genuine.domain,
                                       **genuine.build_options()))
        with pytest.raises(CheckpointError, match="different item latents"):
            run_checkpoint_serving(checkpoint, top_k=5, num_users=2,
                                   index_backend="ivf", nprobe=4,
                                   index_dir=index_dir)
