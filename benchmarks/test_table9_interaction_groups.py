"""Benchmark E5 — Table IX: performance by cold-start user interaction count.

Paper shape to reproduce: grouping cold-start users by how many interactions
they have in their *source* domain, CDRIB delivers useful recommendations in
every populated group and beats SA-VAE on average; performance tends to grow
(with fluctuations, as the paper also observes) for users with more source
interactions.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_interaction_groups

_COLUMNS = ["method", "direction", "interactions", "MRR", "NDCG@10", "HR@10", "records"]


def test_table9_interaction_groups(benchmark, profile, bench_scenarios, strict_shapes):
    scenario_name = bench_scenarios[0]
    rows = benchmark.pedantic(
        run_interaction_groups, args=(scenario_name,),
        kwargs={"profile": profile, "compare_savae": True},
        rounds=1, iterations=1,
    )
    print(f"\n=== Table IX: interaction-count groups on {scenario_name} ===")
    print(format_rows(rows, _COLUMNS))

    methods = {row["method"] for row in rows}
    assert methods == {"CDRIB", "SA-VAE"}

    populated = [row for row in rows if row["records"] > 0]
    assert populated, "no interaction-count bucket received any evaluation record"

    def average(method):
        values = [row["MRR"] for row in populated if row["method"] == method]
        return float(np.mean(values)) if values else 0.0

    print(f"mean MRR over populated groups: CDRIB {average('CDRIB'):.2f}, "
          f"SA-VAE {average('SA-VAE'):.2f}")
    if strict_shapes:
        # Shape: averaged over populated groups CDRIB is at least on par with SA-VAE.
        assert average("CDRIB") >= 0.9 * average("SA-VAE")
