"""Benchmark E1 — Table II: statistics of the four CDR scenarios.

Paper shape to reproduce: four scenario pairs whose domains differ in user /
item counts, a training-overlap user pool, a held-out cold-start user pool
whose records populate the validation and test columns, and sub-percent to
low-percent densities after k-core filtering.
"""

from repro.experiments import format_rows, run_dataset_statistics


def test_table2_dataset_statistics(benchmark, profile, bench_scenarios):
    rows = benchmark.pedantic(
        run_dataset_statistics, args=(bench_scenarios,), kwargs={"profile": profile},
        rounds=1, iterations=1,
    )
    print("\n=== Table II: dataset statistics ===")
    print(format_rows(rows))

    assert len(rows) == 2 * len(bench_scenarios)
    for row in rows:
        assert row["Training"] > 0
        assert row["#Overlap"] > 0
        assert row["#Cold-start"] > 0
        assert 0 < row["Density"] < 1
