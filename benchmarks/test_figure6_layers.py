"""Benchmark E7 — Figure 6: effect of the number of VBGE propagation layers.

Paper shape to reproduce: using graph propagation (>= 1 layer) is clearly
better than what a degenerate embedding-only model would achieve, and adding
layers beyond 2-3 stops helping (over-smoothing), so the best layer count is
not the deepest one by a large margin.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_layer_sweep

_COLUMNS = ["num_layers", "direction", "MRR", "NDCG@10", "HR@10"]
_LAYERS = (1, 2, 3, 4)


def test_figure6_layer_sweep(benchmark, profile, bench_scenarios, strict_shapes):
    scenario_name = bench_scenarios[-1]
    rows = benchmark.pedantic(
        run_layer_sweep, args=(scenario_name,),
        kwargs={"layer_counts": _LAYERS, "profile": profile},
        rounds=1, iterations=1,
    )
    print(f"\n=== Figure 6: VBGE layer sweep on {scenario_name} ===")
    print(format_rows(rows, _COLUMNS))

    layer_counts = sorted({row["num_layers"] for row in rows})
    assert layer_counts == sorted(_LAYERS)

    series = {layers: float(np.mean(
        [row["MRR"] for row in rows if row["num_layers"] == layers]
    )) for layers in layer_counts}
    print("mean MRR per layer count:", {k: round(v, 2) for k, v in series.items()})

    if strict_shapes:
        # Shape: no layer setting collapses to random, and the deepest network
        # is not dramatically better than the best shallow one (over-smoothing).
        random_floor = 100.0 / profile.eval_negatives * 0.5
        for layers, value in series.items():
            assert value > random_floor, f"layers={layers} collapsed to random: {series}"
        best_shallow = max(series[1], series[2])
        assert series[4] <= 1.5 * best_shallow
