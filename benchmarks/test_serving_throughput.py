"""Serving throughput benchmark: batched cold-start inference (``repro.serve``).

Acceptance gates for the serving subsystem:

* batched (256) cold-start inference is at least 5x the users/sec of
  per-user encoding, and
* served top-K lists are identical to brute-force full ranking on the
  seeded scenario (tie-stable).

Run with ``pytest benchmarks/test_serving_throughput.py -s`` to see the
throughput table.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_serving_benchmark, train_cdrib
from repro.experiments.runners import build_paper_scenario
from repro.serve import ColdStartServer, brute_force_ranking

SCENARIO = "game_video"


@pytest.fixture(scope="module")
def throughput_rows(profile):
    rows = run_serving_benchmark(SCENARIO, batch_sizes=(1, 32, 256),
                                 top_k=10, profile=profile)
    print("\n" + format_rows(rows))
    return rows


@pytest.fixture(scope="module")
def served_setup(profile):
    """A trained checkpoint plus a server for the X -> Y direction."""
    scenario = build_paper_scenario(SCENARIO, profile)
    config = profile.cdrib.variant(epochs=min(profile.cdrib.epochs, 3))
    trainer = train_cdrib(scenario, config)
    split = scenario.x_to_y
    server = ColdStartServer(trainer.model, split.source, split.target,
                             top_k=10, cache_capacity=64)
    return scenario, trainer.model, server


class TestServingThroughput:
    def test_row_schema(self, throughput_rows):
        assert {"batch_size", "users_per_sec", "speedup_vs_single",
                "mode"} <= set(throughput_rows[0])
        batched = [r for r in throughput_rows if r["mode"] == "batched"]
        assert [r["batch_size"] for r in batched] == [1, 32, 256]

    def test_batched_256_at_least_5x_per_user(self, throughput_rows):
        """Acceptance: batch-256 serving >= 5x single-user users/sec."""
        by_batch = {r["batch_size"]: r for r in throughput_rows
                    if r["mode"] == "batched"}
        assert by_batch[256]["speedup_vs_single"] >= 5.0
        # Batching should also help well before 256.
        assert by_batch[32]["speedup_vs_single"] > 1.0

    def test_cached_reserve_not_slower_than_encoding(self, throughput_rows):
        cached = next(r for r in throughput_rows if r["mode"] == "lru_cached")
        batched = next(r for r in throughput_rows
                       if r["mode"] == "batched" and r["batch_size"] == 256)
        assert cached["users_per_sec"] >= 0.5 * batched["users_per_sec"]


class TestServingExactness:
    def test_topk_identical_to_brute_force(self, served_setup):
        """Acceptance: served lists == brute-force full ranking (tie-stable)."""
        scenario, _, server = served_setup
        users = [u.source_user for u in scenario.x_to_y.test][:16]
        recommendations = server.recommend(users, k=10)
        latents = server.user_latents(np.asarray(users, dtype=np.int64))
        for row, rec in enumerate(recommendations):
            full = brute_force_ranking(server.index.scores(latents[row])[0])
            assert np.array_equal(rec.items, full[:10])

    def test_full_ranking_agrees_with_pairwise_model_scorer(self, served_setup):
        scenario, model, server = served_setup
        split = scenario.x_to_y
        num_items = scenario.domain(split.target).num_items
        user = scenario.x_to_y.test[0].source_user
        pairwise = model.cold_start_scores(
            split.source, split.target,
            np.full(num_items, user, dtype=np.int64), np.arange(num_items),
        )
        rec = server.recommend_one(user, k=num_items)
        reference = brute_force_ranking(pairwise)
        if not np.array_equal(rec.items, reference):
            # Cross-path (matmul vs. pairwise) rankings may only disagree on
            # scores tied within float noise on some BLAS builds.
            np.testing.assert_allclose(pairwise[rec.items], pairwise[reference],
                                       rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(rec.scores, pairwise[rec.items],
                                   rtol=1e-9, atol=1e-12)
