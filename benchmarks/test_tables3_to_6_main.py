"""Benchmark E2 — Tables III-VI: the main bi-directional comparison.

For every scenario the harness trains all thirteen baselines plus CDRIB and
prints MRR / NDCG@{5,10} / HR@{1,5,10} per transfer direction.

Paper shape to reproduce (not absolute numbers): CDRIB attains the best (or
near-best) MRR in each direction, the EMCDR family generally beats its
single-domain pre-training counterparts, and the overlapping-user transfer
models (CoNet / STAR / PPGN) behave like single-domain models on cold-start
users.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_main_comparison

_COLUMNS = ["method", "direction", "MRR", "NDCG@5", "NDCG@10", "HR@1", "HR@5", "HR@10"]


@pytest.mark.parametrize("scenario_name",
                         ["music_movie", "phone_elec", "cloth_sport", "game_video"])
def test_main_comparison_table(benchmark, profile, bench_scenarios, strict_shapes, scenario_name):
    if scenario_name not in bench_scenarios:
        pytest.skip(f"{scenario_name} excluded by REPRO_BENCH_SCENARIOS")

    rows = benchmark.pedantic(
        run_main_comparison, args=(scenario_name,), kwargs={"profile": profile},
        rounds=1, iterations=1,
    )
    table_number = {"music_movie": "III", "phone_elec": "IV",
                    "cloth_sport": "V", "game_video": "VI"}[scenario_name]
    print(f"\n=== Table {table_number}: {scenario_name} bi-directional CDR ===")
    print(format_rows(rows, _COLUMNS))

    methods = {row["method"] for row in rows}
    assert "CDRIB" in methods
    assert len(methods) >= 10  # all baselines + CDRIB trained

    # Shape check: averaged over both directions CDRIB should rank at or near
    # the top of the comparison (the paper reports it as the best method).
    mean_mrr = {}
    for method in methods:
        values = [row["MRR"] for row in rows if row["method"] == method]
        mean_mrr[method] = float(np.mean(values))
    ranking = sorted(mean_mrr.items(), key=lambda kv: -kv[1])
    print("mean MRR ranking:", [(m, round(v, 2)) for m, v in ranking])
    if strict_shapes:
        best = max(mean_mrr.values())
        # Shape 1: CDRIB stays in the competitive group (see EXPERIMENTS.md for
        # why merged-graph CF and the EMCDR family are relatively stronger on
        # the dense synthetic substitute than on the paper's Amazon data).
        assert mean_mrr["CDRIB"] >= 0.5 * best, (
            f"CDRIB mean MRR {mean_mrr['CDRIB']:.2f} is not competitive with the "
            f"best method ({best:.2f}); full ranking: {ranking}"
        )
        # Shape 2: the cross-domain IB coupling must add value over the same
        # encoder trained without it (the degenerate 'VBGE' baseline).
        assert mean_mrr["CDRIB"] > mean_mrr["VBGE"], ranking
        # Shape 3: CDRIB beats the strongest variational EMCDR-style
        # competitor (SA-VAE), the paper's closest methodological rival.
        assert mean_mrr["CDRIB"] > mean_mrr["SA-VAE"], ranking
