"""Benchmark E3 — Table VII: ablation of the CDRIB regularizers.

Paper shape to reproduce: the full model is the strongest, removing the
contrastive regularizer (``w/o Con``) loses some quality, and additionally
removing the in-domain IB regularizer (``w/o In-IB&Con``) loses more — i.e.
mean MRR ordering CDRIB >= w/o Con >= w/o In-IB&Con up to small-scale noise.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_ablation

_COLUMNS = ["method", "direction", "MRR", "NDCG@10", "HR@10"]


def test_table7_ablation(benchmark, profile, bench_scenarios, strict_shapes):
    scenario_name = bench_scenarios[0]
    rows = benchmark.pedantic(
        run_ablation, args=(scenario_name,), kwargs={"profile": profile},
        rounds=1, iterations=1,
    )
    print(f"\n=== Table VII: ablation on {scenario_name} ===")
    print(format_rows(rows, _COLUMNS))

    mean_mrr = {}
    for variant in {row["method"] for row in rows}:
        mean_mrr[variant] = float(np.mean(
            [row["MRR"] for row in rows if row["method"] == variant]
        ))
    assert set(mean_mrr) == {"CDRIB", "w/o Con", "w/o In-IB&Con"}
    print("mean MRR per variant:", {k: round(v, 2) for k, v in mean_mrr.items()})
    if strict_shapes:
        # Shape: the full model should not be clearly worse than the most
        # stripped-down variant.
        assert mean_mrr["CDRIB"] >= 0.85 * mean_mrr["w/o In-IB&Con"], mean_mrr
