"""Benchmark E9 — the suite orchestrator: one command, one paper table.

Runs a grid slice of the Tables III-VI comparison through
``repro.experiments.suite`` — parallel workers, per-job artifacts, mean±std
aggregation with significance markers — instead of the per-table runner
loop, and checks the orchestration guarantees that matter at paper scale:
every job of the matrix produced durable checksummed artifacts, and an
immediate re-run resumes entirely from them (zero re-training).

Axes follow the benchmark profile: the smoke profile exercises the harness
on a CI-sized grid, fast/full grow the seed axis for tighter error bars.
"""

import os

from repro.experiments import (
    SuiteSpec,
    expand_jobs,
    format_rows,
    run_suite,
)

_COLUMNS = ["scenario", "direction", "method", "MRR", "NDCG@10", "HR@10",
            "seeds", "sig"]


def test_suite_main_tables(benchmark, profile, bench_scenarios, strict_shapes,
                           suite_jobs, tmp_path):
    spec = SuiteSpec.from_dict({
        "name": "bench-main-tables",
        "description": "Tables III-VI slice via the suite orchestrator",
        "scenarios": [bench_scenarios[-1]],
        "models": ["BPRMF", "VBGE", "EMCDR(BPRMF)", "SA-VAE", "CDRIB"],
        "seeds": [0, 1] if profile.name == "smoke" else [0, 1, 2],
        "profile": profile.name,
    })
    output_dir = str(tmp_path / "suite")

    result = benchmark.pedantic(
        run_suite, args=(spec, output_dir),
        kwargs={"jobs": suite_jobs}, rounds=1, iterations=1,
    )
    aggregated = result.aggregate()
    print(f"\n=== Suite {spec.name}: {len(result.payloads)} jobs, "
          f"{suite_jobs} worker(s) ===")
    print(format_rows(aggregated, _COLUMNS))

    # Every matrix cell ran and left validated artifacts behind.
    matrix = expand_jobs(spec)
    assert len(result.payloads) == len(matrix)
    assert os.path.isfile(os.path.join(output_dir, "suite_manifest.json"))
    for job in matrix:
        assert os.path.isfile(os.path.join(output_dir, "jobs", job.key,
                                           "result.json"))

    # Aggregation covers the full grid: one row per (direction, model).
    assert len(aggregated) == 2 * len(spec.models)
    assert all(row["seeds"] == len(spec.seeds) for row in aggregated)

    # Resume-from-partial: a second run retrains nothing.
    resumed = run_suite(spec, output_dir, jobs=1)
    assert resumed.skipped == len(matrix)
    assert resumed.rows() == result.rows()

    if strict_shapes:
        # Shape: CDRIB stays in the competitive group on mean MRR (cf. the
        # Tables III-VI benchmark; the synthetic substitute favours
        # merged-graph CF more than the paper's Amazon data does).
        by_model = {}
        for row in aggregated:
            by_model.setdefault(row["model"], []).append(row["MRR_mean"])
        means = {model: sum(v) / len(v) for model, v in by_model.items()}
        assert means["CDRIB"] >= 0.5 * max(means.values()), means
