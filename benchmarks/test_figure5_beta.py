"""Benchmark E6 — Figure 5: effect of the Lagrangian multiplier beta.

Paper shape to reproduce: performance varies smoothly with beta in
{0.5, 1.0, 1.5, 2.0}; no setting collapses to random, and denser scenarios
prefer smaller beta values.  The bench prints the NDCG@10 / HR@10 series the
figure plots.
"""

import numpy as np
import pytest

from repro.experiments import format_rows, run_beta_sweep

_COLUMNS = ["beta", "direction", "MRR", "NDCG@10", "HR@10"]
_BETAS = (0.5, 1.0, 1.5, 2.0)


def test_figure5_beta_sweep(benchmark, profile, bench_scenarios, strict_shapes):
    scenario_name = bench_scenarios[0]
    rows = benchmark.pedantic(
        run_beta_sweep, args=(scenario_name,),
        kwargs={"betas": _BETAS, "profile": profile},
        rounds=1, iterations=1,
    )
    print(f"\n=== Figure 5: beta sweep on {scenario_name} ===")
    print(format_rows(rows, _COLUMNS))

    betas = sorted({row["beta"] for row in rows})
    assert betas == sorted(_BETAS)

    series = {beta: float(np.mean([row["MRR"] for row in rows if row["beta"] == beta]))
              for beta in betas}
    print("mean MRR per beta:", {k: round(v, 2) for k, v in series.items()})
    if strict_shapes:
        # Shape: every beta setting keeps learning something (MRR above the
        # ~1/negatives random floor).
        random_floor = 100.0 / profile.eval_negatives * 0.5
        for beta, value in series.items():
            assert value > random_floor, f"beta={beta} collapsed to random: {series}"
