#!/usr/bin/env python3
"""Cold-start robustness analysis: overlap ratio and interaction-count groups.

Reproduces the paper's two robustness studies on one scenario:

* **Table VIII** — how much does CDRIB degrade when only 20/40/60/80% of the
  overlapping users are available to bridge the two domains during training?
* **Table IX** — how well are cold-start users served depending on how many
  interactions they have in their source domain?

Run with::

    python examples/cold_start_analysis.py [scenario_name]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    format_rows,
    get_profile,
    run_interaction_groups,
    run_overlap_ratio,
)


def main() -> None:
    scenario_name = sys.argv[1] if len(sys.argv) > 1 else "cloth_sport"
    profile = get_profile("fast")
    print(f"scenario: {scenario_name}   profile: {profile.name}")

    start = time.time()
    overlap_rows = run_overlap_ratio(
        scenario_name, ratios=(0.2, 0.4, 0.6, 0.8, 1.0), profile=profile,
        compare_savae=True,
    )
    print(f"\n=== Overlap-ratio robustness (Table VIII), {time.time() - start:.0f}s ===")
    print(format_rows(overlap_rows,
                      ["method", "overlap_ratio", "direction", "MRR", "NDCG@10", "HR@10"]))

    start = time.time()
    group_rows = run_interaction_groups(scenario_name, profile=profile, compare_savae=True)
    print(f"\n=== Interaction-count groups (Table IX), {time.time() - start:.0f}s ===")
    print(format_rows(group_rows,
                      ["method", "direction", "interactions", "MRR", "NDCG@10", "HR@10",
                       "records"]))

    # Short narrative summary of the trends.
    def mean_for(rows, method, key, value):
        selected = [row["MRR"] for row in rows if row["method"] == method and row[key] == value]
        return sum(selected) / len(selected) if selected else float("nan")

    low = mean_for(overlap_rows, "CDRIB", "overlap_ratio", 0.2)
    high = mean_for(overlap_rows, "CDRIB", "overlap_ratio", 1.0)
    print(f"\nCDRIB mean MRR with 20% of the overlap bridge: {low:.2f}")
    print(f"CDRIB mean MRR with the full overlap bridge:   {high:.2f}")


if __name__ == "__main__":
    main()
