#!/usr/bin/env python3
"""Quickstart: train CDRIB on a synthetic cross-domain scenario.

This example walks through the full public API in five steps:

1. generate a synthetic two-domain interaction dataset (the offline
   substitute for the paper's Amazon category pairs),
2. preprocess it into a cold-start cross-domain scenario (k-core filtering,
   overlap detection, 20% cold-start hold-out),
3. train CDRIB with the information-bottleneck and contrastive regularizers,
4. evaluate cold-start recommendation in both transfer directions with the
   leave-one-out protocol (MRR / NDCG@k / HR@k),
5. compare against a random and a popularity recommender.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer
from repro.data import (
    SyntheticConfig,
    SyntheticCrossDomainGenerator,
    build_scenario,
    format_statistics_table,
    scenario_statistics,
)
from repro.eval import LeaveOneOutEvaluator, popularity_scorer, random_scorer


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Generate raw interactions for two domains ("books" and "films").
    # ------------------------------------------------------------------ #
    generator_config = SyntheticConfig(
        name_x="books", name_y="films",
        num_overlap_users=150, num_specific_users_x=80, num_specific_users_y=80,
        num_items_x=180, num_items_y=180,
        shared_strength=1.3, specific_strength=0.5, popularity_strength=0.3,
        seed=7,
    )
    data = SyntheticCrossDomainGenerator(generator_config).generate()
    print(f"raw interactions: {data.table_x!r}\n                  {data.table_y!r}")

    # ------------------------------------------------------------------ #
    # 2. Build the cold-start cross-domain scenario.
    # ------------------------------------------------------------------ #
    scenario = build_scenario(
        data.table_x, data.table_y,
        cold_start_ratio=0.2, min_user_interactions=5, min_item_interactions=3, seed=0,
    )
    print("\nScenario statistics (Table II format):")
    print(format_statistics_table(scenario_statistics("books_films", scenario)))

    # ------------------------------------------------------------------ #
    # 3. Train CDRIB.
    # ------------------------------------------------------------------ #
    config = CDRIBConfig(
        embedding_dim=32, num_layers=2, epochs=40, batch_size=256,
        num_negatives=4, learning_rate=0.02, beta1=0.5, beta2=0.5, seed=0,
    )
    evaluator = LeaveOneOutEvaluator(scenario, num_negatives=99, seed=0)
    model = CDRIB(scenario, config)
    trainer = CDRIBTrainer(model, evaluator=evaluator)

    start = time.time()
    result = trainer.fit(eval_every=10, verbose=True)
    print(f"\ntrained {model.num_parameters()} parameters "
          f"in {time.time() - start:.1f}s; best validation MRR "
          f"{result.best_validation_mrr:.4f} at epoch {result.best_epoch}")

    # ------------------------------------------------------------------ #
    # 4 + 5. Evaluate cold-start users in both directions vs. baselines.
    # ------------------------------------------------------------------ #
    print("\nCold-start test results (all values in %):")
    header = f"{'direction':>16}  {'model':<12} {'MRR':>7} {'NDCG@10':>8} {'HR@10':>7}"
    print(header)
    print("-" * len(header))
    for split in scenario.directions:
        contenders = {
            "CDRIB": trainer.make_scorer(split.source, split.target),
            "popularity": popularity_scorer(scenario.domain(split.target)),
            "random": random_scorer(seed=1),
        }
        for name, scorer in contenders.items():
            direction_result = evaluator.evaluate_direction(
                scorer, split.source, split.target, split_name="test"
            )
            metrics = direction_result.metrics.as_dict()
            print(f"{split.source + '->' + split.target:>16}  {name:<12} "
                  f"{metrics['MRR']:7.2f} {metrics['NDCG@10']:8.2f} {metrics['HR@10']:7.2f}")


if __name__ == "__main__":
    main()
