#!/usr/bin/env python3
"""Serving quickstart: batched cold-start recommendations with ``repro.serve``.

Walks the serving hot path end to end:

1. train a small CDRIB checkpoint on a synthetic scenario,
2. build a :class:`~repro.serve.ColdStartServer` for one transfer direction
   (item latents are precomputed once into an :class:`~repro.serve.ItemIndex`),
3. serve a batch of cold-start users in a single vectorized VBGE pass,
4. stream single-user requests through the :class:`~repro.serve.RequestBatcher`,
5. show the LRU user-latent cache absorbing repeat traffic,
6. serve the same direction through the approximate IVF index and measure
   its recall against exact retrieval (``docs/SERVING.md`` covers when the
   switch pays off — catalogues past ~100k items).

Run with::

    python examples/serving_quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer
from repro.data import SyntheticConfig, SyntheticCrossDomainGenerator, build_scenario
from repro.eval import recall_against_exact
from repro.serve import ColdStartServer, RequestBatcher


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Data + a small trained checkpoint.
    # ------------------------------------------------------------------ #
    data = SyntheticCrossDomainGenerator(SyntheticConfig(
        name_x="books", name_y="films",
        num_overlap_users=150, num_specific_users_x=80, num_specific_users_y=80,
        num_items_x=180, num_items_y=180, seed=7,
    )).generate()
    scenario = build_scenario(data.table_x, data.table_y, cold_start_ratio=0.2,
                              min_user_interactions=5, min_item_interactions=3, seed=0)
    model = CDRIB(scenario, CDRIBConfig(embedding_dim=32, num_layers=2, epochs=10,
                                        batch_size=256, seed=0))
    CDRIBTrainer(model).fit()

    # ------------------------------------------------------------------ #
    # 2. Build the server: books-users -> films-items.
    # ------------------------------------------------------------------ #
    server = ColdStartServer(model, source="books", target="films",
                             top_k=5, cache_capacity=256)
    print(f"server: {server}")
    print(f"item index: {server.index.num_items} films x dim {server.index.dim}")

    # ------------------------------------------------------------------ #
    # 3. One batched request for several cold-start users.
    # ------------------------------------------------------------------ #
    cold_users = [u.source_user for u in scenario.x_to_y.test][:4]
    start = time.perf_counter()
    recommendations = server.recommend(cold_users)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    print(f"\nbatched recommend({len(cold_users)} users) in {elapsed_ms:.2f} ms:")
    for rec in recommendations:
        pretty = ", ".join(f"{item}:{score:.3f}"
                           for item, score in zip(rec.items, rec.scores))
        print(f"  books-user {rec.user:4d} -> top-{len(rec)} films [{pretty}]")

    # ------------------------------------------------------------------ #
    # 4. Streaming requests through the micro-batching queue.
    # ------------------------------------------------------------------ #
    batcher = RequestBatcher(server, max_batch_size=3)
    tickets = [batcher.submit(int(user)) for user in cold_users[:3]]  # auto-flush
    print(f"\nstreaming: {batcher.batches_flushed} batch flushed, "
          f"first ticket -> items {tickets[0].result().items}")

    # ------------------------------------------------------------------ #
    # 5. Repeat traffic is served from the LRU cache.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(0)
    repeat_traffic = rng.choice(cold_users, size=64).tolist()
    server.recommend(repeat_traffic)
    print(f"\nafter {len(repeat_traffic)} skewed repeat requests: {server.cache!r} "
          f"(hit rate {server.cache.hit_rate:.0%})")

    # ------------------------------------------------------------------ #
    # 6. The approximate IVF backend, measured against exact retrieval.
    #    (At this toy catalogue size exact is faster — the IVF backend
    #    exists for 100k+ item catalogues; this demos the API + recall.)
    # ------------------------------------------------------------------ #
    num_clusters = max(2, server.index.num_items // 16)
    ivf_server = ColdStartServer(model, source="books", target="films",
                                 top_k=5, cache_capacity=256,
                                 index_backend="ivf",
                                 index_options={"num_clusters": num_clusters,
                                                "nprobe": max(1, num_clusters // 2)})
    latents = server.user_latents(np.asarray(cold_users, dtype=np.int64))
    exact_items, _ = server.index.top_k(latents, 5)
    ivf_items, _ = ivf_server.index.top_k(latents, 5)
    recall = recall_against_exact(ivf_items, exact_items)
    print(f"\nIVF serving: {ivf_server.index!r}")
    print(f"recall@5 vs exact retrieval over {len(cold_users)} users: {recall:.2f}")


if __name__ == "__main__":
    main()
