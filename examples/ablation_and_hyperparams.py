#!/usr/bin/env python3
"""Ablation study and hyperparameter sweeps for CDRIB.

Reproduces, on one scenario:

* **Table VII** — full CDRIB vs ``w/o Con`` vs ``w/o In-IB&Con``, plus the two
  extra design-choice ablations this repository adds (deterministic encoder,
  inner-product contrast instead of the MLP discriminator);
* **Figure 5** — the Lagrangian-multiplier (beta) sweep;
* **Figure 6** — the VBGE layer-count sweep.

Run with::

    python examples/ablation_and_hyperparams.py [scenario_name]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    format_rows,
    get_profile,
    run_ablation,
    run_beta_sweep,
    run_layer_sweep,
)


def main() -> None:
    scenario_name = sys.argv[1] if len(sys.argv) > 1 else "phone_elec"
    profile = get_profile("fast")
    print(f"scenario: {scenario_name}   profile: {profile.name}")

    start = time.time()
    ablation_rows = run_ablation(
        scenario_name,
        variants=("wo_inib_con", "wo_con", "full", "deterministic", "dot_contrast"),
        profile=profile,
    )
    print(f"\n=== Ablation (Table VII + design-choice ablations), {time.time() - start:.0f}s ===")
    print(format_rows(ablation_rows, ["method", "direction", "MRR", "NDCG@10", "HR@10"]))

    start = time.time()
    beta_rows = run_beta_sweep(scenario_name, betas=(0.5, 1.0, 1.5, 2.0), profile=profile)
    print(f"\n=== Lagrangian multiplier sweep (Figure 5), {time.time() - start:.0f}s ===")
    print(format_rows(beta_rows, ["beta", "direction", "MRR", "NDCG@10", "HR@10"]))

    start = time.time()
    layer_rows = run_layer_sweep(scenario_name, layer_counts=(1, 2, 3, 4), profile=profile)
    print(f"\n=== VBGE layer sweep (Figure 6), {time.time() - start:.0f}s ===")
    print(format_rows(layer_rows, ["num_layers", "direction", "MRR", "NDCG@10", "HR@10"]))


if __name__ == "__main__":
    main()
