#!/usr/bin/env python3
"""Ablation study and hyperparameter sweeps for CDRIB.

Reproduces, on one scenario:

* **Table VII** — full CDRIB vs ``w/o Con`` vs ``w/o In-IB&Con``, plus the two
  extra design-choice ablations this repository adds (deterministic encoder,
  inner-product contrast instead of the MLP discriminator).  The variants run
  as an experiment *suite* — a model-axis grid executed on a parallel worker
  pool with per-seed aggregation and significance markers — instead of a
  hand-rolled loop;
* **Figure 5** — the Lagrangian-multiplier (beta) sweep;
* **Figure 6** — the VBGE layer-count sweep (both optional, ``--figures``).

Run with::

    python examples/ablation_and_hyperparams.py [scenario] [--quick] [--figures]

The profile follows ``REPRO_BENCH_PROFILE`` (default ``fast``); ``--quick``
runs a single seed (used by CI at the smoke profile).  Re-running resumes
from the finished jobs.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    SuiteSpec,
    format_rows,
    get_profile,
    run_beta_sweep,
    run_layer_sweep,
    run_suite,
)

ABLATION_MODELS = ["CDRIB", "CDRIB:wo_con", "CDRIB:wo_inib_con",
                   "CDRIB:deterministic", "CDRIB:dot_contrast"]


def main() -> None:
    """Run the ablation grid as a suite, then the optional figure sweeps."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", nargs="?", default="phone_elec")
    parser.add_argument("--quick", action="store_true",
                        help="single seed (CI smoke)")
    parser.add_argument("--figures", action="store_true",
                        help="also run the Figure 5/6 sweeps")
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel worker processes (default: 2)")
    parser.add_argument("--output", default=None,
                        help="artifact directory (default: suite_runs/<name>)")
    args = parser.parse_args()

    profile = get_profile()
    spec = SuiteSpec.from_dict({
        "name": f"ablation-{args.scenario}",
        "description": f"Table VII + design-choice ablations on {args.scenario}",
        "scenarios": [args.scenario],
        "models": ABLATION_MODELS,
        "seeds": [0] if args.quick else [0, 1, 2],
        "profile": profile.name,
    })
    print(f"scenario: {args.scenario}   profile: {profile.name}   "
          f"variants: {', '.join(spec.models)}   seeds: {list(spec.seeds)}")

    start = time.time()
    output_dir = args.output or f"suite_runs/{spec.name}"
    result = run_suite(spec, output_dir, jobs=args.jobs)
    if result.skipped:
        print(f"resumed: {result.skipped} finished job(s) skipped")
    print(f"\n=== Ablation (Table VII + design-choice ablations), "
          f"{time.time() - start:.0f}s ===")
    print(format_rows(result.aggregate(),
                      columns=["direction", "method", "MRR", "NDCG@10",
                               "HR@10", "seeds", "sig"]))
    print(f"artifacts: {output_dir}/")

    if not args.figures:
        print("\n(pass --figures to also run the Figure 5/6 sweeps)")
        return

    start = time.time()
    beta_rows = run_beta_sweep(args.scenario, betas=(0.5, 1.0, 1.5, 2.0),
                               profile=profile)
    print(f"\n=== Lagrangian multiplier sweep (Figure 5), "
          f"{time.time() - start:.0f}s ===")
    print(format_rows(beta_rows, ["beta", "direction", "MRR", "NDCG@10", "HR@10"]))

    start = time.time()
    layer_rows = run_layer_sweep(args.scenario, layer_counts=(1, 2, 3, 4),
                                 profile=profile)
    print(f"\n=== VBGE layer sweep (Figure 6), {time.time() - start:.0f}s ===")
    print(format_rows(layer_rows, ["num_layers", "direction", "MRR", "NDCG@10",
                                   "HR@10"]))


if __name__ == "__main__":
    main()
