#!/usr/bin/env python3
"""Compare CDRIB against the paper's baseline families on one scenario.

Reproduces a single-scenario slice of Tables III-VI: every registered
baseline (single-domain CF, cross-domain transfer, EMCDR family) plus CDRIB
is trained on the same synthetic scenario and evaluated on the same
cold-start users.  Runtime is a few minutes on a laptop CPU.

Run with::

    python examples/compare_baselines.py [scenario_name]

where ``scenario_name`` is one of music_movie, phone_elec, cloth_sport,
game_video (default: game_video, the smallest).
"""

from __future__ import annotations

import sys
import time

from repro.baselines import ALL_BASELINES, make_baseline
from repro.eval import paired_t_test
from repro.experiments import (
    build_paper_scenario,
    format_rows,
    get_profile,
    make_evaluator,
    run_main_comparison,
    train_cdrib,
)


def main() -> None:
    scenario_name = sys.argv[1] if len(sys.argv) > 1 else "game_video"
    profile = get_profile("fast")

    print(f"scenario: {scenario_name}   profile: {profile.name}")
    print(f"baselines: {', '.join(ALL_BASELINES)}")

    start = time.time()
    rows = run_main_comparison(scenario_name, profile=profile)
    print(f"\nfinished in {time.time() - start:.0f}s\n")
    print(format_rows(rows, ["method", "direction", "MRR", "NDCG@5", "NDCG@10",
                             "HR@1", "HR@5", "HR@10"]))

    # Significance check of CDRIB against the strongest EMCDR-family baseline,
    # mirroring the paper's paired t-test footnote.
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile)
    trainer = train_cdrib(scenario, profile.cdrib)
    challenger = make_baseline("EMCDR(BPRMF)", profile.baseline).fit(scenario)

    print("\nPaired t-test (CDRIB vs EMCDR(BPRMF)) per direction:")
    for split in scenario.directions:
        ours = evaluator.evaluate_direction(
            trainer.make_scorer(split.source, split.target), split.source, split.target
        )
        theirs = evaluator.evaluate_direction(
            challenger.scorer(split.source, split.target), split.source, split.target
        )
        outcome = paired_t_test(ours, theirs)
        verdict = "significant" if outcome.significant else "not significant"
        print(f"  {split.source}->{split.target}: "
              f"mean reciprocal-rank difference {outcome.mean_difference:+.4f} "
              f"(p={outcome.p_value:.3f}, {verdict})")


if __name__ == "__main__":
    main()
