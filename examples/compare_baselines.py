#!/usr/bin/env python3
"""Compare CDRIB against the paper's baseline families on one scenario.

Reproduces a single-scenario slice of Tables III-VI through the experiment
suite orchestrator: the scenario × model × seed grid expands into one job
per combination, runs on a parallel worker pool with deterministic per-job
seeding, writes durable per-job artifacts, and aggregates into a mean±std
table where ``*`` marks the best model when a paired t-test on reciprocal
ranks finds it significantly better than the runner-up — the paper's
footnote convention, now computed automatically.

Run with::

    python examples/compare_baselines.py [scenario] [--quick] [--jobs N]

where ``scenario`` is one of music_movie, phone_elec, cloth_sport,
game_video (default: game_video, the smallest).  ``--quick`` trims the grid
to one model per baseline family and a single seed (used by CI at the smoke
profile); the profile follows ``REPRO_BENCH_PROFILE`` (default ``fast``).
Re-running with the same arguments resumes from the finished jobs.
"""

from __future__ import annotations

import argparse
import time

from repro.baselines import ALL_BASELINES
from repro.experiments import (
    SuiteSpec,
    format_rows,
    get_profile,
    run_suite,
)

QUICK_MODELS = ["BPRMF", "PPGN", "EMCDR(BPRMF)", "SA-VAE", "CDRIB"]


def main() -> None:
    """Expand the comparison grid into a suite and print the aggregate table."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", nargs="?", default="game_video")
    parser.add_argument("--quick", action="store_true",
                        help="one model per family, single seed (CI smoke)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="parallel worker processes (default: 2)")
    parser.add_argument("--output", default=None,
                        help="artifact directory (default: suite_runs/<name>)")
    args = parser.parse_args()

    profile = get_profile()
    spec = SuiteSpec.from_dict({
        "name": f"compare-baselines-{args.scenario}",
        "description": f"Tables III-VI slice on {args.scenario}",
        "scenarios": [args.scenario],
        "models": (QUICK_MODELS if args.quick
                   else list(ALL_BASELINES) + ["CDRIB"]),
        "seeds": [0] if args.quick else [0, 1, 2],
        "profile": profile.name,
    })
    print(f"scenario: {args.scenario}   profile: {profile.name}   "
          f"models: {', '.join(spec.models)}   seeds: {list(spec.seeds)}")

    start = time.time()
    output_dir = args.output or f"suite_runs/{spec.name}"
    result = run_suite(spec, output_dir, jobs=args.jobs)
    if result.skipped:
        print(f"resumed: {result.skipped} finished job(s) skipped")
    print(f"finished {len(result.payloads)} job(s) in {time.time() - start:.0f}s\n")

    print(format_rows(result.aggregate(),
                      columns=["direction", "method", "MRR", "NDCG@10",
                               "HR@10", "seeds", "sig"]))
    print("\n(* = best model significantly better than the runner-up, "
          "paired t-test on reciprocal ranks, p < 0.05)")
    print(f"artifacts: {output_dir}/ (per-job results, checkpoints, "
          f"suite_manifest.json)")


if __name__ == "__main__":
    main()
