"""Setuptools shim so `python setup.py develop` works in offline environments
where the `wheel` package (needed for PEP 517 editable installs) is missing."""
from setuptools import setup

setup()
