"""Packaging for the CDRIB reproduction (``repro``).

A plain ``setup.py`` (no pyproject / setup.cfg) so that both
``pip install -e .`` and the legacy ``python setup.py develop`` work in
offline environments where the ``wheel`` package needed for PEP 517
editable installs may be missing.
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="repro-cdrib",
    version="1.3.0",
    description=(
        "Reproduction of CDRIB (Cao et al., ICDE 2022): cross-domain "
        "recommendation to cold-start users via variational information "
        "bottleneck, on a numpy autograd substrate, with a batched "
        "cold-start serving subsystem"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    install_requires=[
        "numpy",
        "scipy",
    ],
    entry_points={
        "console_scripts": [
            "repro = repro.experiments.cli:main",
            "repro-experiments = repro.experiments.cli:main",
        ],
    },
    classifiers=[
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
