"""Tests for ranking metrics against hand-computed values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    aggregate_ranks,
    hit_rate_at_k,
    ndcg_at_k,
    rank_of_positive,
    recall_against_exact,
    reciprocal_rank,
)


class TestSingleRecordMetrics:
    def test_reciprocal_rank(self):
        assert reciprocal_rank(1) == 1.0
        assert reciprocal_rank(4) == pytest.approx(0.25)

    def test_reciprocal_rank_invalid(self):
        with pytest.raises(ValueError):
            reciprocal_rank(0)

    def test_ndcg_at_k_values(self):
        assert ndcg_at_k(1, 5) == pytest.approx(1.0)
        assert ndcg_at_k(2, 5) == pytest.approx(1.0 / np.log2(3))
        assert ndcg_at_k(6, 5) == 0.0

    def test_ndcg_invalid_arguments(self):
        with pytest.raises(ValueError):
            ndcg_at_k(0, 5)
        with pytest.raises(ValueError):
            ndcg_at_k(1, 0)

    def test_hit_rate(self):
        assert hit_rate_at_k(3, 5) == 1.0
        assert hit_rate_at_k(6, 5) == 0.0
        with pytest.raises(ValueError):
            hit_rate_at_k(0, 5)


class TestRankOfPositive:
    def test_best_and_worst_positions(self):
        scores = np.array([5.0, 1.0, 2.0, 3.0])
        assert rank_of_positive(scores, 0) == 1
        scores = np.array([0.0, 1.0, 2.0, 3.0])
        assert rank_of_positive(scores, 0) == 4

    def test_pessimistic_vs_optimistic_ties(self):
        scores = np.array([1.0, 1.0, 1.0])
        assert rank_of_positive(scores, 0, tie_break="pessimistic") == 3
        assert rank_of_positive(scores, 0, tie_break="optimistic") == 1

    def test_positive_not_first_index(self):
        scores = np.array([1.0, 9.0, 5.0])
        assert rank_of_positive(scores, 1) == 1

    def test_unknown_tie_break(self):
        with pytest.raises(ValueError):
            rank_of_positive(np.array([1.0, 2.0]), 0, tie_break="magic")


class TestAggregation:
    def test_hand_computed_aggregate(self):
        metrics = aggregate_ranks([1, 2, 11])
        assert metrics.mrr == pytest.approx((1.0 + 0.5 + 1 / 11) / 3)
        assert metrics.hit_rate[10] == pytest.approx(2 / 3)
        assert metrics.hit_rate[1] == pytest.approx(1 / 3)
        assert metrics.ndcg[5] == pytest.approx((1.0 + 1 / np.log2(3) + 0.0) / 3)
        assert metrics.num_records == 3

    def test_empty_ranks(self):
        metrics = aggregate_ranks([])
        assert metrics.mrr == 0.0
        assert metrics.num_records == 0

    def test_as_dict_percentage(self):
        metrics = aggregate_ranks([1, 1])
        flat = metrics.as_dict(percentage=True)
        assert flat["MRR"] == pytest.approx(100.0)
        assert flat["records"] == 2
        assert aggregate_ranks([1]).as_dict(percentage=False)["MRR"] == pytest.approx(1.0)

    def test_custom_cutoffs(self):
        metrics = aggregate_ranks([3], ndcg_cutoffs=(3,), hr_cutoffs=(2, 3))
        assert set(metrics.ndcg) == {3}
        assert metrics.hit_rate[2] == 0.0
        assert metrics.hit_rate[3] == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=50))
    def test_property_metric_bounds(self, ranks):
        metrics = aggregate_ranks(ranks)
        assert 0.0 < metrics.mrr <= 1.0
        for value in metrics.ndcg.values():
            assert 0.0 <= value <= 1.0
        for value in metrics.hit_rate.values():
            assert 0.0 <= value <= 1.0
        # HR@k is monotone in k.
        assert metrics.hit_rate[1] <= metrics.hit_rate[5] <= metrics.hit_rate[10]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 100), min_size=1, max_size=30))
    def test_property_mrr_at_least_hr1(self, ranks):
        metrics = aggregate_ranks(ranks)
        assert metrics.mrr >= metrics.hit_rate[1] - 1e-12


class TestRecallAgainstExact:
    """recall_against_exact: the ANN retrieval quality metric."""

    def test_perfect_recall(self):
        exact = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_against_exact(exact, exact) == 1.0
        # Order within a row does not matter — recall is a set quantity.
        assert recall_against_exact(np.array([[3, 1, 2], [6, 4, 5]]), exact) == 1.0

    def test_partial_recall_hand_computed(self):
        exact = np.array([[1, 2, 3, 4], [10, 11, 12, 13]])
        approx = np.array([[1, 2, 99, 98], [10, 11, 12, 13]])
        # Row recalls: 2/4 and 4/4 -> mean 0.75.
        assert recall_against_exact(approx, exact) == pytest.approx(0.75)

    def test_zero_overlap(self):
        assert recall_against_exact(np.array([[7, 8]]), np.array([[1, 2]])) == 0.0

    def test_padding_ignored_on_both_sides(self):
        # -1 slots (fewer-than-k candidates) are neither truth nor findings.
        exact = np.array([[1, 2, -1, -1]])
        approx = np.array([[2, 1, -1, -1]])
        assert recall_against_exact(approx, exact) == 1.0
        # A padded approx row that missed one of two exact items: 0.5.
        assert recall_against_exact(np.array([[1, -1, -1, -1]]), exact) == 0.5

    def test_all_padding_rows_are_skipped(self):
        exact = np.array([[1, 2], [-1, -1]])
        approx = np.array([[1, 2], [-1, -1]])
        assert recall_against_exact(approx, exact) == 1.0
        # Nothing but padding anywhere -> defined as 0.0, not NaN.
        assert recall_against_exact(np.array([[-1]]), np.array([[-1]])) == 0.0

    def test_one_dim_inputs_promote_to_single_row(self):
        assert recall_against_exact(np.array([1, 2, 3]),
                                    np.array([3, 2, 9])) == pytest.approx(2 / 3)

    def test_row_mismatch_raises(self):
        with pytest.raises(ValueError):
            recall_against_exact(np.zeros((2, 3)), np.zeros((3, 3)))
