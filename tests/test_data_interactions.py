"""Tests for raw interaction tables and the paper's k-core preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import InteractionTable


class TestInteractionTable:
    def test_add_and_counts(self, handmade_table):
        assert handmade_table.num_interactions == 6
        assert handmade_table.user_counts()["a"] == 3
        assert handmade_table.item_counts()["i1"] == 3

    def test_users_and_items_preserve_order(self, handmade_table):
        assert handmade_table.users() == ["a", "b", "c"]
        assert handmade_table.items() == ["i1", "i2", "i3"]

    def test_deduplicate(self):
        table = InteractionTable("dup", [("u", "i"), ("u", "i"), ("u", "j")])
        assert table.deduplicate().num_interactions == 2

    def test_len_and_repr(self, handmade_table):
        assert len(handmade_table) == 6
        assert "hand" in repr(handmade_table)

    def test_extend(self):
        table = InteractionTable("x")
        table.extend([("u1", "i1"), ("u2", "i1")])
        assert table.num_interactions == 2


class TestCoreFilter:
    def test_filter_drops_sparse_users_and_items(self, handmade_table):
        filtered = handmade_table.filter_core(min_user_interactions=2,
                                              min_item_interactions=2)
        users = set(filtered.users())
        items = set(filtered.items())
        assert "c" not in users          # only 1 interaction
        assert "i3" not in items         # only 1 interaction
        assert "a" in users and "b" in users

    def test_filter_reaches_fixed_point(self):
        # Removing item j drops user v below the threshold, which in turn
        # drops item k: the filter must cascade.
        table = InteractionTable("cascade", [
            ("u", "i"), ("u", "k"),
            ("v", "j"), ("v", "k"),
            ("w", "i"), ("w", "k"),
            ("x", "i"), ("x", "k"),
        ])
        filtered = table.filter_core(min_user_interactions=2, min_item_interactions=2)
        remaining_users = set(filtered.users())
        assert "v" not in remaining_users
        for user in filtered.user_counts().values():
            assert user >= 2
        for item in filtered.item_counts().values():
            assert item >= 2

    def test_filter_preserves_everything_when_thresholds_low(self, handmade_table):
        filtered = handmade_table.filter_core(1, 1)
        assert filtered.num_interactions == handmade_table.num_interactions

    def test_filter_can_empty_the_table(self, handmade_table):
        filtered = handmade_table.filter_core(10, 10)
        assert filtered.num_interactions == 0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    min_size=0, max_size=60),
           st.integers(1, 3), st.integers(1, 3))
    def test_filter_invariants_hold_for_random_tables(self, pairs, min_user, min_item):
        table = InteractionTable("random", [(f"u{u}", f"i{i}") for u, i in pairs])
        filtered = table.filter_core(min_user, min_item)
        user_counts = filtered.user_counts()
        item_counts = filtered.item_counts()
        assert all(count >= min_user for count in user_counts.values())
        assert all(count >= min_item for count in item_counts.values())
        # Filtering never invents interactions.
        assert set(filtered.pairs) <= set(table.deduplicate().pairs)


class TestIndexing:
    def test_to_indexed_contiguous(self, handmade_table):
        edges, users, items = handmade_table.to_indexed()
        assert edges.shape == (6, 2)
        assert set(users.values()) == {0, 1, 2}
        assert set(items.values()) == {0, 1, 2}

    def test_to_indexed_respects_existing_maps(self, handmade_table):
        edges, users, items = handmade_table.to_indexed(user_index={"a": 5})
        assert users["a"] == 5
        assert edges[0, 0] == 5

    def test_to_indexed_empty(self):
        edges, users, items = InteractionTable("empty").to_indexed()
        assert edges.shape == (0, 2)
        assert users == {} and items == {}
