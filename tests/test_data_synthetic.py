"""Tests for the synthetic cross-domain workload generator."""

import numpy as np
import pytest

from repro.data import (
    PAPER_SCENARIOS,
    SyntheticConfig,
    SyntheticCrossDomainGenerator,
    paper_scenario_config,
)


@pytest.fixture(scope="module")
def generated():
    config = SyntheticConfig(num_overlap_users=50, num_specific_users_x=25,
                             num_specific_users_y=25, num_items_x=70, num_items_y=70,
                             seed=3)
    return SyntheticCrossDomainGenerator(config).generate()


class TestGenerator:
    def test_overlap_users_appear_in_both_tables(self, generated):
        users_x = set(generated.table_x.users())
        users_y = set(generated.table_y.users())
        for key in generated.overlap_user_keys:
            assert key in users_x
            assert key in users_y

    def test_specific_users_stay_in_their_domain(self, generated):
        users_x = set(generated.table_x.users())
        users_y = set(generated.table_y.users())
        assert any(key.startswith("user_x_") for key in users_x)
        assert not any(key.startswith("user_x_") for key in users_y)
        assert not any(key.startswith("user_y_") for key in users_x)

    def test_item_keys_are_domain_prefixed(self, generated):
        assert all(key.startswith(generated.config.name_x) for key in generated.table_x.items())
        assert all(key.startswith(generated.config.name_y) for key in generated.table_y.items())

    def test_interaction_counts_within_bounds(self, generated):
        cfg = generated.config
        cap = max(cfg.min_interactions, cfg.num_items_x // 4)
        for count in generated.table_x.user_counts().values():
            assert cfg.min_interactions <= count <= min(cfg.max_interactions, cap)

    def test_no_duplicate_interactions_per_user(self, generated):
        pairs = generated.table_x.pairs
        assert len(pairs) == len(set(pairs))

    def test_determinism_with_same_seed(self):
        config = SyntheticConfig(num_overlap_users=20, num_specific_users_x=10,
                                 num_specific_users_y=10, num_items_x=40,
                                 num_items_y=40, seed=9)
        first = SyntheticCrossDomainGenerator(config).generate()
        second = SyntheticCrossDomainGenerator(config).generate()
        assert first.table_x.pairs == second.table_x.pairs
        assert first.table_y.pairs == second.table_y.pairs

    def test_different_seeds_differ(self):
        base = SyntheticConfig(num_overlap_users=20, num_specific_users_x=10,
                               num_specific_users_y=10, num_items_x=40, num_items_y=40)
        first = SyntheticCrossDomainGenerator(base).generate()
        other = SyntheticConfig(**{**base.__dict__, "seed": 123})
        second = SyntheticCrossDomainGenerator(other).generate()
        assert first.table_x.pairs != second.table_x.pairs

    def test_shared_factors_recorded_for_overlap_users(self, generated):
        shared = generated.shared_factors["overlap"]
        assert shared.shape == (generated.config.num_overlap_users,
                                generated.config.shared_dim)


class TestConfig:
    def test_scaled_reduces_counts(self):
        config = SyntheticConfig(num_overlap_users=100, num_items_x=200)
        scaled = config.scaled(0.5)
        assert scaled.num_overlap_users == 50
        assert scaled.num_items_x == 100
        assert scaled.shared_dim == config.shared_dim

    def test_scaled_enforces_minimums(self):
        config = SyntheticConfig(num_overlap_users=20, num_items_x=30)
        scaled = config.scaled(0.01)
        assert scaled.num_overlap_users >= 10
        assert scaled.num_items_x >= 20

    def test_paper_scenarios_registry(self):
        assert set(PAPER_SCENARIOS) == {"music_movie", "phone_elec", "cloth_sport",
                                        "game_video"}
        config = paper_scenario_config("music_movie")
        assert config.name_x == "music"
        assert config.name_y == "movie"

    def test_paper_scenario_scale(self):
        base = paper_scenario_config("game_video")
        scaled = paper_scenario_config("game_video", scale=0.5)
        assert scaled.num_overlap_users == max(10, base.num_overlap_users // 2)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            paper_scenario_config("books_movies")
