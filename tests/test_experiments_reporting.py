"""Tests for result persistence (CSV / JSON) and the experiments CLI."""

import json

import pytest

from repro.experiments import (
    format_mean_std,
    load_rows_csv,
    load_rows_json,
    render_markdown_table,
    save_rows_csv,
    save_rows_json,
    save_rows_markdown,
    summarize_by,
)
from repro.experiments.cli import EXPERIMENTS, build_parser, run_experiment, save_rows


@pytest.fixture
def rows():
    return [
        {"method": "CDRIB", "direction": "x->y", "MRR": 12.5, "records": 20},
        {"method": "CDRIB", "direction": "y->x", "MRR": 10.5, "records": 18},
        {"method": "BPRMF", "direction": "x->y", "MRR": 6.0, "records": 20},
    ]


class TestJsonRoundTrip:
    def test_save_and_load(self, rows, tmp_path):
        path = save_rows_json(rows, str(tmp_path / "out.json"))
        loaded = load_rows_json(path)
        assert len(loaded) == 3
        assert loaded[0]["method"] == "CDRIB"
        assert loaded[0]["MRR"] == pytest.approx(12.5)

    def test_json_is_pretty_printed(self, rows, tmp_path):
        path = save_rows_json(rows, str(tmp_path / "out.json"))
        text = open(path).read()
        assert text.endswith("\n")
        json.loads(text)  # valid JSON

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a": 1}')
        with pytest.raises(ValueError):
            load_rows_json(str(path))

    def test_creates_parent_directories(self, rows, tmp_path):
        path = save_rows_json(rows, str(tmp_path / "nested" / "dir" / "out.json"))
        assert load_rows_json(path)


class TestCsvRoundTrip:
    def test_save_and_load_restores_numbers(self, rows, tmp_path):
        path = save_rows_csv(rows, str(tmp_path / "out.csv"))
        loaded = load_rows_csv(path)
        assert loaded[0]["MRR"] == pytest.approx(12.5)
        assert loaded[0]["records"] == 20
        assert loaded[0]["method"] == "CDRIB"

    def test_column_subset(self, rows, tmp_path):
        path = save_rows_csv(rows, str(tmp_path / "out.csv"), columns=["method", "MRR"])
        loaded = load_rows_csv(path)
        assert set(loaded[0]) == {"method", "MRR"}

    def test_union_of_columns(self, tmp_path):
        uneven = [{"a": 1}, {"a": 2, "b": 3}]
        path = save_rows_csv(uneven, str(tmp_path / "out.csv"))
        loaded = load_rows_csv(path)
        assert "b" in loaded[1]


class TestMarkdown:
    def test_format_mean_std(self):
        assert format_mean_std(12.345, 0.678) == "12.35±0.68"
        assert format_mean_std(1.0, 0.0, digits=1) == "1.0±0.0"

    def test_render_markdown_table(self, rows):
        text = render_markdown_table(rows)
        lines = text.splitlines()
        assert lines[0] == "| method | direction | MRR | records |"
        assert lines[1] == "| --- | --- | --- | --- |"
        assert "| CDRIB | x->y | 12.50 | 20 |" in lines
        assert render_markdown_table([]) == "(no rows)"

    def test_markdown_union_of_columns_and_escaping(self):
        rows = [{"a": 1}, {"a": 2, "b": "x|y"}]
        text = render_markdown_table(rows)
        assert text.splitlines()[0] == "| a | b |"
        assert "x\\|y" in text          # pipes escaped so cells don't split
        assert "| 1 |  |" in text       # missing cells render empty

    def test_save_rows_markdown(self, rows, tmp_path):
        path = save_rows_markdown(rows, str(tmp_path / "t.md"),
                                  columns=["method", "MRR"], title="Table")
        text = open(path).read()
        assert text.startswith("# Table\n\n| method | MRR |")
        assert text.endswith("\n")


class TestSummarize:
    def test_summarize_by_method(self, rows):
        summary = summarize_by(rows, "method", "MRR")
        assert summary["CDRIB"] == pytest.approx(11.5)
        assert summary["BPRMF"] == pytest.approx(6.0)

    def test_summarize_skips_missing_keys(self):
        summary = summarize_by([{"method": "A"}, {"method": "A", "MRR": 4.0}], "method")
        assert summary == {"A": pytest.approx(4.0)}


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table42"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["table2"])
        assert args.scenario == "game_video"
        assert args.profile is None
        assert args.output is None

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("table42", "game_video", "smoke")

    def test_run_experiment_table2_smoke(self):
        rows = run_experiment("table2", "game_video", "smoke")
        assert len(rows) == 8  # two domains per paper scenario
        assert {"|U|", "Training"} <= set(rows[0])

    def test_save_rows_dispatches_on_extension(self, rows, tmp_path):
        json_path = save_rows(rows, str(tmp_path / "a.json"))
        csv_path = save_rows(rows, str(tmp_path / "a.csv"))
        assert load_rows_json(json_path)
        assert load_rows_csv(csv_path)
        with pytest.raises(ValueError):
            save_rows(rows, str(tmp_path / "a.txt"))
