"""Tests for the approximate retrieval subsystem (``repro.serve.ann``)."""

import numpy as np
import pytest

from repro.eval import recall_against_exact
from repro.experiments import make_synthetic_catalog
from repro.io import CheckpointError, load_checkpoint
from repro.serve import (
    INDEX_BACKENDS,
    ColdStartServer,
    IVFIndex,
    ItemIndex,
    TopKIndex,
    brute_force_ranking,
    build_index,
    kmeans_quantizer,
    load_index,
    make_index,
    register_index_backend,
    save_index,
)


@pytest.fixture(scope="module")
def catalog_and_queries():
    """A small clustered catalogue + queries (IVF's favourable geometry).

    Same generator as the benchmark gate (one source of truth for the
    synthetic cluster geometry), at unit-test scale.
    """
    return make_synthetic_catalog(num_items=4000, dim=16, seed=0,
                                  num_centers=48, noise=0.2, num_queries=24)


@pytest.fixture(scope="module")
def exact_and_ivf(catalog_and_queries):
    catalog, _ = catalog_and_queries
    return ItemIndex(catalog), IVFIndex(catalog, seed=0)


class TestKMeansQuantizer:
    def test_deterministic_under_seed(self, catalog_and_queries):
        catalog, _ = catalog_and_queries
        a = kmeans_quantizer(catalog, 32, seed=3)
        b = kmeans_quantizer(catalog, 32, seed=3)
        assert np.array_equal(a, b)
        c = kmeans_quantizer(catalog, 32, seed=4)
        assert not np.array_equal(a, c)

    def test_shapes_and_validation(self, catalog_and_queries):
        catalog, _ = catalog_and_queries
        centroids = kmeans_quantizer(catalog[:100], 10, seed=0)
        assert centroids.shape == (10, catalog.shape[1])
        with pytest.raises(ValueError):
            kmeans_quantizer(catalog[:5], 6)
        with pytest.raises(ValueError):
            kmeans_quantizer(catalog[:5], 0)


class TestTopKIndexProtocol:
    def test_both_backends_satisfy_protocol(self, exact_and_ivf):
        exact, ivf = exact_and_ivf
        for index in exact_and_ivf:
            assert isinstance(index, TopKIndex)
            assert index.num_items == exact.num_items
            assert index.dim == exact.dim
        assert exact.backend == "exact"
        assert ivf.backend == "ivf"

    def test_build_options_rebuild_equivalent_index(self, catalog_and_queries):
        catalog, queries = catalog_and_queries
        ivf = IVFIndex(catalog, num_clusters=40, nprobe=6, seed=9)
        rebuilt = IVFIndex(catalog, **ivf.build_options())
        items_a, scores_a = ivf.top_k(queries, 10)
        items_b, scores_b = rebuilt.top_k(queries, 10)
        assert np.array_equal(items_a, items_b)
        assert np.array_equal(scores_a, scores_b)
        assert ItemIndex(catalog).build_options() == {}


class TestIVFIndex:
    def test_full_probe_matches_exact(self, catalog_and_queries):
        catalog, queries = catalog_and_queries
        exact = ItemIndex(catalog)
        ivf = IVFIndex(catalog, seed=0)
        ivf.nprobe = ivf.num_clusters  # every cell probed -> exact candidates
        exact_items, exact_scores = exact.top_k(queries, 10)
        ivf_items, ivf_scores = ivf.top_k(queries, 10)
        assert np.array_equal(ivf_items, exact_items)
        # Same latents, same inner product; per-cell GEMV vs batched GEMM
        # may differ in the last ulp (the repo-wide cross-path caveat).
        np.testing.assert_allclose(ivf_scores, exact_scores,
                                   rtol=1e-12, atol=1e-14)

    def test_default_nprobe_recall_on_clustered_data(self, exact_and_ivf,
                                                     catalog_and_queries):
        _, queries = catalog_and_queries
        exact, ivf = exact_and_ivf
        exact_items, _ = exact.top_k(queries, 10)
        ivf_items, _ = ivf.top_k(queries, 10)
        assert recall_against_exact(ivf_items, exact_items) >= 0.9

    def test_raising_nprobe_never_hurts_recall(self, catalog_and_queries):
        catalog, queries = catalog_and_queries
        exact_items, _ = ItemIndex(catalog).top_k(queries, 10)
        ivf = IVFIndex(catalog, num_clusters=64, nprobe=1, seed=0)
        recalls = []
        for nprobe in (1, 4, 16, 64):
            ivf.nprobe = nprobe
            items, _ = ivf.top_k(queries, 10)
            recalls.append(recall_against_exact(items, exact_items))
        assert recalls == sorted(recalls)
        assert recalls[-1] == 1.0

    def test_surfaced_scores_are_exact(self, exact_and_ivf, catalog_and_queries):
        """Approximation may drop items, never mis-score the surfaced ones."""
        _, queries = catalog_and_queries
        exact, ivf = exact_and_ivf
        items, scores = ivf.top_k(queries, 10)
        full = exact.scores(queries)
        for row in range(queries.shape[0]):
            valid = items[row] >= 0
            np.testing.assert_allclose(scores[row][valid],
                                       full[row][items[row][valid]],
                                       rtol=1e-12, atol=1e-14)
            # Rows come back sorted by descending score.
            assert np.all(np.diff(scores[row][valid]) <= 0)

    def test_tie_stability_matches_brute_force(self):
        # Duplicated latents force exact score ties; with every cell probed
        # the IVF ordering must equal the brute-force stable ranking,
        # including ties broken by ascending catalogue id.
        base = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        catalog = np.concatenate([base, base, base, base])
        ivf = IVFIndex(catalog, num_clusters=3, nprobe=3, seed=1)
        query = np.array([[2.0, 1.0]])
        full = brute_force_ranking(ItemIndex(catalog).scores(query)[0])
        for k in range(1, 13):
            items, _ = ivf.top_k(query, k)
            assert np.array_equal(items[0], full[:k]), f"tie mismatch at k={k}"

    def test_exclude_removes_items_and_pads(self, catalog_and_queries):
        catalog, queries = catalog_and_queries
        ivf = IVFIndex(catalog, num_clusters=16, nprobe=16, seed=0)
        items, _ = ivf.top_k(queries[:1], 8)
        banned = items[0][:3].tolist()
        remaining, _ = ivf.top_k(queries[:1], 5, exclude=[banned])
        assert not set(banned) & set(remaining[0].tolist())
        assert np.array_equal(remaining[0], items[0][3:8])

    def test_small_nprobe_pads_instead_of_inventing(self):
        # One probed cell holding fewer than k items: trailing slots carry
        # the -1 / -inf padding, exactly like ItemIndex's exclude overflow.
        rng = np.random.default_rng(0)
        catalog = rng.standard_normal((30, 4))
        ivf = IVFIndex(catalog, num_clusters=15, nprobe=1, seed=0)
        items, scores = ivf.top_k(rng.standard_normal((1, 4)), 10)
        padding = items[0] == -1
        assert padding.any()
        assert np.all(np.isneginf(scores[0][padding]))
        assert np.all(scores[0][~padding] > -np.inf)

    def test_k_clamped_and_validation(self, catalog_and_queries):
        catalog, queries = catalog_and_queries
        ivf = IVFIndex(catalog[:20], num_clusters=4, nprobe=4, seed=0)
        items, _ = ivf.top_k(queries[:1], 50)
        assert items.shape == (1, 20)
        with pytest.raises(ValueError):
            ivf.top_k(queries[:1], 0)
        with pytest.raises(ValueError):
            ivf.nprobe = 0
        with pytest.raises(ValueError):
            IVFIndex(catalog[:20], num_clusters=0)
        with pytest.raises(ValueError):
            ivf.top_k(queries[:2], 3, exclude=[[1]])

    def test_num_clusters_clamped_to_catalog(self):
        catalog = np.random.default_rng(0).standard_normal((7, 3))
        ivf = IVFIndex(catalog, num_clusters=50, nprobe=50)
        assert ivf.num_clusters == 7
        assert ivf.nprobe == 7

    def test_float32_preserved_under_protocol(self, catalog_and_queries):
        """The dtype guarantee of ItemIndex holds for every backend."""
        catalog, queries = catalog_and_queries
        for backend in ("exact", "ivf"):
            index = make_index(catalog.astype(np.float32), backend=backend)
            assert index.item_latents.dtype == np.float32
            assert index.scores(queries[:2].astype(np.float32)).dtype == np.float32
            # top_k scores follow the query/catalogue promotion: a float32
            # serve path stays float32 end-to-end, items stay int64.
            items, scores = index.top_k(queries[:2].astype(np.float32), 5)
            assert items.dtype == np.int64
            assert scores.dtype == np.float32
            # A float64 query against a float32 catalogue promotes to float64.
            _, scores64 = index.top_k(queries[:2].astype(np.float64), 5)
            assert scores64.dtype == np.float64

    def test_integer_latents_become_float64(self):
        index = IVFIndex(np.arange(60).reshape(20, 3), num_clusters=4)
        assert index.item_latents.dtype == np.float64


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"exact", "ivf"} <= set(INDEX_BACKENDS)

    def test_make_index_dispatches(self, catalog_and_queries):
        catalog, _ = catalog_and_queries
        assert isinstance(make_index(catalog, backend="exact"), ItemIndex)
        assert isinstance(make_index(catalog, backend="ivf", num_clusters=8),
                          IVFIndex)
        with pytest.raises(KeyError):
            make_index(catalog, backend="nope")

    def test_custom_backend_registration(self, catalog_and_queries):
        catalog, _ = catalog_and_queries
        calls = []

        def factory(latents, domain="", **options):
            calls.append(options)
            return ItemIndex(latents, domain=domain)

        register_index_backend("custom-test", factory)
        try:
            index = make_index(catalog, backend="custom-test", domain="d", extra=3)
            assert isinstance(index, ItemIndex)
            assert calls == [{"extra": 3}]
            assert index.domain == "d"
        finally:
            del INDEX_BACKENDS["custom-test"]


class TestIndexPersistence:
    def test_ivf_roundtrip_is_bit_identical(self, tmp_path, catalog_and_queries):
        catalog, queries = catalog_and_queries
        ivf = IVFIndex(catalog, num_clusters=32, nprobe=5, seed=2, domain="video")
        path = str(tmp_path / "ivf-index")
        save_index(path, ivf)
        loaded = load_index(path)
        assert isinstance(loaded, IVFIndex)
        assert loaded.domain == "video"
        assert loaded.build_options() == ivf.build_options()
        items_a, scores_a = ivf.top_k(queries, 10)
        items_b, scores_b = loaded.top_k(queries, 10)
        assert np.array_equal(items_a, items_b)
        assert np.array_equal(scores_a, scores_b)

    def test_exact_roundtrip(self, tmp_path, catalog_and_queries):
        catalog, queries = catalog_and_queries
        path = str(tmp_path / "exact-index")
        save_index(path, ItemIndex(catalog, domain="video"))
        loaded = load_index(path)
        assert isinstance(loaded, ItemIndex)
        assert np.array_equal(loaded.item_latents, catalog)

    def test_manifest_checksum_validates(self, tmp_path, catalog_and_queries):
        """The index artifact inherits repro.io's corruption refusal."""
        import json

        catalog, _ = catalog_and_queries
        path = str(tmp_path / "idx")
        save_index(path, IVFIndex(catalog, num_clusters=8, seed=0))
        checkpoint = load_checkpoint(path)  # validates sha256
        assert checkpoint.manifest["kind"] == "topk-index"
        assert checkpoint.manifest["index"]["backend"] == "ivf"
        with open(tmp_path / "idx" / "payload.npz", "ab") as handle:
            handle.write(b"rot")
        with pytest.raises(CheckpointError, match="checksum"):
            load_index(path)
        # A checkpoint of another kind is refused outright.
        other = str(tmp_path / "other")
        from repro.io import save_checkpoint
        save_checkpoint(other, {"x": np.zeros(3)}, kind="state")
        with pytest.raises(CheckpointError):
            load_index(other)
        # Valid kind but missing index metadata is also refused.
        bad = str(tmp_path / "bad")
        save_checkpoint(bad, {"index/item_latents": catalog}, kind="topk-index")
        with pytest.raises(CheckpointError, match="metadata"):
            load_index(bad)


@pytest.fixture(scope="module")
def trained_model(small_scenario):
    from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer

    model = CDRIB(small_scenario, CDRIBConfig(embedding_dim=16, num_layers=2,
                                              epochs=2, batch_size=128,
                                              num_negatives=2, seed=0))
    CDRIBTrainer(model).fit()
    return model


class TestServerWithIVF:
    def test_server_builds_and_serves_through_ivf(self, trained_model,
                                                  small_scenario):
        source = small_scenario.domain_x.name
        target = small_scenario.domain_y.name
        exact = ColdStartServer(trained_model, source, target, top_k=10,
                                cache_capacity=0)
        num_clusters = max(2, exact.index.num_items // 8)
        ivf = ColdStartServer(trained_model, source, target, top_k=10,
                              cache_capacity=0, index_backend="ivf",
                              index_options={"num_clusters": num_clusters,
                                             "nprobe": max(1, num_clusters // 2),
                                             "seed": 0})
        assert isinstance(ivf.index, IVFIndex)
        users = [u.source_user for u in small_scenario.x_to_y.test][:8]
        exact_recs = exact.recommend(users)
        ivf_recs = ivf.recommend(users)
        exact_items = np.stack([r.items for r in exact_recs])
        ivf_items = np.stack([np.pad(r.items, (0, 10 - len(r)),
                                     constant_values=-1) for r in ivf_recs])
        assert recall_against_exact(ivf_items, exact_items) >= 0.5
        # Surfaced scores come from the same inner product as exact serving.
        for rec in ivf_recs:
            reference = exact.index.scores(ivf.user_latents([rec.user]))[0]
            np.testing.assert_allclose(rec.scores, reference[rec.items],
                                       rtol=1e-12, atol=1e-14)

    def test_refresh_preserves_backend(self, trained_model, small_scenario):
        server = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                 small_scenario.domain_y.name,
                                 index_backend="ivf",
                                 index_options={"num_clusters": 4, "nprobe": 4})
        before = server.index
        server.refresh()
        assert isinstance(server.index, IVFIndex)
        assert server.index is not before
        assert server.index.build_options() == before.build_options()

    def test_prebuilt_index_is_served_and_validated(self, tmp_path,
                                                    trained_model,
                                                    small_scenario):
        source = small_scenario.domain_x.name
        target = small_scenario.domain_y.name
        built = ColdStartServer(trained_model, source, target,
                                index_backend="ivf",
                                index_options={"num_clusters": 4, "nprobe": 4})
        path = str(tmp_path / "served-index")
        save_index(path, built.index)
        loaded = load_index(path)
        server = ColdStartServer(trained_model, source, target, index=loaded)
        assert server.index is loaded
        rec_a = built.recommend_one(3, k=5)
        rec_b = server.recommend_one(3, k=5)
        assert np.array_equal(rec_a.items, rec_b.items)
        # An index of the wrong catalogue is refused at construction.
        wrong = IVFIndex(np.random.default_rng(0).standard_normal((7, 16)),
                         num_clusters=2, nprobe=2)
        with pytest.raises(ValueError, match="items"):
            ColdStartServer(trained_model, source, target, index=wrong)
