"""Tests for optimizers, gradient clipping and learning-rate schedules."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.nn import Parameter
from repro.optim import Adam, ExponentialLR, SGD, StepLR, clip_grad_norm


def _quadratic_step(optimizer, parameter, target):
    optimizer.zero_grad()
    diff = ops.sub(parameter, target)
    loss = ops.sum(ops.mul(diff, diff))
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(200):
            _quadratic_step(optimizer, parameter, target)
        np.testing.assert_allclose(parameter.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            parameter = Parameter(np.array([10.0]))
            optimizer = SGD([parameter], lr=0.01, momentum=momentum)
            for _ in range(50):
                loss = _quadratic_step(optimizer, parameter, np.array([0.0]))
            return loss

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks_parameters(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        parameter.grad = np.array([0.0])
        optimizer.step()
        assert abs(parameter.data[0]) < 1.0

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()  # no gradient yet: must not raise nor change values
        np.testing.assert_allclose(parameter.data, [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([5.0, -3.0, 2.0]))
        target = np.array([1.0, 2.0, -1.0])
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(300):
            _quadratic_step(optimizer, parameter, target)
        np.testing.assert_allclose(parameter.data, target, atol=1e-3)

    def test_faster_than_sgd_on_badly_scaled_problem(self):
        scales = np.array([100.0, 1.0])

        def run(optimizer_class, lr):
            parameter = Parameter(np.array([1.0, 1.0]))
            optimizer = optimizer_class([parameter], lr=lr)
            for _ in range(100):
                optimizer.zero_grad()
                loss = ops.sum(ops.mul(ops.mul(parameter, parameter), scales))
                loss.backward()
                optimizer.step()
            return loss.item()

        assert run(Adam, 0.05) < run(SGD, 0.0005)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))

    def test_step_counter_bias_correction(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], lr=0.1)
        parameter.grad = np.array([1.0])
        optimizer.step()
        # After one step with grad 1, Adam moves by approximately lr.
        assert parameter.data[0] == pytest.approx(0.9, abs=1e-6)


def _make_params(seed, shapes=((4, 3), (5,), (2, 2, 2))):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.standard_normal(shape)) for shape in shapes]


def _set_grads(params, seed, skip=()):
    rng = np.random.default_rng(seed)
    for index, param in enumerate(params):
        param.grad = None if index in skip else rng.standard_normal(param.data.shape)


class TestFusedAdam:
    def test_trajectory_matches_reference_adam(self):
        """Fused flat-buffer updates are bitwise the per-parameter loop."""
        ref_params = _make_params(0)
        fused_params = _make_params(0)
        reference = Adam(ref_params, lr=0.05, weight_decay=1e-3)
        fused = Adam(fused_params, lr=0.05, weight_decay=1e-3, fused=True)
        for step in range(25):
            _set_grads(ref_params, step + 100)
            _set_grads(fused_params, step + 100)
            reference.step()
            fused.step()
            for ref, fus in zip(ref_params, fused_params):
                np.testing.assert_array_equal(ref.data, fus.data)

    def test_in_step_clipping_matches_clip_then_step(self):
        ref_params = _make_params(1)
        fused_params = _make_params(1)
        reference = Adam(ref_params, lr=0.1)
        fused = Adam(fused_params, lr=0.1, fused=True)
        for step in range(10):
            _set_grads(ref_params, step, skip=())
            _set_grads(fused_params, step, skip=())
            # Make the norm large enough that clipping actually triggers.
            for param in (*ref_params, *fused_params):
                param.grad = param.grad * 50.0
            clip_grad_norm(ref_params, max_norm=1.5)
            reference.step()
            fused.step(max_grad_norm=1.5)
            for ref, fus in zip(ref_params, fused_params):
                np.testing.assert_allclose(ref.data, fus.data, rtol=0, atol=1e-12)

    def test_missing_gradients_fall_back_to_reference_semantics(self):
        """Params without grads skip their moment update but share the global
        step count — in both modes, including alternating patterns."""
        ref_params = _make_params(2)
        fused_params = _make_params(2)
        reference = Adam(ref_params, lr=0.02)
        fused = Adam(fused_params, lr=0.02, fused=True)
        patterns = [(1,), (), (0, 2), (), (1,)]
        for step, skip in enumerate(patterns):
            _set_grads(ref_params, step + 7, skip=skip)
            _set_grads(fused_params, step + 7, skip=skip)
            reference.step()
            fused.step()
            for ref, fus in zip(ref_params, fused_params):
                np.testing.assert_array_equal(ref.data, fus.data)

    def test_external_rebind_is_adopted(self):
        """load_state_dict-style rebinds of param.data must not be lost."""
        params = _make_params(3)
        fused = Adam(params, lr=0.05, fused=True)
        _set_grads(params, 0)
        fused.step()
        replacement = np.zeros_like(params[0].data)
        params[0].data = replacement.copy()  # external rebind
        _set_grads(params, 1)
        fused.step()
        # The update ran against the replaced values, not the stale buffer.
        assert not np.allclose(params[0].data, replacement)
        assert np.all(np.abs(params[0].data - replacement) < 1.0)

    def test_fused_updates_are_views_of_one_buffer(self):
        params = _make_params(4)
        fused = Adam(params, lr=0.05, fused=True)
        _set_grads(params, 0)
        fused.step()
        bases = {id(param.data.base) for param in params}
        assert len(bases) == 1


class TestClipAndSchedules:
    def test_clip_grad_norm_rescales(self):
        a = Parameter(np.zeros(3))
        a.grad = np.array([3.0, 4.0, 0.0])
        norm = clip_grad_norm([a], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(a.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_noop_when_small(self):
        a = Parameter(np.zeros(2))
        a.grad = np.array([0.1, 0.1])
        clip_grad_norm([a], max_norm=10.0)
        np.testing.assert_allclose(a.grad, [0.1, 0.1])

    def test_clip_grad_norm_empty(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0

    def test_step_lr(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = StepLR(optimizer, step_size=2, gamma=0.5)
        schedule.step()
        assert optimizer.lr == pytest.approx(1.0)
        schedule.step()
        assert optimizer.lr == pytest.approx(0.5)

    def test_exponential_lr(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = ExponentialLR(optimizer, gamma=0.9)
        schedule.step()
        schedule.step()
        assert optimizer.lr == pytest.approx(0.81)

    def test_schedule_validation(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(optimizer, step_size=0)
        with pytest.raises(ValueError):
            ExponentialLR(optimizer, gamma=0.0)
