"""Tests for the bipartite interaction graph."""

import numpy as np
import pytest

from repro.graph import BipartiteGraph


@pytest.fixture
def small_graph():
    edges = np.array([[0, 0], [0, 1], [1, 1], [2, 2], [2, 0]])
    return BipartiteGraph(num_users=3, num_items=3, edges=edges)


class TestConstruction:
    def test_basic_properties(self, small_graph):
        assert small_graph.num_users == 3
        assert small_graph.num_items == 3
        assert small_graph.num_edges == 5
        assert small_graph.density == pytest.approx(5 / 9)

    def test_duplicate_edges_collapsed(self):
        edges = np.array([[0, 0], [0, 0], [1, 1]])
        graph = BipartiteGraph(2, 2, edges)
        assert graph.num_edges == 2

    def test_empty_graph(self):
        graph = BipartiteGraph(3, 4, np.empty((0, 2), dtype=np.int64))
        assert graph.num_edges == 0
        assert graph.density == 0.0
        assert graph.adjacency().shape == (3, 4)

    def test_invalid_edge_shape(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[0, 1, 2]]))

    def test_out_of_range_indices(self):
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[5, 0]]))
        with pytest.raises(ValueError):
            BipartiteGraph(2, 2, np.array([[0, 5]]))

    def test_repr(self, small_graph):
        assert "users=3" in repr(small_graph)


class TestAdjacency:
    def test_adjacency_entries(self, small_graph):
        adjacency = small_graph.adjacency().toarray()
        expected = np.array([[1, 1, 0], [0, 1, 0], [1, 0, 1]], dtype=float)
        np.testing.assert_allclose(adjacency, expected)

    def test_adjacency_transpose(self, small_graph):
        np.testing.assert_allclose(
            small_graph.adjacency_t().toarray(), small_graph.adjacency().toarray().T
        )

    def test_degrees(self, small_graph):
        np.testing.assert_array_equal(small_graph.user_degrees(), [2, 1, 2])
        np.testing.assert_array_equal(small_graph.item_degrees(), [2, 2, 1])

    def test_items_of_user(self, small_graph):
        np.testing.assert_array_equal(sorted(small_graph.items_of_user(0)), [0, 1])
        np.testing.assert_array_equal(sorted(small_graph.items_of_user(2)), [0, 2])

    def test_user_item_set(self, small_graph):
        mapping = small_graph.user_item_set()
        assert mapping[0] == {0, 1}
        assert mapping[1] == {1}

    def test_normalized_matrices_rows_sum_to_one(self, small_graph):
        rows = np.asarray(small_graph.norm_item_to_user().sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, np.ones(3))
        rows_t = np.asarray(small_graph.norm_user_to_item().sum(axis=1)).ravel()
        np.testing.assert_allclose(rows_t, np.ones(3))

    def test_joint_adjacency_shape_and_symmetry(self, small_graph):
        joint = small_graph.joint_normalized_adjacency().toarray()
        assert joint.shape == (6, 6)
        np.testing.assert_allclose(joint, joint.T, atol=1e-12)

    def test_joint_adjacency_without_self_loops(self, small_graph):
        joint = small_graph.joint_normalized_adjacency(add_self_loops=False).toarray()
        assert np.all(np.diag(joint) == 0)

    def test_caches_are_reused(self, small_graph):
        assert small_graph.norm_item_to_user() is small_graph.norm_item_to_user()


class TestSubgraph:
    def test_subgraph_without_users_removes_their_edges(self, small_graph):
        subgraph = small_graph.subgraph_without_users([0])
        assert subgraph.num_edges == 3
        assert 0 not in set(subgraph.edges[:, 0])
        # Index space is preserved.
        assert subgraph.num_users == 3
        assert subgraph.num_items == 3

    def test_subgraph_with_empty_user_list_is_copy(self, small_graph):
        subgraph = small_graph.subgraph_without_users([])
        assert subgraph.num_edges == small_graph.num_edges
        assert subgraph is not small_graph

    def test_subgraph_original_untouched(self, small_graph):
        small_graph.subgraph_without_users([0, 1, 2])
        assert small_graph.num_edges == 5
