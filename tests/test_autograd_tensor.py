"""Tests for the Tensor class and the autograd engine itself."""

import numpy as np
import pytest

from repro.autograd import Tensor, as_tensor, is_grad_enabled, no_grad, ones, randn, zeros
from repro.autograd import ops


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_construction_casts_dtype(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.dtype == np.float64

    def test_scalar_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_len_and_size(self):
        t = zeros((4, 3))
        assert len(t) == 4
        assert t.size == 12
        assert t.ndim == 2

    def test_repr_mentions_requires_grad(self):
        t = Tensor([1.0], requires_grad=True, name="w")
        text = repr(t)
        assert "requires_grad=True" in text
        assert "w" in text

    def test_detach_breaks_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert b.requires_grad is False
        assert b._parents == ()

    def test_copy_is_independent(self):
        a = Tensor([1.0, 2.0])
        b = a.copy()
        b.data[0] = 99.0
        assert a.data[0] == 1.0

    def test_as_tensor_passthrough(self):
        a = Tensor([1.0])
        assert as_tensor(a) is a

    def test_as_tensor_from_array(self):
        t = as_tensor(np.ones(3))
        assert isinstance(t, Tensor)
        assert t.shape == (3,)

    def test_factories(self):
        assert np.all(zeros((2, 2)).data == 0)
        assert np.all(ones((2, 2)).data == 1)
        assert randn(2, 3, rng=np.random.default_rng(0)).shape == (2, 3)


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        loss = (a * a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)

    def test_backward_requires_scalar_without_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        with pytest.raises(ValueError):
            out.backward()

    def test_backward_with_explicit_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 3.0
        out.backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(a.grad, [3.0, 3.0])

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2.0).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulation(self):
        # z = x*y + x*y reuses the same intermediate twice.
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([3.0], requires_grad=True)
        xy = x * y
        z = (xy + xy).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [6.0])
        np.testing.assert_allclose(y.grad, [4.0])

    def test_branching_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        loss = (a + b).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_no_grad_for_constant_inputs(self):
        a = Tensor([1.0, 2.0])
        b = Tensor([3.0, 4.0], requires_grad=True)
        loss = (a * b).sum()
        loss.backward()
        assert a.grad is None
        np.testing.assert_allclose(b.grad, a.data)

    def test_deep_chain_does_not_recurse(self):
        # The topological sort is iterative, so a deep chain must not hit the
        # Python recursion limit.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = a * 2.0
        assert is_grad_enabled()
        assert out._parents == ()

    def test_no_grad_restores_state_on_exception(self):
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()


class TestOperatorOverloads:
    def test_radd_rsub_rmul_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        np.testing.assert_allclose((1.0 + a).data, [3.0])
        np.testing.assert_allclose((5.0 - a).data, [3.0])
        np.testing.assert_allclose((3.0 * a).data, [6.0])
        np.testing.assert_allclose((8.0 / a).data, [4.0])

    def test_neg_and_pow(self):
        a = Tensor([2.0, -3.0])
        np.testing.assert_allclose((-a).data, [-2.0, 3.0])
        np.testing.assert_allclose((a ** 2).data, [4.0, 9.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose((a @ b).data, b.data)

    def test_getitem_indexing(self):
        a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = a[np.array([0, 2])]
        assert out.shape == (2, 3)

    def test_transpose_property(self):
        a = Tensor(np.arange(6.0).reshape(2, 3))
        assert a.T.shape == (3, 2)

    def test_method_chaining(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]], requires_grad=True)
        out = a.reshape(4).mean()
        out.backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 0.25))
