"""Tests for sparse-matrix operations and graph normalisations."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import Tensor, row_normalize, sparse_matmul, symmetric_normalize


class TestSparseMatmul:
    def test_matches_dense_product(self):
        rng = np.random.default_rng(0)
        dense_matrix = (rng.random((5, 7)) < 0.4).astype(float)
        matrix = sp.csr_matrix(dense_matrix)
        x = Tensor(rng.standard_normal((7, 3)))
        out = sparse_matmul(matrix, x)
        np.testing.assert_allclose(out.data, dense_matrix @ x.data)

    def test_gradient_is_transpose_product(self):
        rng = np.random.default_rng(1)
        dense_matrix = (rng.random((4, 6)) < 0.5).astype(float)
        matrix = sp.csr_matrix(dense_matrix)
        x = Tensor(rng.standard_normal((6, 2)), requires_grad=True)
        out = sparse_matmul(matrix, x)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)
        np.testing.assert_allclose(x.grad, dense_matrix.T @ upstream)

    def test_accepts_dense_ndarray(self):
        matrix = np.eye(3)
        x = Tensor(np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(sparse_matmul(matrix, x).data, x.data)

    def test_shape_mismatch_raises(self):
        matrix = sp.eye(3, format="csr")
        with pytest.raises(ValueError):
            sparse_matmul(matrix, Tensor(np.zeros((4, 2))))

    def test_constant_input_produces_constant_output(self):
        matrix = sp.eye(2, format="csr")
        x = Tensor(np.ones((2, 2)))  # no grad required
        out = sparse_matmul(matrix, x)
        assert out._parents == ()


class TestNormalisations:
    def test_row_normalize_rows_sum_to_one(self):
        matrix = sp.csr_matrix(np.array([[1.0, 1.0, 0.0], [0.0, 2.0, 2.0]]))
        normalised = row_normalize(matrix)
        np.testing.assert_allclose(np.asarray(normalised.sum(axis=1)).ravel(), [1.0, 1.0])

    def test_row_normalize_handles_zero_rows(self):
        matrix = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        normalised = row_normalize(matrix)
        np.testing.assert_allclose(normalised.toarray()[0], [0.0, 0.0])
        assert np.all(np.isfinite(normalised.toarray()))

    def test_symmetric_normalize_known_values(self):
        # Two nodes connected by one edge plus self-loops.
        adjacency = np.array([[1.0, 1.0], [1.0, 1.0]])
        normalised = symmetric_normalize(adjacency).toarray()
        np.testing.assert_allclose(normalised, np.full((2, 2), 0.5))

    def test_symmetric_normalize_isolated_node(self):
        adjacency = np.array([[0.0, 0.0], [0.0, 1.0]])
        normalised = symmetric_normalize(adjacency).toarray()
        assert np.all(np.isfinite(normalised))
        np.testing.assert_allclose(normalised[0], [0.0, 0.0])
