"""Tests for sparse-matrix operations and graph normalisations."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    check_gradients,
    ops,
    row_normalize,
    sparse_matmul,
    sparse_propagate,
    sparse_propagate_grad,
    symmetric_normalize,
)
from repro.autograd.sparse import _ensure_csr


class TestSparseMatmul:
    def test_matches_dense_product(self):
        rng = np.random.default_rng(0)
        dense_matrix = (rng.random((5, 7)) < 0.4).astype(float)
        matrix = sp.csr_matrix(dense_matrix)
        x = Tensor(rng.standard_normal((7, 3)))
        out = sparse_matmul(matrix, x)
        np.testing.assert_allclose(out.data, dense_matrix @ x.data)

    def test_gradient_is_transpose_product(self):
        rng = np.random.default_rng(1)
        dense_matrix = (rng.random((4, 6)) < 0.5).astype(float)
        matrix = sp.csr_matrix(dense_matrix)
        x = Tensor(rng.standard_normal((6, 2)), requires_grad=True)
        out = sparse_matmul(matrix, x)
        upstream = rng.standard_normal(out.shape)
        out.backward(upstream)
        np.testing.assert_allclose(x.grad, dense_matrix.T @ upstream)

    def test_accepts_dense_ndarray(self):
        matrix = np.eye(3)
        x = Tensor(np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(sparse_matmul(matrix, x).data, x.data)

    def test_shape_mismatch_raises(self):
        matrix = sp.eye(3, format="csr")
        with pytest.raises(ValueError):
            sparse_matmul(matrix, Tensor(np.zeros((4, 2))))

    def test_constant_input_produces_constant_output(self):
        matrix = sp.eye(2, format="csr")
        x = Tensor(np.ones((2, 2)))  # no grad required
        out = sparse_matmul(matrix, x)
        assert out._parents == ()


def _random_propagation_case(seed, n_self, n_other, dim, density):
    """Random push/pull CSR pair plus dense operands for one block."""
    rng = np.random.default_rng(seed)
    push_dense = (rng.random((n_other, n_self)) < density).astype(float)
    pull_dense = (rng.random((n_self, n_other)) < density).astype(float)
    features = Tensor(rng.standard_normal((n_self, dim)), requires_grad=True)
    weight_to = Tensor(rng.standard_normal((dim, dim)) * 0.5, requires_grad=True)
    weight_from = Tensor(rng.standard_normal((dim, dim)) * 0.5, requires_grad=True)
    return push_dense, pull_dense, features, weight_to, weight_from


def _unfused_forward(push, pull, features, weight_to, weight_from, slope=0.1):
    """The op-by-op pipeline the fused kernel must reproduce."""
    interim = ops.leaky_relu(sparse_matmul(push, ops.matmul(features, weight_to)),
                             slope)
    return ops.leaky_relu(sparse_matmul(pull, ops.matmul(interim, weight_from)),
                          slope)


class TestSparsePropagateGrad:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 8), st.integers(1, 8),
           st.integers(1, 5), st.sampled_from([0.0, 0.15, 0.5, 1.0]))
    def test_forward_matches_unfused_pipeline(self, seed, n_self, n_other,
                                              dim, density):
        """Property: fused forward == composed ops on random CSR graphs.

        Densities 0.0 and shapes with a single row/column cover the
        empty-row and single-column edge cases.
        """
        push, pull, features, w_to, w_from = _random_propagation_case(
            seed, n_self, n_other, dim, density)
        fused = sparse_propagate_grad(push, pull, features, w_to, w_from)
        unfused = _unfused_forward(push, pull, features, w_to, w_from)
        np.testing.assert_array_equal(fused.data, unfused.data)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 8), st.integers(1, 8),
           st.integers(1, 5), st.sampled_from([0.0, 0.15, 0.5, 1.0]))
    def test_backward_matches_unfused_pipeline(self, seed, n_self, n_other,
                                               dim, density):
        """Property: fused gradients == composed-op gradients, all parents."""
        push, pull, features, w_to, w_from = _random_propagation_case(
            seed, n_self, n_other, dim, density)
        upstream = np.random.default_rng(seed + 1).standard_normal((n_self, dim))

        fused = sparse_propagate_grad(push, pull, features, w_to, w_from)
        fused.backward(upstream)
        fused_grads = [t.grad.copy() for t in (features, w_to, w_from)]
        for tensor in (features, w_to, w_from):
            tensor.zero_grad()
        unfused = _unfused_forward(push, pull, features, w_to, w_from)
        unfused.backward(upstream)
        for got, tensor in zip(fused_grads, (features, w_to, w_from)):
            np.testing.assert_allclose(got, tensor.grad, rtol=0, atol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_numerical_gradcheck(self, seed):
        """Property: fused analytic gradients agree with finite differences."""
        push, pull, features, w_to, w_from = _random_propagation_case(
            seed, 4, 5, 3, 0.4)

        def fn(f, wt, wf):
            return ops.sum(sparse_propagate_grad(push, pull, f, wt, wf))

        assert check_gradients(fn, [features, w_to, w_from])

    def test_empty_graph_propagates_zeros(self):
        """All-empty rows: forward is zero and gradients stay finite."""
        push, pull, features, w_to, w_from = _random_propagation_case(3, 5, 4, 3, 0.0)
        out = sparse_propagate_grad(push, pull, features, w_to, w_from)
        np.testing.assert_array_equal(out.data, np.zeros((5, 3)))
        out.backward(np.ones((5, 3)))
        np.testing.assert_array_equal(features.grad, np.zeros((5, 3)))

    def test_single_column_graph(self):
        """A (m, 1) push / (1, m) pull pair — the degenerate bipartite case."""
        push, pull, features, w_to, w_from = _random_propagation_case(4, 1, 6, 2, 1.0)
        fused = sparse_propagate_grad(push, pull, features, w_to, w_from)
        unfused = _unfused_forward(push, pull, features, w_to, w_from)
        np.testing.assert_array_equal(fused.data, unfused.data)
        assert check_gradients(
            lambda f, wt, wf: ops.sum(sparse_propagate_grad(push, pull, f, wt, wf)),
            [features, w_to, w_from],
        )

    def test_pull_rows_slices_forward_and_gradients(self):
        """Row-sliced pull: output rows and grads match the full pass."""
        push, pull, features, w_to, w_from = _random_propagation_case(7, 9, 6, 4, 0.3)
        rows = np.array([1, 4, 7])
        upstream = np.random.default_rng(8).standard_normal((3, 4))

        sliced = sparse_propagate_grad(push, pull, features, w_to, w_from,
                                       pull_rows=rows)
        sliced.backward(upstream)
        sliced_grads = [t.grad.copy() for t in (features, w_to, w_from)]
        for tensor in (features, w_to, w_from):
            tensor.zero_grad()

        full = sparse_propagate_grad(push, pull, features, w_to, w_from)
        np.testing.assert_allclose(sliced.data, full.data[rows], rtol=0, atol=1e-12)
        scatter = np.zeros_like(full.data)
        scatter[rows] = upstream
        full.backward(scatter)
        for got, tensor in zip(sliced_grads, (features, w_to, w_from)):
            np.testing.assert_allclose(got, tensor.grad, rtol=0, atol=1e-12)

    def test_matches_nograd_serving_kernel(self):
        """The grad-aware kernel and the serving kernel agree bitwise."""
        push, pull, features, w_to, w_from = _random_propagation_case(9, 8, 5, 4, 0.4)
        fused = sparse_propagate_grad(push, pull, features, w_to, w_from)
        served = sparse_propagate(push, pull, features.data, w_to.data, w_from.data)
        np.testing.assert_array_equal(fused.data, served)

    def test_cached_transposes_do_not_change_results(self):
        push, pull, features, w_to, w_from = _random_propagation_case(10, 6, 7, 3, 0.4)
        push_t = _ensure_csr(push).T.tocsr()
        pull_t = _ensure_csr(pull).T.tocsr()
        plain = sparse_propagate_grad(push, pull, features, w_to, w_from)
        plain.backward(np.ones_like(plain.data))
        plain_grad = features.grad.copy()
        features.zero_grad()
        cached = sparse_propagate_grad(push, pull, features, w_to, w_from,
                                       push_t=push_t, pull_t=pull_t)
        cached.backward(np.ones_like(cached.data))
        np.testing.assert_array_equal(plain.data, cached.data)
        np.testing.assert_array_equal(plain_grad, features.grad)

    def test_shape_mismatch_raises(self):
        features = Tensor(np.zeros((4, 2)))
        weights = Tensor(np.eye(2))
        with pytest.raises(ValueError):
            sparse_propagate_grad(sp.eye(3, format="csr"), sp.eye(3, format="csr"),
                                  features, weights, weights)

    def test_constant_inputs_produce_constant_output(self):
        push, pull, features, w_to, w_from = _random_propagation_case(11, 4, 4, 2, 0.5)
        out = sparse_propagate_grad(push, pull, features.detach(),
                                    w_to.detach(), w_from.detach())
        assert out._parents == ()


class TestEnsureCsrDtype:
    def test_float32_dense_preserved(self):
        matrix = np.eye(3, dtype=np.float32)
        assert _ensure_csr(matrix).dtype == np.float32

    def test_float32_sparse_preserved(self):
        matrix = sp.random(5, 4, density=0.5, format="coo", dtype=np.float32,
                           random_state=0)
        assert _ensure_csr(matrix).dtype == np.float32

    def test_float64_preserved(self):
        assert _ensure_csr(np.eye(2)).dtype == np.float64

    def test_integer_promoted_to_float64(self):
        matrix = np.array([[0, 1], [1, 0]], dtype=np.int64)
        assert _ensure_csr(matrix).dtype == np.float64
        sparse_int = sp.csr_matrix(matrix)
        assert _ensure_csr(sparse_int).dtype == np.float64

    def test_float32_propagation_stays_float32(self):
        """A float32 graph + float32 operands run the fused kernel in fp32."""
        rng = np.random.default_rng(0)
        push = sp.csr_matrix((rng.random((5, 4)) < 0.5).astype(np.float32))
        pull = sp.csr_matrix((rng.random((4, 5)) < 0.5).astype(np.float32))
        out = sparse_propagate(push, pull,
                               rng.standard_normal((4, 3)).astype(np.float32),
                               np.eye(3, dtype=np.float32),
                               np.eye(3, dtype=np.float32))
        assert out.dtype == np.float32


class TestNormalisations:
    def test_row_normalize_rows_sum_to_one(self):
        matrix = sp.csr_matrix(np.array([[1.0, 1.0, 0.0], [0.0, 2.0, 2.0]]))
        normalised = row_normalize(matrix)
        np.testing.assert_allclose(np.asarray(normalised.sum(axis=1)).ravel(), [1.0, 1.0])

    def test_row_normalize_handles_zero_rows(self):
        matrix = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        normalised = row_normalize(matrix)
        np.testing.assert_allclose(normalised.toarray()[0], [0.0, 0.0])
        assert np.all(np.isfinite(normalised.toarray()))

    def test_symmetric_normalize_known_values(self):
        # Two nodes connected by one edge plus self-loops.
        adjacency = np.array([[1.0, 1.0], [1.0, 1.0]])
        normalised = symmetric_normalize(adjacency).toarray()
        np.testing.assert_allclose(normalised, np.full((2, 2), 0.5))

    def test_symmetric_normalize_isolated_node(self):
        adjacency = np.array([[0.0, 0.0], [0.0, 1.0]])
        normalised = symmetric_normalize(adjacency).toarray()
        assert np.all(np.isfinite(normalised))
        np.testing.assert_allclose(normalised[0], [0.0, 0.0])
