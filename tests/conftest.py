"""Shared fixtures for the test-suite: tiny synthetic scenarios and RNGs."""

import numpy as np
import pytest

from repro.baselines import BaselineConfig
from repro.core import CDRIBConfig
from repro.data import (
    InteractionTable,
    SyntheticConfig,
    SyntheticCrossDomainGenerator,
    build_scenario,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_tables():
    """Two tiny raw interaction tables with a known overlapping-user set."""
    config = SyntheticConfig(
        num_overlap_users=40, num_specific_users_x=20, num_specific_users_y=20,
        num_items_x=60, num_items_y=60, min_interactions=6, max_interactions=15,
        seed=7,
    )
    data = SyntheticCrossDomainGenerator(config).generate()
    return data


@pytest.fixture(scope="session")
def tiny_scenario(tiny_tables):
    """A fully assembled tiny scenario (no heavy filtering so nothing collapses)."""
    return build_scenario(
        tiny_tables.table_x, tiny_tables.table_y,
        cold_start_ratio=0.2, min_user_interactions=3, min_item_interactions=2, seed=3,
    )


@pytest.fixture(scope="session")
def small_scenario():
    """A slightly larger scenario used by the integration tests."""
    config = SyntheticConfig(
        num_overlap_users=90, num_specific_users_x=40, num_specific_users_y=40,
        num_items_x=110, num_items_y=110, seed=5,
        shared_strength=1.4, specific_strength=0.4, popularity_strength=0.3,
    )
    data = SyntheticCrossDomainGenerator(config).generate()
    return build_scenario(data.table_x, data.table_y, cold_start_ratio=0.2,
                          min_user_interactions=3, min_item_interactions=2, seed=5)


@pytest.fixture
def fast_cdrib_config():
    return CDRIBConfig(embedding_dim=16, num_layers=1, epochs=3, batch_size=128,
                       num_negatives=2, learning_rate=0.02, seed=0)


@pytest.fixture
def fast_baseline_config():
    return BaselineConfig(embedding_dim=16, epochs=2, mapping_epochs=8, batch_size=128,
                          num_negatives=2, num_layers=1, seed=0)


@pytest.fixture
def handmade_table():
    """A hand-built interaction table with known counts for filter tests."""
    table = InteractionTable("hand")
    # user a: 3 interactions, user b: 2, user c: 1; item degrees i1:3, i2:2, i3:1.
    table.extend([
        ("a", "i1"), ("a", "i2"), ("a", "i3"),
        ("b", "i1"), ("b", "i2"),
        ("c", "i1"),
    ])
    return table
