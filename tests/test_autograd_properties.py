"""Property-based tests (hypothesis) for the autograd substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, ops

SMALL_FLOATS = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                         allow_infinity=False)


def arrays(max_rows=5, max_cols=5):
    shapes = st.tuples(st.integers(1, max_rows), st.integers(1, max_cols))
    return shapes.flatmap(
        lambda shape: hnp.arrays(np.float64, shape, elements=SMALL_FLOATS)
    )


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_sigmoid_output_is_probability(values):
    out = ops.sigmoid(Tensor(values)).data
    assert np.all(out >= 0.0)
    assert np.all(out <= 1.0)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_softplus_is_nonnegative_and_above_input(values):
    out = ops.softplus(Tensor(values)).data
    assert np.all(out >= 0.0)
    assert np.all(out >= values - 1e-12)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_softmax_rows_are_distributions(values):
    out = ops.softmax(Tensor(values), axis=-1).data
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(out.shape[0]), atol=1e-9)
    assert np.all(out >= 0.0)


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_add_commutes(values):
    a = Tensor(values)
    b = Tensor(values[::-1].copy())
    np.testing.assert_allclose(ops.add(a, b).data, ops.add(b, a).data)


@settings(max_examples=40, deadline=None)
@given(arrays(), st.floats(min_value=0.05, max_value=3.0))
def test_gaussian_kl_is_nonnegative(mu_values, sigma_scale):
    mu = Tensor(mu_values)
    sigma = Tensor(np.full_like(mu_values, sigma_scale))
    kl = ops.gaussian_kl(mu, sigma).item()
    assert kl >= -1e-9


@settings(max_examples=40, deadline=None)
@given(arrays())
def test_bce_with_logits_is_nonnegative(logits):
    targets = (logits > 0).astype(float)
    loss = ops.binary_cross_entropy_with_logits(Tensor(logits), targets).item()
    assert loss >= -1e-12


@settings(max_examples=30, deadline=None)
@given(arrays(max_rows=4, max_cols=4))
def test_sum_backward_is_ones(values):
    tensor = Tensor(values, requires_grad=True)
    ops.sum(tensor).backward()
    np.testing.assert_allclose(tensor.grad, np.ones_like(values))


@settings(max_examples=30, deadline=None)
@given(arrays(max_rows=4, max_cols=4), arrays(max_rows=1, max_cols=4))
def test_broadcast_backward_shapes_match_inputs(a_values, b_values):
    # Align the trailing dimension so broadcasting applies across rows.
    cols = min(a_values.shape[1], b_values.shape[1])
    a = Tensor(a_values[:, :cols], requires_grad=True)
    b = Tensor(b_values[:1, :cols], requires_grad=True)
    ops.sum(ops.mul(a, b)).backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape
