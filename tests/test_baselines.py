"""Tests for the baseline recommenders and their registry."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    BASELINE_FACTORIES,
    BaselineConfig,
    CROSS_DOMAIN_BASELINES,
    EMCDR_FAMILY_BASELINES,
    FactorizationModel,
    SINGLE_DOMAIN_BASELINES,
    make_baseline,
)
from repro.baselines.emcdr import pretrain_domain
from repro.eval import LeaveOneOutEvaluator


class TestRegistry:
    def test_all_names_have_factories(self):
        assert set(ALL_BASELINES) == set(BASELINE_FACTORIES)

    def test_family_partition(self):
        combined = SINGLE_DOMAIN_BASELINES + CROSS_DOMAIN_BASELINES + EMCDR_FAMILY_BASELINES
        assert sorted(combined) == sorted(ALL_BASELINES)
        assert len(set(combined)) == len(combined)

    def test_paper_baseline_names_present(self):
        for name in ("CML", "BPRMF", "NGCF", "VBGE", "CoNet", "STAR", "PPGN",
                     "EMCDR(CML)", "EMCDR(BPRMF)", "EMCDR(NGCF)", "SSCDR",
                     "TMCDR", "SA-VAE"):
            assert name in ALL_BASELINES

    def test_unknown_baseline_raises(self):
        with pytest.raises(KeyError):
            make_baseline("DreamRec")

    def test_make_baseline_default_config(self):
        model = make_baseline("BPRMF")
        assert isinstance(model.config, BaselineConfig)


class TestBaselineConfig:
    def test_variant(self):
        config = BaselineConfig(epochs=10)
        changed = config.variant(epochs=3, embedding_dim=8)
        assert changed.epochs == 3 and changed.embedding_dim == 8
        assert config.epochs == 10


class TestFactorizationModel:
    def test_bpr_learns_to_rank_training_edges(self, tiny_scenario):
        domain = tiny_scenario.domain_x
        config = BaselineConfig(embedding_dim=16, epochs=8, batch_size=256,
                                num_negatives=2, learning_rate=0.05)
        model = FactorizationModel(domain.num_users, domain.num_items, config, loss="bpr")
        model.fit(domain.graph)
        rng = np.random.default_rng(0)
        edges = domain.graph.edges
        picks = rng.choice(edges.shape[0], size=200)
        users, positives = edges[picks, 0], edges[picks, 1]
        negatives = rng.integers(0, domain.num_items, 200)
        pos_scores = model.score(users, positives)
        neg_scores = model.score(users, negatives)
        assert (pos_scores > neg_scores).mean() > 0.65

    def test_cml_scores_are_negative_distances(self, tiny_scenario):
        domain = tiny_scenario.domain_x
        config = BaselineConfig(embedding_dim=8, epochs=1)
        model = FactorizationModel(domain.num_users, domain.num_items, config, loss="cml")
        scores = model.score(np.array([0, 1]), np.array([0, 1]))
        assert np.all(scores <= 0)

    def test_unknown_loss_raises(self):
        with pytest.raises(ValueError):
            FactorizationModel(5, 5, BaselineConfig(), loss="hinge2")


class TestPretraining:
    @pytest.mark.parametrize("method", ["bprmf", "cml", "ngcf"])
    def test_pretrain_produces_vectors(self, tiny_scenario, fast_baseline_config, method):
        domain = tiny_scenario.domain_x
        pretrained = pretrain_domain(domain, fast_baseline_config, method)
        assert pretrained.user_vectors.shape[0] == domain.num_users
        assert pretrained.item_vectors.shape[0] == domain.num_items
        assert np.all(np.isfinite(pretrained.user_vectors))

    def test_unknown_pretrain_method(self, tiny_scenario, fast_baseline_config):
        with pytest.raises(ValueError):
            pretrain_domain(tiny_scenario.domain_x, fast_baseline_config, "svdpp")


@pytest.mark.parametrize("name", ALL_BASELINES)
def test_every_baseline_fits_and_scores(name, tiny_scenario, fast_baseline_config):
    """Every registered baseline must train and return finite pairwise scores."""
    model = make_baseline(name, fast_baseline_config)
    model.fit(tiny_scenario)
    for split in tiny_scenario.directions:
        scorer = model.scorer(split.source, split.target)
        user = split.test[0].source_user if split.test else split.validation[0].source_user
        users = np.full(6, user, dtype=np.int64)
        items = np.arange(6)
        scores = np.asarray(scorer(users, items))
        assert scores.shape == (6,)
        assert np.all(np.isfinite(scores))


@pytest.mark.parametrize("name", ["BPRMF", "EMCDR(BPRMF)"])
def test_scorer_requires_fit(name, fast_baseline_config):
    model = make_baseline(name, fast_baseline_config)
    with pytest.raises(RuntimeError):
        model.scorer("a", "b")


def test_emcdr_beats_its_pretraining_on_cold_start(small_scenario):
    """EMCDR's mapping should help over scoring with the *source* embeddings
    directly (which are not aligned with the target item space at all)."""
    config = BaselineConfig(embedding_dim=16, epochs=6, mapping_epochs=40,
                            batch_size=256, num_negatives=2, seed=1)
    evaluator = LeaveOneOutEvaluator(small_scenario, num_negatives=50, seed=0,
                                     max_users_per_direction=15)
    emcdr = make_baseline("EMCDR(BPRMF)", config).fit(small_scenario)
    split = small_scenario.x_to_y
    mapped = evaluator.evaluate_direction(
        emcdr.scorer(split.source, split.target), split.source, split.target
    )

    # Unaligned scorer: source-domain user embedding dotted with target items.
    source_vectors = emcdr._pair.pretrained[split.source].user_vectors
    target_items = emcdr._pair.pretrained[split.target].item_vectors

    def unaligned(users, items):
        return np.sum(source_vectors[users] * target_items[items], axis=-1)

    baseline = evaluator.evaluate_direction(unaligned, split.source, split.target)
    assert mapped.metrics.mrr >= baseline.metrics.mrr * 0.8
