"""Golden-trajectory regression tests for the CDRIB training engines.

The fast training engines ("fused" kernels and "subgraph" mini-batch
materialisation) are only admissible because they are *faithful*: with the
same seed they must reproduce the seed implementation's loss trajectory —
same edge picks, same negative pools, same dropout masks and
reparameterisation noise, same optimizer arithmetic.  These tests pin a
20-step loss sequence of the reference (seed) path and require every engine
to match it, including across an epoch boundary and across interrupted
``run_steps`` calls.
"""

import numpy as np
import pytest

from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer
from repro.data import SyntheticConfig, SyntheticCrossDomainGenerator, build_scenario

# 20 per-step losses of the reference engine on the scenario below
# (seed implementation semantics; regenerate only with a justified
# semantic change to the objective or the RNG streams).
GOLDEN_LOSSES = np.array([
    12.120351425632888,
    11.989285033737508,
    11.825840945474884,
    11.634427247853912,
    11.262054393317873,
    10.776201033928722,
    9.939424916360906,
    8.76162881315749,
    9.308297723071762,
    8.53763213397015,
    8.184010440345084,
    8.271106523022196,
    8.309914688462447,
    8.437208609586031,
    8.352673722757645,
    8.767890050340068,
    8.38520997092831,
    8.510258820136883,
    8.397479976256003,
    8.40315931080348,
])

# The engines must agree with the seed path essentially to round-off;
# 1e-10 is the contract, observed differences are ~1e-15.
ENGINE_ATOL = 1e-10
# The pinned constants additionally depend on the BLAS build's GEMM
# summation order, so they get a slightly looser (still far-sub-semantic)
# tolerance for portability across numpy builds.
PINNED_ATOL = 5e-9


@pytest.fixture(scope="module")
def golden_scenario():
    config = SyntheticConfig(
        num_overlap_users=40, num_specific_users_x=25, num_specific_users_y=25,
        num_items_x=70, num_items_y=70, min_interactions=6, max_interactions=14,
        seed=11,
    )
    data = SyntheticCrossDomainGenerator(config).generate()
    return build_scenario(data.table_x, data.table_y, cold_start_ratio=0.2,
                          min_user_interactions=3, min_item_interactions=2,
                          seed=11)


def golden_config() -> CDRIBConfig:
    return CDRIBConfig(embedding_dim=16, num_layers=2, dropout=0.1,
                       batch_size=64, num_negatives=3, learning_rate=0.02,
                       seed=0)


def run_engine(scenario, engine: str, steps: int = 20):
    model = CDRIB(scenario, golden_config())
    trainer = CDRIBTrainer(model, engine=engine)
    return trainer, np.array(trainer.run_steps(steps))


class TestGoldenTrajectory:
    def test_reference_matches_pinned_losses(self, golden_scenario):
        """The reference engine *is* the seed path; its losses are pinned."""
        trainer, losses = run_engine(golden_scenario, "reference")
        assert trainer.steps_per_epoch() == 10  # the 20 steps span two epochs
        np.testing.assert_allclose(losses, GOLDEN_LOSSES, rtol=0, atol=PINNED_ATOL)

    def test_fused_engine_matches_seed_losses(self, golden_scenario):
        """Acceptance: fused-path losses equal the seed path to 1e-10."""
        _, reference = run_engine(golden_scenario, "reference")
        _, fused = run_engine(golden_scenario, "fused")
        np.testing.assert_allclose(fused, reference, rtol=0, atol=ENGINE_ATOL)
        np.testing.assert_allclose(fused, GOLDEN_LOSSES, rtol=0, atol=PINNED_ATOL)

    def test_subgraph_engine_matches_seed_losses(self, golden_scenario):
        """Acceptance: subgraph-path losses equal the seed path to 1e-10."""
        _, reference = run_engine(golden_scenario, "reference")
        _, subgraph = run_engine(golden_scenario, "subgraph")
        np.testing.assert_allclose(subgraph, reference, rtol=0, atol=ENGINE_ATOL)
        np.testing.assert_allclose(subgraph, GOLDEN_LOSSES, rtol=0, atol=PINNED_ATOL)

    def test_interrupted_run_steps_is_stream_exact(self, golden_scenario):
        """Stopping mid-epoch must not desynchronise the presampled engines.

        run_steps(7) ends mid-epoch (10 steps per epoch); the fused engine
        has presampled the full epoch but must consume the leftovers before
        presampling again, keeping the RNG stream aligned with the lazy
        reference draws.
        """
        _, reference = run_engine(golden_scenario, "reference", steps=20)
        model = CDRIB(golden_scenario, golden_config())
        trainer = CDRIBTrainer(model, engine="fused")
        losses = trainer.run_steps(7) + trainer.run_steps(13)
        np.testing.assert_allclose(np.array(losses), reference,
                                   rtol=0, atol=ENGINE_ATOL)

    def test_fit_epoch_means_match_across_engines(self, golden_scenario):
        """fit() (epoch means, eval-cache refresh) agrees across engines."""
        results = {}
        for engine in ("reference", "fused", "subgraph"):
            model = CDRIB(golden_scenario, golden_config())
            trainer = CDRIBTrainer(model, engine=engine)
            results[engine] = trainer.fit(epochs=2)
        reference = [log.loss for log in results["reference"].history]
        for engine in ("fused", "subgraph"):
            np.testing.assert_allclose(
                [log.loss for log in results[engine].history], reference,
                rtol=0, atol=ENGINE_ATOL,
            )

    def test_diagnostics_terms_match_across_engines(self, golden_scenario):
        """Per-term diagnostics (KL, reconstruction, contrastive) agree too."""
        diags = {}
        for engine in ("reference", "fused", "subgraph"):
            model = CDRIB(golden_scenario, golden_config())
            trainer = CDRIBTrainer(model, engine=engine)
            batches = trainer._next_batch()
            model.train()
            _, diag = model.training_loss(
                batches, fused=engine != "reference",
                subgraph=engine == "subgraph",
            )
            diags[engine] = diag
        assert set(diags["fused"]) == set(diags["reference"])
        assert set(diags["subgraph"]) == set(diags["reference"])
        for engine in ("fused", "subgraph"):
            for key, value in diags["reference"].items():
                assert diags[engine][key] == pytest.approx(value, rel=0, abs=ENGINE_ATOL)

    def test_unknown_engine_rejected(self, golden_scenario):
        model = CDRIB(golden_scenario, golden_config())
        with pytest.raises(ValueError):
            CDRIBTrainer(model, engine="warp-speed")
