"""Tests for the batched cold-start serving subsystem (``repro.serve``)."""

import numpy as np
import pytest

from repro.core import CDRIB, CDRIBConfig
from repro.serve import (
    ColdStartServer,
    ItemIndex,
    LRUCache,
    RequestBatcher,
    brute_force_ranking,
)


def assert_rankings_equivalent(items_a, items_b, scores):
    """Rankings must match exactly, or disagree only within float noise.

    Cross-path comparisons (BLAS matmul vs. elementwise-sum scores) can land
    near-tied scores on opposite sides of the last bit on some BLAS builds;
    any positional disagreement must then be between float-noise-tied scores.
    """
    if np.array_equal(items_a, items_b):
        return
    np.testing.assert_allclose(scores[np.asarray(items_a)],
                               scores[np.asarray(items_b)],
                               rtol=1e-9, atol=1e-12)


@pytest.fixture(scope="module")
def trained_model(small_scenario):
    """A briefly trained CDRIB model (weights only need to be non-degenerate)."""
    from repro.core import CDRIBTrainer

    model = CDRIB(small_scenario, CDRIBConfig(embedding_dim=16, num_layers=2,
                                              epochs=2, batch_size=128,
                                              num_negatives=2, seed=0))
    CDRIBTrainer(model).fit()
    return model


@pytest.fixture(scope="module")
def server(trained_model, small_scenario):
    return ColdStartServer(
        trained_model,
        source=small_scenario.domain_x.name,
        target=small_scenario.domain_y.name,
        top_k=10,
        cache_capacity=32,
    )


class TestEncodeBatchParity:
    """The serving encoders must match the eval-cache Tensor path exactly."""

    def test_users_full_and_batch(self, trained_model, small_scenario):
        name = small_scenario.domain_x.name
        trained_model.refresh_eval_cache()
        reference = trained_model._eval_cache[name].users.deterministic().data

        # Full-table encoding runs the same-shaped GEMMs as the reference,
        # so equality is bitwise; the index-restricted path runs smaller
        # GEMMs, where BLAS kernel selection may differ in the last ulp.
        assert np.array_equal(trained_model.encode_users_batch(name), reference)
        indices = np.array([5, 0, 11, 5, 3])
        np.testing.assert_allclose(trained_model.encode_users_batch(name, indices),
                                   reference[indices], rtol=1e-12, atol=1e-14)

    def test_items(self, trained_model, small_scenario):
        name = small_scenario.domain_y.name
        trained_model.refresh_eval_cache()
        reference = trained_model._eval_cache[name].items.deterministic().data
        assert np.array_equal(trained_model.encode_items(name), reference)

    def test_single_layer_model_batch_parity(self, small_scenario):
        model = CDRIB(small_scenario, CDRIBConfig(embedding_dim=8, num_layers=1, seed=1))
        name = small_scenario.domain_x.name
        model.refresh_eval_cache()
        reference = model._eval_cache[name].users.deterministic().data
        indices = np.array([2, 7, 2])
        np.testing.assert_allclose(model.encode_users_batch(name, indices),
                                   reference[indices], rtol=1e-12, atol=1e-14)

    def test_unknown_domain_raises(self, trained_model):
        with pytest.raises(KeyError):
            trained_model.encode_users_batch("nope")


class TestItemIndex:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ItemIndex(np.zeros(4))
        with pytest.raises(ValueError):
            ItemIndex(np.zeros((3, 2))).top_k(np.zeros((1, 2)), k=0)

    def test_top_k_matches_full_ranking(self, rng):
        latents = rng.standard_normal((50, 8))
        index = ItemIndex(latents)
        users = rng.standard_normal((7, 8))
        items, scores = index.top_k(users, k=10)
        for row in range(7):
            full = brute_force_ranking(index.scores(users[row])[0])
            assert np.array_equal(items[row], full[:10])
            assert np.all(np.diff(scores[row]) <= 0)

    def test_tie_handling_matches_stable_ranking(self):
        # Duplicate item latents force exact score ties, including across the
        # top-K boundary; ties must resolve by ascending item index.
        base = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        latents = np.concatenate([base, base, base, base])  # 12 items, 4-way ties
        index = ItemIndex(latents)
        user = np.array([[2.0, 1.0]])
        for k in range(1, 13):
            items, scores = index.top_k(user, k)
            full = brute_force_ranking(index.scores(user)[0])
            assert np.array_equal(items[0], full[:k]), f"tie mismatch at k={k}"
            assert np.array_equal(scores[0], index.scores(user)[0][items[0]])

    def test_all_equal_scores(self):
        index = ItemIndex(np.ones((9, 3)))
        items, _ = index.top_k(np.ones((1, 3)), k=4)
        assert np.array_equal(items[0], np.arange(4))

    def test_k_clamped_to_catalogue(self):
        index = ItemIndex(np.eye(5))
        items, _ = index.top_k(np.ones((1, 5)), k=50)
        assert items.shape == (1, 5)

    def test_exclude_removes_items(self, rng):
        index = ItemIndex(rng.standard_normal((20, 4)))
        user = rng.standard_normal((1, 4))
        items, _ = index.top_k(user, k=20)
        banned = items[0][:3].tolist()
        remaining, _ = index.top_k(user, k=5, exclude=[banned])
        assert not set(banned) & set(remaining[0].tolist())
        assert np.array_equal(remaining[0], items[0][3:8])

    def test_exclude_overflow_pads_instead_of_leaking(self, rng):
        # k exceeds the remaining candidates: excluded items must never be
        # returned; overflow slots carry the -1 / -inf padding sentinel.
        index = ItemIndex(rng.standard_normal((4, 3)))
        user = rng.standard_normal((1, 3))
        items, scores = index.top_k(user, k=3, exclude=[[0, 1, 2]])
        assert items[0][0] == 3
        assert np.array_equal(items[0][1:], [-1, -1])
        assert np.all(np.isneginf(scores[0][1:]))


class TestItemIndexDtype:
    """The index must not silently double memory for float32 models."""

    def test_float32_latents_are_preserved(self):
        latents = np.random.default_rng(0).standard_normal((6, 4)).astype(np.float32)
        index = ItemIndex(latents)
        assert index.item_latents.dtype == np.float32
        assert index.scores(latents[:2]).dtype == np.float32

    def test_float64_latents_are_preserved(self):
        latents = np.random.default_rng(0).standard_normal((6, 4))
        index = ItemIndex(latents)
        assert index.item_latents.dtype == np.float64
        assert index.scores(latents[:2]).dtype == np.float64

    def test_integer_latents_become_float64(self):
        index = ItemIndex(np.arange(12).reshape(4, 3))
        assert index.item_latents.dtype == np.float64

    def test_float32_top_k_matches_float64(self):
        rng = np.random.default_rng(3)
        latents = rng.standard_normal((20, 8))
        users = rng.standard_normal((3, 8))
        items32, _ = ItemIndex(latents.astype(np.float32)).top_k(
            users.astype(np.float32), k=5)
        items64, scores64 = ItemIndex(latents).top_k(users, k=5)
        for row in range(3):
            assert_rankings_equivalent(
                items32[row], items64[row],
                ItemIndex(latents).scores(users[row:row + 1])[0],
            )


class TestFloat32EndToEnd:
    """A float32 checkpoint must serve float32 end-to-end (no silent upcast
    doubling latent-buffer / cache memory on the hot path)."""

    def test_top_k_score_buffer_follows_dtype(self, rng):
        latents = rng.standard_normal((30, 8)).astype(np.float32)
        index = ItemIndex(latents)
        items, scores = index.top_k(latents[:4], k=5)
        assert scores.dtype == np.float32
        # With exclusion padding the dtype must survive the -inf sentinel.
        items, scores = index.top_k(latents[:1], k=5, exclude=[[0, 1]])
        assert scores.dtype == np.float32

    def test_server_latents_and_scores_follow_index_dtype(
            self, trained_model, small_scenario, monkeypatch):
        server = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                 small_scenario.domain_y.name, top_k=5,
                                 cache_capacity=16)
        server.index = ItemIndex(server.index.item_latents.astype(np.float32),
                                 server.index.domain)
        original = trained_model.encode_users_batch

        def encode_f32(domain, indices=None):
            return original(domain, indices).astype(np.float32)

        monkeypatch.setattr(trained_model, "encode_users_batch", encode_f32)
        latents = server.user_latents([0, 1, 2])
        assert latents.dtype == np.float32
        rec = server.recommend_one(3)
        assert rec.scores.dtype == np.float32
        # Cache entries must be float32 too (the memory the bug doubled),
        # and a cache-hit replay must stay float32.
        assert server.cache.get(0).dtype == np.float32
        assert server.user_latents([0, 3]).dtype == np.float32

    def test_float64_encoder_downcast_to_float32_index(
            self, trained_model, small_scenario):
        # Even without patching the encoder (which emits float64), a float32
        # index must pull the serve path down to float32, not up to float64.
        server = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                 small_scenario.domain_y.name, top_k=5,
                                 cache_capacity=16)
        server.index = ItemIndex(server.index.item_latents.astype(np.float32),
                                 server.index.domain)
        assert server.user_latents([1, 2]).dtype == np.float32
        assert server.cache.get(1).dtype == np.float32
        assert server.recommend_one(1).scores.dtype == np.float32


class TestNaNScoreContract:
    """NaN scores must be rejected, never silently misordered (argpartition's
    boundary threshold and lexsort both mishandle NaN)."""

    def test_nan_user_latent_rejected(self, rng):
        index = ItemIndex(rng.standard_normal((20, 4)))
        query = rng.standard_normal((2, 4))
        query[1, 2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            index.top_k(query, k=3)

    def test_nan_item_latent_rejected(self, rng):
        latents = rng.standard_normal((20, 4))
        latents[7, 0] = np.nan
        index = ItemIndex(latents)
        with pytest.raises(ValueError, match="NaN"):
            index.top_k(rng.standard_normal((1, 4)), k=3)

    def test_nan_rejected_at_tie_boundary(self):
        # The silent failure mode: a NaN threshold at the K-th boundary makes
        # both boundary comparisons vacuously false.  k=2 over 4 items puts
        # the NaN inside the partition; pre-fix this returned a wrong-shaped
        # or wrongly-ordered selection instead of raising.
        from repro.serve.item_index import _exact_top_k

        scores = np.array([1.0, np.nan, 0.5, 2.0])
        with pytest.raises(ValueError, match="NaN"):
            _exact_top_k(scores, 2)

    def test_ivf_rejects_nan_queries(self, rng):
        from repro.serve import IVFIndex

        index = IVFIndex(rng.standard_normal((64, 4)), num_clusters=4)
        query = rng.standard_normal((1, 4))
        query[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            index.top_k(query, k=3)

    def test_scores_without_top_k_still_allowed(self, rng):
        # The contract is on *ranking*: raw score matrices may carry NaN
        # (callers like diagnostics can inspect them), only top_k refuses.
        latents = rng.standard_normal((10, 4))
        latents[3, 1] = np.nan
        assert np.isnan(ItemIndex(latents).scores(
            rng.standard_normal((1, 4)))).any()


class TestColdStartServer:
    def test_recommend_trims_exclusion_padding(self, small_scenario):
        # In-domain serving with exclude_seen: a user whose history leaves
        # fewer than k candidates gets a shorter list, never seen items.
        name = small_scenario.domain_x.name
        model = CDRIB(small_scenario, CDRIBConfig(embedding_dim=8, num_layers=1,
                                                  seed=2))
        server = ColdStartServer(model, source=name, target=name,
                                 exclude_seen=True, cache_capacity=0)
        graph = small_scenario.domain_x.graph
        user = int(np.argmax(graph.user_degrees()))
        seen = set(graph.items_of_user(user).tolist())
        k = graph.num_items - len(seen) + 5  # forces overflow past candidates
        rec = server.recommend_one(user, k=k)
        assert len(rec) == graph.num_items - len(seen)
        assert not seen & set(rec.items.tolist())
        assert np.all(rec.items >= 0) and np.all(np.isfinite(rec.scores))

    def test_topk_matches_brute_force_on_scenario(self, server, small_scenario):
        """Acceptance: served lists == brute-force full ranking, seeded scenario."""
        users = [u.source_user for split in [small_scenario.x_to_y]
                 for u in split.test][:8]
        recommendations = server.recommend(users, k=10)
        for user, rec in zip(users, recommendations):
            latent = server.user_latents([user])
            full = brute_force_ranking(server.index.scores(latent)[0])
            assert np.array_equal(rec.items, full[:10])

    def test_scores_match_cold_start_scores(self, server, small_scenario, trained_model):
        """Server scores equal the model's pairwise scorer (float tolerance)."""
        name_x = small_scenario.domain_x.name
        name_y = small_scenario.domain_y.name
        rec = server.recommend_one(3, k=10)
        reference = trained_model.cold_start_scores(
            name_x, name_y, np.full(10, 3, dtype=np.int64), rec.items
        )
        np.testing.assert_allclose(rec.scores, reference, rtol=1e-12, atol=1e-12)

    def test_ranking_agrees_with_pairwise_scorer(self, server, small_scenario,
                                                 trained_model):
        """Full ranking from the pairwise path equals the served ranking."""
        name_x = small_scenario.domain_x.name
        name_y = small_scenario.domain_y.name
        num_items = small_scenario.domain_y.num_items
        user = 7
        pairwise = trained_model.cold_start_scores(
            name_x, name_y, np.full(num_items, user, dtype=np.int64),
            np.arange(num_items),
        )
        rec = server.recommend_one(user, k=num_items)
        assert_rankings_equivalent(rec.items, brute_force_ranking(pairwise), pairwise)

    def test_batched_equals_per_user(self, trained_model, small_scenario):
        fresh = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                small_scenario.domain_y.name, top_k=5,
                                cache_capacity=0)
        users = [1, 4, 9, 2]
        batched = fresh.recommend(users)
        for user, rec in zip(users, batched):
            single = fresh.recommend_one(user)
            assert np.array_equal(rec.items, single.items)
            # BLAS picks different kernels for 1-row and n-row products, so
            # scores agree to float precision rather than bitwise.
            np.testing.assert_allclose(rec.scores, single.scores,
                                       rtol=1e-12, atol=1e-12)

    def test_cache_hits_and_stats(self, trained_model, small_scenario):
        fresh = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                small_scenario.domain_y.name, cache_capacity=16)
        fresh.recommend([1, 2, 3])
        encoded_first = fresh.stats.users_encoded
        assert encoded_first == 3
        fresh.recommend([2, 3, 4])
        assert fresh.stats.users_encoded == encoded_first + 1
        assert fresh.cache.hits == 2
        assert fresh.stats.users_served == 6

    def test_duplicate_users_encoded_once(self, trained_model, small_scenario):
        fresh = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                small_scenario.domain_y.name, cache_capacity=0)
        fresh.recommend([5, 5, 5, 6])
        assert fresh.stats.users_encoded == 2

    def test_refresh_rebuilds_after_weight_change(self, trained_model, small_scenario):
        server = ColdStartServer(trained_model, small_scenario.domain_x.name,
                                 small_scenario.domain_y.name, cache_capacity=8)
        before = server.recommend_one(0, k=5)
        state = trained_model.state_dict()
        try:
            perturbed = {k: v + 0.05 for k, v in state.items()}
            trained_model.load_state_dict(perturbed)
            server.refresh()
            assert len(server.cache) == 0
            after = server.recommend_one(0, k=5)
            assert not np.array_equal(before.scores, after.scores)
        finally:
            trained_model.load_state_dict(state)
            trained_model.refresh_eval_cache()

    def test_score_pairs_scorer_protocol(self, server, small_scenario, trained_model):
        users = np.array([0, 0, 3, 3], dtype=np.int64)
        items = np.array([1, 2, 1, 2], dtype=np.int64)
        reference = trained_model.cold_start_scores(
            small_scenario.domain_x.name, small_scenario.domain_y.name, users, items
        )
        np.testing.assert_allclose(server.score_pairs(users, items), reference,
                                   rtol=1e-12, atol=1e-12)

    def test_score_pairs_rejects_out_of_range_items(self, server):
        """Fancy-indexing regression: a -1 (the top_k padding sentinel) used
        to wrap to the *last* catalogue item and return a confidently wrong
        score; it must raise instead."""
        num_items = server.index.num_items
        with pytest.raises(ValueError, match="item index out of range"):
            server.score_pairs([0, 1], [0, -1])
        with pytest.raises(ValueError, match="item index out of range"):
            server.score_pairs([0], [num_items])
        # In-range traffic is unaffected, including the boundary item.
        scores = server.score_pairs([0], [num_items - 1])
        assert np.isfinite(scores).all()


class TestMetricsConsistency:
    """Served positions must agree with ``eval.metrics.rank_of_positive``."""

    def test_served_position_equals_metrics_rank(self, server, small_scenario):
        from repro.eval.metrics import rank_of_positive

        num_items = small_scenario.domain_y.num_items
        for user in (0, 5, 12):
            rec = server.recommend_one(user, k=num_items)
            full_scores = server.index.scores(server.user_latents([user]))[0]
            assert np.unique(full_scores).size == num_items  # no ties here
            for position, item in enumerate(rec.items[:10], start=1):
                # Move the item's score to index 0, as the metric expects.
                rolled = np.concatenate(([full_scores[item]],
                                         np.delete(full_scores, item)))
                assert rank_of_positive(rolled, positive_index=0) == position

    def test_tied_positions_bracket_metrics_ranks(self):
        from repro.eval.metrics import rank_of_positive

        # Three 4-way score ties: the served position of each item must sit
        # between the optimistic and pessimistic metric ranks.
        base = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        index = ItemIndex(np.concatenate([base, base, base, base]))
        user = np.array([[2.0, 1.0]])
        items, _ = index.top_k(user, k=12)
        full_scores = index.scores(user)[0]
        for position, item in enumerate(items[0], start=1):
            rolled = np.concatenate(([full_scores[item]],
                                     np.delete(full_scores, item)))
            optimistic = rank_of_positive(rolled, tie_break="optimistic")
            pessimistic = rank_of_positive(rolled, tie_break="pessimistic")
            assert optimistic <= position <= pessimistic


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert cache.get("a") is not None  # refresh "a"
        cache.put("c", np.array([3.0]))   # evicts "b"
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", np.array([1.0]))
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.hit_rate == 0.0
        cache.put("a", np.array([1.0]))
        cache.get("a")
        cache.get("z")
        assert cache.hit_rate == pytest.approx(0.5)

    def test_negative_capacity_raises(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_put_copies_instead_of_aliasing(self):
        """Aliasing regression: put() must own a copy — a read-only view
        still shares memory with the caller's writable base array, so
        mutating the original after put() silently corrupted future hits."""
        cache = LRUCache(4)
        value = np.array([1.0, 2.0, 3.0])
        cache.put("u", value)
        value[0] = 99.0                      # caller reuses its buffer
        np.testing.assert_array_equal(cache.get("u"), [1.0, 2.0, 3.0])

    def test_put_does_not_alias_row_views(self):
        # The serving pattern: rows of a batch-encode result are put() one
        # by one; mutating the batch array afterwards must not reach cache.
        cache = LRUCache(4)
        batch = np.arange(6, dtype=np.float64).reshape(2, 3)
        cache.put(0, batch[0])
        cache.put(1, batch[1])
        batch[:] = -1.0
        np.testing.assert_array_equal(cache.get(0), [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(cache.get(1), [3.0, 4.0, 5.0])

    def test_entries_are_read_only(self):
        """Mutation regression: a caller writing to a returned latent must
        fail loudly instead of silently corrupting every future hit."""
        cache = LRUCache(4)
        cache.put("u", np.array([1.0, 2.0, 3.0]))
        hit = cache.get("u")
        with pytest.raises(ValueError):
            hit[0] = 99.0
        np.testing.assert_array_equal(cache.get("u"), [1.0, 2.0, 3.0])

    def test_overwritten_entries_stay_read_only(self):
        cache = LRUCache(4)
        cache.put("u", np.array([1.0]))
        cache.put("u", np.array([2.0]))
        hit = cache.get("u")
        assert not hit.flags.writeable
        np.testing.assert_array_equal(hit, [2.0])


class TestLRUCacheEvictionEdgeCases:
    """Eviction-order corners left unpinned by the original serving PR."""

    def test_overwrite_refreshes_recency_without_evicting(self):
        # Re-putting an existing key must not push the cache over capacity
        # (no spurious eviction) and must make that key most-recently-used.
        cache = LRUCache(2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        cache.put("a", np.array([3.0]))     # overwrite, refresh recency
        assert len(cache) == 2
        assert "a" in cache and "b" in cache
        cache.put("c", np.array([4.0]))     # evicts "b", the LRU entry
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        np.testing.assert_array_equal(cache.get("a"), [3.0])

    def test_missed_get_does_not_disturb_recency(self):
        cache = LRUCache(2)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert cache.get("zzz") is None     # miss must not touch the order
        cache.put("c", np.array([3.0]))     # still evicts "a" (oldest)
        assert "a" not in cache
        assert "b" in cache and "c" in cache

    def test_capacity_one_thrashes_correctly(self):
        cache = LRUCache(1)
        cache.put("a", np.array([1.0]))
        cache.put("b", np.array([2.0]))
        assert "a" not in cache
        np.testing.assert_array_equal(cache.get("b"), [2.0])
        assert len(cache) == 1

    def test_interleaved_get_put_eviction_order(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, np.array([float(ord(key))]))
        cache.get("a")                       # order now b, c, a
        cache.put("d", np.array([4.0]))      # evicts "b"
        cache.get("c")                       # order now a, d, c
        cache.put("e", np.array([5.0]))      # evicts "a"
        assert "b" not in cache and "a" not in cache
        assert set("cde") == {k for k in "abcde" if k in cache}

    def test_clear_keeps_counters_and_resets_order(self):
        cache = LRUCache(2)
        cache.put("a", np.array([1.0]))
        cache.get("a")
        cache.get("miss")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1
        # A post-clear fill starts a fresh eviction order.
        cache.put("x", np.array([1.0]))
        cache.put("y", np.array([2.0]))
        cache.put("z", np.array([3.0]))
        assert "x" not in cache and "y" in cache and "z" in cache


class TestRequestBatcher:
    def test_auto_flush_on_full_batch(self, server):
        batcher = RequestBatcher(server, max_batch_size=3)
        first = batcher.submit(0)
        second = batcher.submit(1)
        assert not first.done and not second.done
        third = batcher.submit(2)  # hits max_batch_size -> auto flush
        assert first.done and second.done and third.done
        assert batcher.batches_flushed == 1
        assert len(batcher) == 0

    def test_explicit_flush_and_result(self, server):
        batcher = RequestBatcher(server, max_batch_size=100)
        ticket = batcher.submit(1, k=4)
        with pytest.raises(RuntimeError):
            ticket.result()
        results = batcher.flush()
        assert len(results) == 1
        assert len(ticket.result()) == 4
        assert ticket.result().user == 1

    def test_batched_results_match_direct(self, server):
        batcher = RequestBatcher(server, max_batch_size=100)
        tickets = [batcher.submit(u) for u in (3, 8, 3)]
        batcher.flush()
        direct = server.recommend([3, 8, 3])
        for ticket, rec in zip(tickets, direct):
            assert np.array_equal(ticket.result().items, rec.items)

    def test_mixed_k_requests(self, server):
        batcher = RequestBatcher(server, max_batch_size=100)
        small = batcher.submit(2, k=3)
        default = batcher.submit(2)
        batcher.flush()
        assert len(small.result()) == 3
        assert len(default.result()) == server.top_k
        assert np.array_equal(small.result().items, default.result().items[:3])

    def test_empty_flush(self, server):
        assert RequestBatcher(server).flush() == []

    def test_bad_batch_size(self, server):
        with pytest.raises(ValueError):
            RequestBatcher(server, max_batch_size=0)


class TestRequestBatcherPoisonedBatch:
    """Batch-poisoning regression: one bad request used to raise out of
    flush() *after* the queue swap, permanently stranding every co-batched
    ticket (never fulfilled, never failed, no longer queued)."""

    def test_bad_user_fails_only_its_own_ticket(self, server):
        batcher = RequestBatcher(server, max_batch_size=100)
        good_before = batcher.submit(1)
        poison = batcher.submit(10**9)        # out of range for the source
        good_after = batcher.submit(2)
        results = batcher.flush()
        assert len(batcher) == 0
        assert good_before.done and good_after.done and poison.done
        assert poison.failed and not good_before.failed
        with pytest.raises(ValueError):
            poison.result()
        # Valid co-batched traffic is served with correct lists.
        for ticket in (good_before, good_after):
            direct = server.recommend([ticket.user])[0]
            assert np.array_equal(ticket.result().items, direct.items)
        # The returned list mirrors ticket outcomes positionally.
        assert results[0] is not None and results[2] is not None
        assert results[1] is None

    def test_poison_in_one_k_group_spares_other_groups(self, server):
        batcher = RequestBatcher(server, max_batch_size=100)
        clean_group = batcher.submit(3, k=4)
        poisoned_group = batcher.submit(10**9, k=7)
        victim = batcher.submit(5, k=7)
        batcher.flush()
        assert len(clean_group.result()) == 4
        assert poisoned_group.failed
        assert not victim.failed and len(victim.result()) == 7

    def test_all_good_batch_unaffected(self, server):
        # The recovery path must not kick in for healthy batches: one
        # vectorized recommend per k-group, exactly as before.
        before = server.stats.requests
        batcher = RequestBatcher(server, max_batch_size=100)
        tickets = [batcher.submit(u) for u in (1, 2, 3)]
        batcher.flush()
        assert server.stats.requests == before + 1
        assert all(t.done and not t.failed for t in tickets)

    def test_failed_ticket_reports_done_but_failed(self, server):
        batcher = RequestBatcher(server, max_batch_size=100)
        ticket = batcher.submit(-5)
        assert not ticket.done
        batcher.flush()
        assert ticket.done and ticket.failed
        with pytest.raises(ValueError):
            ticket.result()


class _FakeClock:
    """Deterministic monotonic clock for timeout tests (no sleeping)."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRequestBatcherFlushEdgeCases:
    """Flush paths left untested by the initial serving PR."""

    def test_empty_flush_is_noop(self, server):
        batcher = RequestBatcher(server, max_batch_size=4)
        assert batcher.flush() == []
        assert batcher.batches_flushed == 0
        assert len(batcher) == 0

    def test_poll_without_deadline_never_flushes(self, server):
        batcher = RequestBatcher(server, max_batch_size=8)
        batcher.submit(0)
        assert batcher.poll() == []
        assert len(batcher) == 1

    def test_timeout_flushes_partial_batch_on_submit(self, server):
        clock = _FakeClock()
        batcher = RequestBatcher(server, max_batch_size=100, max_delay=0.5,
                                 clock=clock)
        first = batcher.submit(0)
        clock.advance(0.6)  # oldest request is now past its deadline
        second = batcher.submit(1)
        assert first.done and second.done
        assert batcher.batches_flushed == 1
        assert len(batcher) == 0

    def test_timeout_flushes_partial_batch_on_poll(self, server):
        clock = _FakeClock()
        batcher = RequestBatcher(server, max_batch_size=100, max_delay=1.0,
                                 clock=clock)
        ticket = batcher.submit(3)
        clock.advance(0.5)
        assert batcher.poll() == []            # not due yet
        assert not ticket.done
        clock.advance(0.5)
        results = batcher.poll()               # exactly at the deadline
        assert len(results) == 1 and ticket.done

    def test_timeout_clock_resets_after_flush(self, server):
        clock = _FakeClock()
        batcher = RequestBatcher(server, max_batch_size=100, max_delay=1.0,
                                 clock=clock)
        batcher.submit(0)
        clock.advance(2.0)
        batcher.poll()
        # A fresh request must get a fresh deadline, not the stale stamp.
        ticket = batcher.submit(1)
        assert batcher.poll() == []
        assert not ticket.done
        clock.advance(1.0)
        assert len(batcher.poll()) == 1

    def test_requests_arriving_during_flush_join_next_batch(self, server):
        """A submit issued while a flush is serving must not be lost, must

        not be fulfilled by the in-flight batch, and must be served by the
        following flush."""
        batcher = RequestBatcher(server, max_batch_size=100)
        late_tickets = []
        original_recommend = server.recommend

        def recommending_submits(users, k=None):
            if not late_tickets:  # only on the first (outer) flush
                late_tickets.append(batcher.submit(5))
            return original_recommend(users, k=k)

        batcher.submit(0)
        batcher.submit(1)
        server.recommend = recommending_submits
        try:
            results = batcher.flush()
        finally:
            server.recommend = original_recommend
        assert len(results) == 2
        late = late_tickets[0]
        assert not late.done            # not swept into the in-flight batch
        assert len(batcher) == 1        # queued for the next flush
        batcher.flush()
        assert late.done
        assert np.array_equal(late.result().items,
                              server.recommend([5])[0].items)

    def test_negative_max_delay_rejected(self, server):
        with pytest.raises(ValueError):
            RequestBatcher(server, max_delay=-0.1)

    def test_zero_max_delay_flushes_every_submit(self, server):
        clock = _FakeClock()
        batcher = RequestBatcher(server, max_batch_size=100, max_delay=0.0,
                                 clock=clock)
        ticket = batcher.submit(2)
        assert ticket.done
        assert batcher.batches_flushed == 1


class TestServerStatsContract:
    """Pins the ServerStats / LRUCache counting contract against the
    RequestBatcher's flush semantics (see the ServerStats docstring)."""

    def _fresh(self, trained_model, small_scenario, capacity=16):
        return ColdStartServer(trained_model, small_scenario.domain_x.name,
                               small_scenario.domain_y.name, top_k=5,
                               cache_capacity=capacity)

    def test_requests_counts_recommend_calls_not_flushes(self, trained_model,
                                                         small_scenario):
        # A mixed-k flush is one batch for the batcher but one vectorized
        # recommend call per distinct k for the server.
        server = self._fresh(trained_model, small_scenario)
        batcher = RequestBatcher(server, max_batch_size=100)
        batcher.submit(1, k=3)
        batcher.submit(2)          # default k
        batcher.submit(3, k=3)
        batcher.flush()
        assert batcher.batches_flushed == 1
        assert server.stats.requests == 2          # k=3 group + default group
        assert server.stats.users_served == 3      # every queued slot served

    def test_uniform_k_flush_is_one_request(self, trained_model, small_scenario):
        server = self._fresh(trained_model, small_scenario)
        batcher = RequestBatcher(server, max_batch_size=100)
        for user in (1, 2, 3, 4):
            batcher.submit(user)
        batcher.flush()
        assert batcher.batches_flushed == 1
        assert server.stats.requests == 1
        assert server.stats.users_served == 4

    def test_cache_counts_per_lookup_including_batch_duplicates(
            self, trained_model, small_scenario):
        # Duplicates within one batch: each occurrence is its own cache
        # lookup (miss), but the encoder runs once per unique user.
        server = self._fresh(trained_model, small_scenario)
        server.recommend([7, 7, 7, 8])
        assert server.cache.misses == 4
        assert server.cache.hits == 0
        assert server.stats.users_encoded == 2
        assert server.stats.users_served == 4
        # The batch populated the cache, so a replay is all hits.
        server.recommend([7, 8])
        assert server.cache.hits == 2
        assert server.stats.users_encoded == 2     # nothing re-encoded

    def test_zero_capacity_cache_counts_every_lookup_as_miss(
            self, trained_model, small_scenario):
        server = self._fresh(trained_model, small_scenario, capacity=0)
        server.recommend([1, 2])
        server.recommend([1, 2])
        assert server.cache.misses == 4
        assert server.cache.hits == 0
        assert server.stats.users_encoded == 4     # re-encoded every batch
