"""Tests for negative sampling and edge-batch iteration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import EdgeBatchIterator, NegativeSampler
from repro.graph import BipartiteGraph


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edges = np.unique(
        np.column_stack([rng.integers(0, 20, 300), rng.integers(0, 50, 300)]), axis=0
    )
    return BipartiteGraph(20, 50, edges)


class TestNegativeSampler:
    def test_negatives_exclude_interactions(self, graph):
        sampler = NegativeSampler(graph, seed=1)
        interacted = graph.user_item_set()
        for user in range(graph.num_users):
            negatives = sampler.sample_for_user(user, 10)
            assert set(negatives.tolist()).isdisjoint(interacted[user])

    def test_negatives_are_unique_per_call(self, graph):
        sampler = NegativeSampler(graph, seed=2)
        negatives = sampler.sample_for_user(0, 20)
        assert len(set(negatives.tolist())) == len(negatives)

    def test_exclude_argument_respected(self, graph):
        sampler = NegativeSampler(graph, seed=3)
        banned = {0, 1, 2, 3, 4}
        negatives = sampler.sample_for_user(0, 15, exclude=banned)
        assert set(negatives.tolist()).isdisjoint(banned)

    def test_requesting_more_than_available_returns_complement(self):
        edges = np.array([[0, 0], [0, 1]])
        graph = BipartiteGraph(1, 5, edges)
        sampler = NegativeSampler(graph, seed=0)
        negatives = sampler.sample_for_user(0, 100)
        assert sorted(negatives.tolist()) == [2, 3, 4]

    def test_user_with_all_items_raises(self):
        edges = np.array([[0, 0], [0, 1], [0, 2]])
        graph = BipartiteGraph(1, 3, edges)
        sampler = NegativeSampler(graph, seed=0)
        with pytest.raises(ValueError):
            sampler.sample_for_user(0, 1)

    def test_sample_batch_shape(self, graph):
        sampler = NegativeSampler(graph, seed=4)
        users = np.array([0, 3, 7, 7])
        batch = sampler.sample_batch(users, num_negatives=3)
        assert batch.shape == (4, 3)

    def test_sample_batch_pads_when_few_negatives_available(self):
        edges = np.array([[0, 0], [0, 1], [0, 2]])
        graph = BipartiteGraph(1, 4, edges)
        sampler = NegativeSampler(graph, seed=0)
        batch = sampler.sample_batch(np.array([0]), num_negatives=5)
        assert batch.shape == (1, 5)
        assert set(batch.ravel().tolist()) == {3}

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 19), st.integers(1, 25))
    def test_property_negatives_never_positive(self, user, count):
        rng = np.random.default_rng(7)
        edges = np.unique(
            np.column_stack([rng.integers(0, 20, 200), rng.integers(0, 60, 200)]), axis=0
        )
        graph = BipartiteGraph(20, 60, edges)
        sampler = NegativeSampler(graph, seed=11)
        interacted = graph.user_item_set()[user]
        negatives = sampler.sample_for_user(user, count)
        assert set(negatives.tolist()).isdisjoint(interacted)


class TestEdgeBatchIterator:
    def test_one_epoch_covers_every_edge(self, graph):
        iterator = EdgeBatchIterator(graph, batch_size=32, seed=5)
        seen = set()
        for users, positives, _ in iterator:
            for user, item in zip(users, positives):
                seen.add((int(user), int(item)))
        expected = {(int(u), int(i)) for u, i in graph.edges}
        assert seen == expected

    def test_len_matches_batches(self, graph):
        iterator = EdgeBatchIterator(graph, batch_size=32)
        assert len(iterator) == int(np.ceil(graph.num_edges / 32))
        assert len(list(iterator)) == len(iterator)

    def test_negative_shape(self, graph):
        iterator = EdgeBatchIterator(graph, batch_size=64, num_negatives=3)
        users, positives, negatives = next(iter(iterator))
        assert negatives.shape == (len(users), 3)

    def test_invalid_batch_size(self, graph):
        with pytest.raises(ValueError):
            EdgeBatchIterator(graph, batch_size=0)
