"""Tests for experiment profiles and the table/figure runners (smoke scale)."""

import numpy as np
import pytest

from repro.experiments import (
    PROFILES,
    build_paper_scenario,
    format_rows,
    get_profile,
    run_ablation,
    run_beta_sweep,
    run_dataset_statistics,
    run_interaction_groups,
    run_layer_sweep,
    run_main_comparison,
    run_overlap_ratio,
)


@pytest.fixture(scope="module")
def smoke():
    return get_profile("smoke")


class TestProfiles:
    def test_registered_profiles(self):
        assert set(PROFILES) == {"smoke", "fast", "full"}

    def test_profiles_are_ordered_by_budget(self):
        smoke, fast, full = get_profile("smoke"), get_profile("fast"), get_profile("full")
        assert smoke.scenario_scale < fast.scenario_scale <= full.scenario_scale
        assert smoke.cdrib.epochs < fast.cdrib.epochs <= full.cdrib.epochs

    def test_env_variable_selects_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert get_profile().name == "smoke"

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError):
            get_profile("gigantic")


class TestScenarioBuilder:
    def test_build_paper_scenario(self, smoke):
        scenario = build_paper_scenario("game_video", smoke)
        assert {scenario.domain_x.name, scenario.domain_y.name} == {"game", "video"}
        assert scenario.num_overlap_train > 0
        for split in scenario.directions:
            assert split.num_cold_start_users > 0

    def test_unknown_scenario(self, smoke):
        with pytest.raises(KeyError):
            build_paper_scenario("books_music", smoke)


class TestRunners:
    def test_dataset_statistics_rows(self, smoke):
        rows = run_dataset_statistics(["game_video"], profile=smoke)
        assert len(rows) == 2
        assert {"|U|", "|V|", "Training", "#Overlap", "Density"} <= set(rows[0])

    def test_main_comparison_row_schema(self, smoke):
        rows = run_main_comparison("game_video", baselines=["BPRMF"], profile=smoke)
        methods = {row["method"] for row in rows}
        assert methods == {"BPRMF", "CDRIB"}
        for row in rows:
            assert {"MRR", "NDCG@5", "NDCG@10", "HR@1", "HR@5", "HR@10"} <= set(row)
            assert 0 <= row["MRR"] <= 100

    def test_main_comparison_without_cdrib(self, smoke):
        rows = run_main_comparison("game_video", baselines=["CML"], profile=smoke,
                                   include_cdrib=False)
        assert {row["method"] for row in rows} == {"CML"}

    def test_ablation_rows(self, smoke):
        rows = run_ablation("game_video", variants=("wo_con", "full"), profile=smoke)
        assert {row["method"] for row in rows} == {"w/o Con", "CDRIB"}
        assert all("variant" in row for row in rows)

    def test_overlap_ratio_rows(self, smoke):
        rows = run_overlap_ratio("game_video", ratios=(0.5, 1.0), profile=smoke,
                                 compare_savae=False)
        ratios = {row["overlap_ratio"] for row in rows}
        assert ratios == {0.5, 1.0}
        assert {row["method"] for row in rows} == {"CDRIB"}

    def test_interaction_group_rows(self, smoke):
        rows = run_interaction_groups("game_video", profile=smoke, compare_savae=False)
        assert all(row["method"] == "CDRIB" for row in rows)
        assert {"interactions", "MRR", "records"} <= set(rows[0])

    def test_beta_sweep_rows(self, smoke):
        rows = run_beta_sweep("game_video", betas=(0.5, 1.0), profile=smoke)
        assert {row["beta"] for row in rows} == {0.5, 1.0}

    def test_layer_sweep_rows(self, smoke):
        rows = run_layer_sweep("game_video", layer_counts=(1, 2), profile=smoke)
        assert {row["num_layers"] for row in rows} == {1, 2}


class TestFormatting:
    def test_format_rows_alignment(self):
        rows = [{"method": "CDRIB", "MRR": 12.3456}, {"method": "BPR", "MRR": 4.2}]
        text = format_rows(rows)
        assert "CDRIB" in text and "12.35" in text
        assert format_rows([]) == "(no rows)"

    def test_format_rows_column_subset(self):
        rows = [{"a": 1, "b": 2.0}]
        text = format_rows(rows, columns=["a"])
        assert "b" not in text.splitlines()[0]
