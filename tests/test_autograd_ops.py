"""Gradient and value checks for every differentiable op."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, ops


def _t(shape, rng, scale=1.0):
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


@pytest.fixture
def seeded_rng():
    return np.random.default_rng(0)


class TestElementwiseGradients:
    def test_add(self, seeded_rng):
        a, b = _t((3, 4), seeded_rng), _t((3, 4), seeded_rng)
        check_gradients(lambda x, y: ops.sum(ops.add(x, y)), [a, b])

    def test_add_broadcast(self, seeded_rng):
        a, b = _t((3, 4), seeded_rng), _t((4,), seeded_rng)
        check_gradients(lambda x, y: ops.sum(ops.add(x, y)), [a, b])

    def test_sub_broadcast_scalar(self, seeded_rng):
        a, b = _t((3, 4), seeded_rng), _t((1,), seeded_rng)
        check_gradients(lambda x, y: ops.sum(ops.sub(x, y)), [a, b])

    def test_mul(self, seeded_rng):
        a, b = _t((2, 5), seeded_rng), _t((2, 5), seeded_rng)
        check_gradients(lambda x, y: ops.sum(ops.mul(x, y)), [a, b])

    def test_mul_broadcast_column(self, seeded_rng):
        a, b = _t((3, 4), seeded_rng), _t((3, 1), seeded_rng)
        check_gradients(lambda x, y: ops.sum(ops.mul(x, y)), [a, b])

    def test_div(self, seeded_rng):
        a = _t((3, 3), seeded_rng)
        b = Tensor(seeded_rng.uniform(0.5, 2.0, (3, 3)), requires_grad=True)
        check_gradients(lambda x, y: ops.sum(ops.div(x, y)), [a, b])

    def test_neg_power(self, seeded_rng):
        a = Tensor(seeded_rng.uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradients(lambda x: ops.sum(ops.neg(ops.power(x, 3))), [a])

    def test_exp_log(self, seeded_rng):
        a = Tensor(seeded_rng.uniform(0.5, 2.0, (4,)), requires_grad=True)
        check_gradients(lambda x: ops.sum(ops.log(ops.exp(x))), [a])

    def test_sqrt(self, seeded_rng):
        a = Tensor(seeded_rng.uniform(0.5, 4.0, (5,)), requires_grad=True)
        check_gradients(lambda x: ops.sum(ops.sqrt(x)), [a])

    def test_abs(self, seeded_rng):
        a = Tensor(np.array([1.5, -2.5, 3.0]), requires_grad=True)
        check_gradients(lambda x: ops.sum(ops.abs(x)), [a])

    def test_clip_gradient_masked(self):
        a = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        out = ops.sum(ops.clip(a, -1.0, 1.0))
        out.backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum_minimum_values(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        np.testing.assert_allclose(ops.maximum(a, b).data, [3.0, 5.0])
        np.testing.assert_allclose(ops.minimum(a, b).data, [1.0, 2.0])

    def test_maximum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        ops.sum(ops.maximum(a, b)).backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])


class TestActivations:
    def test_sigmoid_gradient(self, seeded_rng):
        a = _t((4, 3), seeded_rng)
        check_gradients(lambda x: ops.sum(ops.sigmoid(x)), [a])

    def test_sigmoid_extreme_values_stable(self):
        out = ops.sigmoid(Tensor([-1000.0, 1000.0]))
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_tanh_gradient(self, seeded_rng):
        a = _t((3, 3), seeded_rng)
        check_gradients(lambda x: ops.sum(ops.tanh(x)), [a])

    def test_relu_values_and_gradient(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        out = ops.relu(a)
        np.testing.assert_allclose(out.data, [0.0, 2.0])
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_leaky_relu_slope(self):
        a = Tensor([-2.0, 4.0], requires_grad=True)
        out = ops.leaky_relu(a, negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 4.0])
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_softplus_gradient_and_stability(self, seeded_rng):
        a = _t((5,), seeded_rng)
        check_gradients(lambda x: ops.sum(ops.softplus(x)), [a])
        big = ops.softplus(Tensor([800.0, -800.0]))
        assert np.all(np.isfinite(big.data))

    def test_log_sigmoid_matches_log_of_sigmoid(self, seeded_rng):
        a = _t((6,), seeded_rng)
        np.testing.assert_allclose(
            ops.log_sigmoid(a).data, np.log(ops.sigmoid(a).data), atol=1e-10
        )
        check_gradients(lambda x: ops.sum(ops.log_sigmoid(x)), [a])

    def test_softmax_rows_sum_to_one(self, seeded_rng):
        a = _t((4, 7), seeded_rng, scale=3.0)
        out = ops.softmax(a, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_gradient(self, seeded_rng):
        a = _t((3, 4), seeded_rng)
        weights = seeded_rng.standard_normal((3, 4))
        check_gradients(lambda x: ops.sum(ops.mul(ops.softmax(x), weights)), [a])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, seeded_rng):
        a = _t((3, 4), seeded_rng)
        assert ops.sum(a, axis=0).shape == (4,)
        assert ops.sum(a, axis=1, keepdims=True).shape == (3, 1)
        check_gradients(lambda x: ops.sum(ops.sum(x, axis=1)), [a])

    def test_mean_gradient(self, seeded_rng):
        a = _t((4, 5), seeded_rng)
        check_gradients(lambda x: ops.mean(x), [a])
        check_gradients(lambda x: ops.sum(ops.mean(x, axis=0)), [a])

    def test_reshape_roundtrip_gradient(self, seeded_rng):
        a = _t((2, 6), seeded_rng)
        check_gradients(lambda x: ops.sum(ops.mul(ops.reshape(x, (3, 4)), 2.0)), [a])

    def test_transpose_gradient(self, seeded_rng):
        a = _t((2, 3), seeded_rng)
        weights = seeded_rng.standard_normal((3, 2))
        check_gradients(lambda x: ops.sum(ops.mul(ops.transpose(x), weights)), [a])

    def test_concat_values_and_gradient(self, seeded_rng):
        a, b = _t((2, 3), seeded_rng), _t((2, 2), seeded_rng)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        check_gradients(lambda x, y: ops.sum(ops.concat([x, y], axis=1)), [a, b])

    def test_concat_axis_zero(self, seeded_rng):
        a, b = _t((2, 3), seeded_rng), _t((4, 3), seeded_rng)
        assert ops.concat([a, b], axis=0).shape == (6, 3)

    def test_stack_gradient(self, seeded_rng):
        a, b = _t((3,), seeded_rng), _t((3,), seeded_rng)
        out = ops.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        check_gradients(lambda x, y: ops.sum(ops.stack([x, y])), [a, b])

    def test_index_select_gradient_with_repeats(self):
        a = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        index = np.array([0, 0, 2])
        out = ops.index_select(a, index)
        ops.sum(out).backward()
        expected = np.zeros((4, 3))
        expected[0] = 2.0
        expected[2] = 1.0
        np.testing.assert_allclose(a.grad, expected)


class TestLinearAlgebra:
    def test_matmul_gradient(self, seeded_rng):
        a, b = _t((3, 4), seeded_rng), _t((4, 2), seeded_rng)
        check_gradients(lambda x, y: ops.sum(ops.matmul(x, y)), [a, b])

    def test_matmul_value(self):
        a = Tensor([[1.0, 2.0]])
        b = Tensor([[3.0], [4.0]])
        np.testing.assert_allclose(ops.matmul(a, b).data, [[11.0]])

    def test_dot_rows_matches_manual(self, seeded_rng):
        a, b = _t((5, 3), seeded_rng), _t((5, 3), seeded_rng)
        np.testing.assert_allclose(
            ops.dot_rows(a, b).data, np.sum(a.data * b.data, axis=-1)
        )
        check_gradients(lambda x, y: ops.sum(ops.dot_rows(x, y)), [a, b])


class TestStochasticAndLosses:
    def test_dropout_eval_is_identity(self, seeded_rng):
        a = _t((10, 10), seeded_rng)
        out = ops.dropout(a, 0.5, training=False)
        np.testing.assert_allclose(out.data, a.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((200, 200)))
        out = ops.dropout(a, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor([1.0]), 1.5, training=True)

    def test_reparameterize_gradients(self, seeded_rng):
        mu = _t((4, 3), seeded_rng)
        sigma = Tensor(seeded_rng.uniform(0.5, 1.5, (4, 3)), requires_grad=True)
        noise = seeded_rng.standard_normal((4, 3))
        check_gradients(
            lambda m, s: ops.sum(ops.gaussian_reparameterize(m, s, noise=noise)),
            [mu, sigma],
        )

    def test_reparameterize_value(self):
        mu = Tensor([[1.0]])
        sigma = Tensor([[2.0]])
        out = ops.gaussian_reparameterize(mu, sigma, noise=np.array([[0.5]]))
        np.testing.assert_allclose(out.data, [[2.0]])

    def test_gaussian_kl_zero_at_prior(self):
        mu = Tensor(np.zeros((5, 4)))
        sigma = Tensor(np.ones((5, 4)))
        assert ops.gaussian_kl(mu, sigma).item() == pytest.approx(0.0, abs=1e-10)

    def test_gaussian_kl_positive_away_from_prior(self, seeded_rng):
        mu = Tensor(seeded_rng.standard_normal((5, 4)))
        sigma = Tensor(seeded_rng.uniform(0.2, 0.8, (5, 4)))
        assert ops.gaussian_kl(mu, sigma).item() > 0

    def test_gaussian_kl_gradient(self, seeded_rng):
        mu = _t((3, 2), seeded_rng)
        sigma = Tensor(seeded_rng.uniform(0.5, 1.5, (3, 2)), requires_grad=True)
        check_gradients(lambda m, s: ops.gaussian_kl(m, s, reduce="sum"), [mu, sigma])

    def test_gaussian_kl_reduce_modes(self, seeded_rng):
        mu = Tensor(seeded_rng.standard_normal((6, 4)))
        sigma = Tensor(seeded_rng.uniform(0.5, 1.5, (6, 4)))
        per_row = ops.gaussian_kl(mu, sigma, reduce="none")
        assert per_row.shape == (6,)
        assert ops.gaussian_kl(mu, sigma, reduce="sum").item() == pytest.approx(
            per_row.data.sum()
        )
        with pytest.raises(ValueError):
            ops.gaussian_kl(mu, sigma, reduce="bogus")

    def test_bce_with_logits_matches_reference(self, seeded_rng):
        logits = seeded_rng.standard_normal(20)
        targets = (seeded_rng.random(20) > 0.5).astype(float)
        loss = ops.binary_cross_entropy_with_logits(Tensor(logits), targets)
        probs = 1.0 / (1.0 + np.exp(-logits))
        reference = -(targets * np.log(probs) + (1 - targets) * np.log(1 - probs)).mean()
        assert loss.item() == pytest.approx(reference, rel=1e-8)

    def test_bce_with_logits_gradient(self, seeded_rng):
        logits = _t((10,), seeded_rng)
        targets = (seeded_rng.random(10) > 0.5).astype(float)
        check_gradients(
            lambda x: ops.binary_cross_entropy_with_logits(x, targets, reduce="sum"),
            [logits],
        )

    def test_bce_extreme_logits_stable(self):
        loss = ops.binary_cross_entropy_with_logits(
            Tensor([1000.0, -1000.0]), np.array([1.0, 0.0])
        )
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-10)

    def test_mse_loss(self, seeded_rng):
        a = _t((4, 3), seeded_rng)
        target = seeded_rng.standard_normal((4, 3))
        loss = ops.mse_loss(a, target)
        assert loss.item() == pytest.approx(((a.data - target) ** 2).mean())
        check_gradients(lambda x: ops.mse_loss(x, target, reduce="sum"), [a])

    def test_reduce_mode_validation(self):
        with pytest.raises(ValueError):
            ops.mse_loss(Tensor([1.0]), np.array([1.0]), reduce="bogus")
        with pytest.raises(ValueError):
            ops.binary_cross_entropy_with_logits(Tensor([1.0]), np.array([1.0]),
                                                 reduce="bogus")
