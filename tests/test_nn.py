"""Tests for Module/Parameter bookkeeping and the neural-network layers."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.nn import MLP, Activation, Dropout, Embedding, Linear, Module, Parameter, Sequential, init


class TestModuleBookkeeping:
    def test_parameters_discovered_recursively(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer1 = Linear(4, 3)
                self.layer2 = Linear(3, 2)

        net = Net()
        names = dict(net.named_parameters())
        assert "layer1.weight" in names
        assert "layer2.bias" in names
        assert len(list(net.parameters())) == 4

    def test_num_parameters(self):
        layer = Linear(4, 3)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(3, 2)
        out = ops.sum(layer(Tensor(np.ones((1, 3)))))
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None
        assert layer.bias.grad is None

    def test_state_dict_roundtrip(self):
        a = MLP([3, 4, 2], rng=np.random.default_rng(0))
        b = MLP([3, 4, 2], rng=np.random.default_rng(1))
        b.load_state_dict(a.state_dict())
        x = Tensor(np.random.default_rng(2).standard_normal((5, 3)))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_is_a_copy(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"][0, 0] = 123.0
        assert layer.weight.data[0, 0] != 123.0

    def test_load_state_dict_strict_mismatch(self):
        layer = Linear(2, 2)
        with pytest.raises(KeyError):
            layer.load_state_dict({"bogus": np.zeros(2)})

    def test_load_state_dict_shape_mismatch(self):
        layer = Linear(2, 2)
        state = layer.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_register_module_explicit(self):
        container = Module()
        container.register_module("inner", Linear(2, 2))
        assert "inner.weight" in dict(container.named_parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestLinear:
    def test_output_shape_and_affine_value(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((5, 3))
        out = layer(Tensor(x))
        assert out.shape == (5, 2)
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_gradients_flow_to_weight_and_bias(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        out = ops.sum(layer(Tensor(np.ones((4, 3)))))
        out.backward()
        assert layer.weight.grad.shape == (3, 2)
        np.testing.assert_allclose(layer.bias.grad, [4.0, 4.0])


class TestEmbedding:
    def test_lookup_returns_rows(self):
        table = Embedding(10, 4, rng=np.random.default_rng(0))
        out = table(np.array([1, 3, 1]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[0], out.data[2])

    def test_gradient_scatter_adds(self):
        table = Embedding(5, 2, rng=np.random.default_rng(0))
        out = ops.sum(table(np.array([0, 0, 1])))
        out.backward()
        np.testing.assert_allclose(table.weight.grad[0], [2.0, 2.0])
        np.testing.assert_allclose(table.weight.grad[1], [1.0, 1.0])
        np.testing.assert_allclose(table.weight.grad[2], [0.0, 0.0])

    def test_all_returns_full_table(self):
        table = Embedding(6, 3)
        assert table.all().shape == (6, 3)


class TestDropoutActivationSequentialMLP:
    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.9, rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_activation_by_name(self):
        x = Tensor([-1.0, 1.0])
        np.testing.assert_allclose(Activation("relu")(x).data, [0.0, 1.0])
        np.testing.assert_allclose(
            Activation("leaky_relu", negative_slope=0.1)(x).data, [-0.1, 1.0]
        )

    def test_activation_unknown_name(self):
        with pytest.raises(ValueError):
            Activation("swishy")

    def test_sequential_applies_in_order(self):
        model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), Activation("relu"))
        out = model(Tensor(np.ones((1, 2))))
        assert np.all(out.data >= 0)
        assert len(model) == 2

    def test_mlp_architecture(self):
        mlp = MLP([4, 8, 2], activation="tanh", rng=np.random.default_rng(0))
        out = mlp(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 2)

    def test_mlp_final_activation(self):
        mlp = MLP([4, 4, 1], final_activation="sigmoid", rng=np.random.default_rng(0))
        out = mlp(Tensor(np.random.default_rng(1).standard_normal((6, 4))))
        assert np.all((out.data >= 0) & (out.data <= 1))

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_mlp_trains_on_regression(self):
        rng = np.random.default_rng(0)
        from repro.optim import Adam

        x = rng.standard_normal((64, 3))
        target = x @ np.array([[1.0], [-2.0], [0.5]])
        mlp = MLP([3, 16, 1], rng=rng)
        optimizer = Adam(mlp.parameters(), lr=0.05)
        first_loss = None
        for _ in range(120):
            optimizer.zero_grad()
            loss = ops.mse_loss(mlp(Tensor(x)), target)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first_loss * 0.1


class TestInit:
    def test_xavier_uniform_bounds(self):
        weights = init.xavier_uniform((100, 50), rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(weights) <= limit + 1e-12)

    def test_xavier_normal_std(self):
        weights = init.xavier_normal((2000, 100), rng=np.random.default_rng(0))
        expected = np.sqrt(2.0 / 2100)
        assert weights.std() == pytest.approx(expected, rel=0.1)

    def test_normal_std(self):
        weights = init.normal((5000,), std=0.02, rng=np.random.default_rng(0))
        assert weights.std() == pytest.approx(0.02, rel=0.1)

    def test_zeros(self):
        assert np.all(init.zeros((3, 3)) == 0)

    def test_fans_of_scalar_raise(self):
        with pytest.raises(ValueError):
            init.xavier_uniform(())
