"""The CI docs linter must keep ``repro.serve`` fully documented."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "lint_docs.py"


def _load_linter():
    spec = importlib.util.spec_from_file_location("lint_docs", LINTER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_serve_package_is_fully_documented():
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "serve").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_io_package_is_fully_documented():
    """The checkpoint subsystem is public API and held to the same bar."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "io").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_experiments_package_is_fully_documented():
    """The suite orchestrator / runners / CLI are public API (docs lint gate)."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "experiments").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_eval_package_is_fully_documented():
    """The evaluation protocol and significance tests are public API too."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "eval").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_experiments_doc_exists_and_is_linked():
    """docs/EXPERIMENTS.md ships with the suite and is reachable from the docs."""
    doc = REPO_ROOT / "docs" / "EXPERIMENTS.md"
    assert doc.is_file()
    text = doc.read_text(encoding="utf-8")
    for anchor in ("Spec schema reference", "suite_manifest.json",
                   "Resume-from-partial", "smoke", "main-tables"):
        assert anchor in text, f"EXPERIMENTS.md lost its {anchor!r} section"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "EXPERIMENTS.md" in readme
    assert "EXPERIMENTS.md" in architecture
    assert "Experiment orchestration" in architecture


def test_default_targets_cover_public_subsystems():
    """The CI gate's default target list names every documented subsystem."""
    lint_docs = _load_linter()
    assert set(lint_docs.DEFAULT_TARGETS) == {
        "src/repro/serve", "src/repro/io",
        "src/repro/experiments", "src/repro/eval", "src/repro/graph",
    }


def test_graph_package_is_fully_documented():
    """src/repro/graph joined the docstring gate in PR 5."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "graph").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_linter_flags_missing_docstrings(tmp_path):
    lint_docs = _load_linter()
    bad = tmp_path / "bad.py"
    bad.write_text("def public():\n    pass\n")
    problems = lint_docs.lint_file(bad)
    assert len(problems) == 2  # module docstring + function docstring
    assert any("public" in p for p in problems)


def test_linter_ignores_private_names(tmp_path):
    lint_docs = _load_linter()
    ok = tmp_path / "ok.py"
    ok.write_text('"""Documented."""\n\ndef _internal():\n    pass\n')
    assert lint_docs.lint_file(ok) == []


def test_cli_exit_codes(tmp_path):
    env_cmd = [sys.executable, str(LINTER)]
    good = subprocess.run(env_cmd + ["src/repro/serve"], cwd=REPO_ROOT,
                          capture_output=True, text=True)
    assert good.returncode == 0, good.stdout + good.stderr
    missing = subprocess.run(env_cmd + [str(tmp_path / "nonexistent")],
                             cwd=REPO_ROOT, capture_output=True, text=True)
    assert missing.returncode == 1


def test_cli_no_args_lints_everything(tmp_path):
    """The CI default (no arguments) covers docstrings AND markdown docs."""
    result = subprocess.run([sys.executable, str(LINTER)], cwd=REPO_ROOT,
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
    # More files than the five module targets alone -> markdown was included.
    assert "0 problem(s)" in result.stdout


def test_cli_docs_flag_scopes_markdown_targets():
    """--docs makes every argument a markdown target (file or directory)."""
    docs_only = subprocess.run([sys.executable, str(LINTER), "--docs", "docs"],
                               cwd=REPO_ROOT, capture_output=True, text=True)
    assert docs_only.returncode == 0, docs_only.stdout + docs_only.stderr
    readme_only = subprocess.run(
        [sys.executable, str(LINTER), "--docs", "README.md"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert readme_only.returncode == 0
    assert "checked 1 file(s)" in readme_only.stdout
    # The docs directory holds more than one markdown file, and --docs must
    # not widen to the full default set.
    docs_count = int(docs_only.stdout.split("checked ")[1].split(" ")[0])
    assert docs_count > 1
    everything = subprocess.run([sys.executable, str(LINTER)], cwd=REPO_ROOT,
                                capture_output=True, text=True)
    full_count = int(everything.stdout.split("checked ")[1].split(" ")[0])
    assert docs_count < full_count


class TestMarkdownCodeBlockLint:
    """The markdown half of the linter: doc examples must reference reality."""

    def _lint(self, tmp_path, text):
        lint_docs = _load_linter()
        doc = tmp_path / "doc.md"
        doc.write_text(text)
        return lint_docs.lint_markdown_file(doc, root=REPO_ROOT)

    def test_real_docs_are_clean(self):
        lint_docs = _load_linter()
        targets = list(lint_docs.iter_markdown_targets(
            lint_docs.DEFAULT_DOCS, REPO_ROOT))
        assert targets, "no markdown docs found"
        problems = []
        for path in targets:
            problems.extend(lint_docs.lint_markdown_file(path, root=REPO_ROOT))
        assert problems == []

    def test_valid_references_pass(self, tmp_path):
        problems = self._lint(tmp_path, "\n".join([
            "```python",
            "from repro.serve import ColdStartServer, IVFIndex",
            "index = repro.serve.ann.make_index",
            "```",
            "```bash",
            "PYTHONPATH=src python -m repro.experiments.cli ann --num-items 60000",
            "repro suite --spec main-tables --jobs 4",
            "```",
        ]))
        assert problems == []

    def test_broken_python_references_flagged(self, tmp_path):
        problems = self._lint(tmp_path, "\n".join([
            "```python",
            "from repro.serve import NoSuchClass",
            "import repro.nonexistent.module",
            "```",
        ]))
        assert any("NoSuchClass" in p for p in problems)
        assert any("repro.nonexistent.module" in p for p in problems)

    def test_broken_cli_references_flagged(self, tmp_path):
        problems = self._lint(tmp_path, "\n".join([
            "```bash",
            "python -m repro.experiments.cli table42 --no-such-flag",
            "ls examples/never_written.py",
            "```",
        ]))
        assert any("table42" in p for p in problems)
        assert any("--no-such-flag" in p for p in problems)
        assert any("never_written" in p for p in problems)

    def test_untagged_and_other_language_blocks_ignored(self, tmp_path):
        problems = self._lint(tmp_path, "\n".join([
            "```",
            "repro.totally.fake paths here are fine in untagged blocks",
            "```",
            "```text",
            "python -m repro.more.fakery",
            "```",
        ]))
        assert problems == []

    def test_continuation_lines_joined(self, tmp_path):
        problems = self._lint(tmp_path, "\n".join([
            "```bash",
            "python -m repro.experiments.cli serve \\",
            "    --checkpoint runs/ckpt --bogus-flag",
            "```",
        ]))
        assert any("--bogus-flag" in p for p in problems)
