"""The CI docs linter must keep ``repro.serve`` fully documented."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "lint_docs.py"


def _load_linter():
    spec = importlib.util.spec_from_file_location("lint_docs", LINTER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_serve_package_is_fully_documented():
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "serve").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_io_package_is_fully_documented():
    """The checkpoint subsystem is public API and held to the same bar."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "io").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_experiments_package_is_fully_documented():
    """The suite orchestrator / runners / CLI are public API (docs lint gate)."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "experiments").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_eval_package_is_fully_documented():
    """The evaluation protocol and significance tests are public API too."""
    lint_docs = _load_linter()
    problems = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "eval").rglob("*.py")):
        problems.extend(lint_docs.lint_file(path))
    assert problems == []


def test_experiments_doc_exists_and_is_linked():
    """docs/EXPERIMENTS.md ships with the suite and is reachable from the docs."""
    doc = REPO_ROOT / "docs" / "EXPERIMENTS.md"
    assert doc.is_file()
    text = doc.read_text(encoding="utf-8")
    for anchor in ("Spec schema reference", "suite_manifest.json",
                   "Resume-from-partial", "smoke", "main-tables"):
        assert anchor in text, f"EXPERIMENTS.md lost its {anchor!r} section"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    architecture = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "EXPERIMENTS.md" in readme
    assert "EXPERIMENTS.md" in architecture
    assert "Experiment orchestration" in architecture


def test_default_targets_cover_public_subsystems():
    """The CI gate's default target list names every documented subsystem."""
    lint_docs = _load_linter()
    assert set(lint_docs.DEFAULT_TARGETS) == {
        "src/repro/serve", "src/repro/io",
        "src/repro/experiments", "src/repro/eval",
    }


def test_linter_flags_missing_docstrings(tmp_path):
    lint_docs = _load_linter()
    bad = tmp_path / "bad.py"
    bad.write_text("def public():\n    pass\n")
    problems = lint_docs.lint_file(bad)
    assert len(problems) == 2  # module docstring + function docstring
    assert any("public" in p for p in problems)


def test_linter_ignores_private_names(tmp_path):
    lint_docs = _load_linter()
    ok = tmp_path / "ok.py"
    ok.write_text('"""Documented."""\n\ndef _internal():\n    pass\n')
    assert lint_docs.lint_file(ok) == []


def test_cli_exit_codes(tmp_path):
    env_cmd = [sys.executable, str(LINTER)]
    good = subprocess.run(env_cmd + ["src/repro/serve"], cwd=REPO_ROOT,
                          capture_output=True, text=True)
    assert good.returncode == 0, good.stdout + good.stderr
    missing = subprocess.run(env_cmd + [str(tmp_path / "nonexistent")],
                             cwd=REPO_ROOT, capture_output=True, text=True)
    assert missing.returncode == 1
