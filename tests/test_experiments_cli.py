"""Tests for the experiments CLI, including the ``serve`` subcommand."""

import numpy as np
import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, run_experiment


class TestParser:
    def test_every_experiment_is_a_choice(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_serve_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--batch-sizes", "1,8", "--top-k", "3"])
        assert args.batch_sizes == "1,8"
        assert args.top_k == 3

    def test_train_and_checkpoint_flags(self):
        parser = build_parser()
        args = parser.parse_args(["train", "--save", "runs/a", "--resume", "runs/b",
                                  "--epochs", "3", "--engine", "reference",
                                  "--checkpoint-dir", "runs/c"])
        assert args.experiment == "train"
        assert args.save == "runs/a"
        assert args.resume == "runs/b"
        assert args.epochs == 3
        assert args.engine == "reference"
        assert args.checkpoint_dir == "runs/c"
        args = parser.parse_args(["serve", "--checkpoint", "runs/a",
                                  "--num-users", "4"])
        assert args.checkpoint == "runs/a"
        assert args.num_users == 4

    def test_suite_flags(self):
        parser = build_parser()
        args = parser.parse_args(["suite", "--spec", "main-tables", "--jobs", "4",
                                  "--output", "runs/main", "--no-resume"])
        assert args.experiment == "suite"
        assert args.spec == "main-tables"
        assert args.jobs == 4
        assert args.output == "runs/main"
        assert args.no_resume

    def test_suite_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.spec == "main-tables"
        assert args.jobs == 1
        assert not args.no_resume

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table42"])


class TestServeDispatch:
    def test_serve_runs_and_reports_throughput(self):
        rows = run_experiment("serve", "game_video", "smoke",
                              batch_sizes=[1, 16], top_k=4)
        batched = [r for r in rows if r["mode"] == "batched"]
        assert [r["batch_size"] for r in batched] == [1, 16]
        assert all(np.isfinite(r["users_per_sec"]) and r["users_per_sec"] > 0
                   for r in rows)
        assert any(r["mode"] == "lru_cached" for r in rows)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_experiment("tableX", "game_video", "smoke")

    def test_nonpositive_batch_sizes_rejected(self, capsys):
        from repro.experiments.cli import main
        from repro.experiments.runners import run_serving_benchmark

        with pytest.raises(SystemExit):
            main(["serve", "--profile", "smoke", "--batch-sizes", "0,32"])
        assert "batch-sizes" in capsys.readouterr().err
        with pytest.raises(ValueError):
            run_serving_benchmark("game_video", batch_sizes=(-5, 256))


class TestCheckpointPipeline:
    """train --save → serve --checkpoint: the acceptance path of repro.io."""

    def test_serve_checkpoint_matches_live_server(self, tmp_path):
        from repro.core import CDRIB, CDRIBTrainer
        from repro.experiments.config import get_profile
        from repro.experiments.runners import (
            build_paper_scenario,
            run_checkpoint_serving,
            run_training_job,
        )
        from repro.serve import ColdStartServer

        ckpt = str(tmp_path / "ckpt")
        rows = run_training_job("game_video", profile=get_profile("smoke"),
                                epochs=1, save_path=ckpt)
        assert [row["epoch"] for row in rows] == [1]

        served = run_checkpoint_serving(ckpt, top_k=5, num_users=4)
        assert served

        # An in-process server built from the live trained model (same
        # deterministic scenario/profile/seed) must agree bit for bit.
        profile = get_profile("smoke")
        scenario = build_paper_scenario("game_video", profile)
        trainer = CDRIBTrainer(CDRIB(scenario, profile.cdrib))
        trainer.fit(epochs=1)
        split = scenario.x_to_y
        live = ColdStartServer(trainer.model, split.source, split.target, top_k=5)
        recommendations = live.recommend([row["user"] for row in served], k=5)
        for row, rec in zip(served, recommendations):
            assert row["items"] == [int(item) for item in rec.items]
            assert row["scores"] == [float(score) for score in rec.scores]

    def test_checkpoint_without_provenance_rejected(self, tmp_path, tiny_scenario,
                                                    fast_cdrib_config):
        from repro.core import CDRIB, CDRIBTrainer
        from repro.experiments.runners import run_checkpoint_serving
        from repro.io import CheckpointError

        trainer = CDRIBTrainer(CDRIB(tiny_scenario, fast_cdrib_config))
        path = trainer.save_checkpoint(str(tmp_path / "anon"))
        with pytest.raises(CheckpointError, match="provenance"):
            run_checkpoint_serving(path)

    def test_cli_main_writes_output_and_manifest(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main

        ckpt = str(tmp_path / "ckpt")
        output = str(tmp_path / "history.json")
        code = main(["train", "--profile", "smoke", "--epochs", "1",
                     "--save", ckpt, "--output", output])
        assert code == 0
        assert "saved checkpoint" in capsys.readouterr().out

        manifest_path = str(tmp_path / "history.manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        assert manifest["experiment"] == "train"
        assert manifest["rows"] == 1
        assert manifest["checkpoint"] == ckpt
        assert manifest["output"]["file"] == "history.json"
        assert len(manifest["output"]["sha256"]) == 64

        code = main(["serve", "--checkpoint", ckpt, "--num-users", "2"])
        assert code == 0
        assert "user" in capsys.readouterr().out


class TestSuiteCommand:
    """`repro suite`: spec in, parallel jobs out, aggregated tables on disk."""

    def test_main_runs_spec_file_and_writes_tables(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-suite", "scenarios": ["game_video"],
            "models": ["BPRMF"], "seeds": [0], "profile": "smoke", "epochs": 1,
        }))
        output = tmp_path / "out"
        code = main(["suite", "--spec", str(spec_path), "--jobs", "2",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "suite 'cli-suite'" in out
        assert "BPRMF" in out

        assert (output / "suite_manifest.json").is_file()
        assert (output / "tables" / "per_job.csv").is_file()
        assert (output / "tables" / "aggregate.csv").is_file()
        markdown = (output / "tables" / "aggregate.md").read_text()
        assert markdown.startswith("# Suite cli-suite")
        assert "| BPRMF |" in markdown
        with open(output / "tables" / "aggregate.manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["experiment"] == "suite"
        assert len(manifest["output"]["sha256"]) == 64

        # Second invocation resumes from the completed artifacts.
        code = main(["suite", "--spec", str(spec_path), "--jobs", "1",
                     "--output", str(output)])
        assert code == 0
        assert "resumed from partial output: 1 job(s) skipped" in capsys.readouterr().out

    def test_profile_and_epochs_apply_as_spec_overrides(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-override", "scenarios": ["game_video"],
            "models": ["BPRMF"], "seeds": [0], "profile": "fast",
        }))
        code = main(["suite", "--spec", str(spec_path), "--profile", "smoke",
                     "--epochs", "1", "--output", str(tmp_path / "out")])
        assert code == 0
        out = capsys.readouterr().out
        assert "spec overrides from CLI flags" in out
        assert "'profile': 'smoke'" in out
        with open(tmp_path / "out" / "suite_manifest.json") as handle:
            manifest = json.load(handle)
        assert manifest["spec"]["profile"] == "smoke"
        assert manifest["spec"]["epochs"] == 1

    def test_jobs_must_be_positive(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["suite", "--jobs", "0"])
        assert "--jobs" in capsys.readouterr().err

    def test_spec_errors_print_cleanly(self, capsys):
        from repro.experiments.cli import main

        code = main(["suite", "--spec", "no-such-spec"])
        assert code == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "neither a built-in" in captured.err
