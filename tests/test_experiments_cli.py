"""Tests for the experiments CLI, including the ``serve`` subcommand."""

import numpy as np
import pytest

from repro.experiments.cli import EXPERIMENTS, build_parser, run_experiment


class TestParser:
    def test_every_experiment_is_a_choice(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_serve_flags(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--batch-sizes", "1,8", "--top-k", "3"])
        assert args.batch_sizes == "1,8"
        assert args.top_k == 3

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["table42"])


class TestServeDispatch:
    def test_serve_runs_and_reports_throughput(self):
        rows = run_experiment("serve", "game_video", "smoke",
                              batch_sizes=[1, 16], top_k=4)
        batched = [r for r in rows if r["mode"] == "batched"]
        assert [r["batch_size"] for r in batched] == [1, 16]
        assert all(np.isfinite(r["users_per_sec"]) and r["users_per_sec"] > 0
                   for r in rows)
        assert any(r["mode"] == "lru_cached" for r in rows)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_experiment("tableX", "game_video", "smoke")

    def test_nonpositive_batch_sizes_rejected(self, capsys):
        from repro.experiments.cli import main
        from repro.experiments.runners import run_serving_benchmark

        with pytest.raises(SystemExit):
            main(["serve", "--profile", "smoke", "--batch-sizes", "0,32"])
        assert "batch-sizes" in capsys.readouterr().err
        with pytest.raises(ValueError):
            run_serving_benchmark("game_video", batch_sizes=(-5, 256))
