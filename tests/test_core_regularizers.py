"""Tests for the IB / contrastive regularizer objective terms."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import ContrastiveDiscriminator, contrastive_term, interaction_score
from repro.core.regularizers import _derangement, minimality_term, reconstruction_term


class TestMinimality:
    def test_zero_at_standard_normal(self):
        mu = Tensor(np.zeros((6, 4)))
        sigma = Tensor(np.ones((6, 4)))
        assert minimality_term(mu, sigma).item() == pytest.approx(0.0, abs=1e-10)

    def test_grows_with_mean_magnitude(self):
        sigma = Tensor(np.ones((6, 4)))
        small = minimality_term(Tensor(np.full((6, 4), 0.1)), sigma).item()
        large = minimality_term(Tensor(np.full((6, 4), 2.0)), sigma).item()
        assert large > small


class TestInteractionScore:
    def test_matches_inner_product(self):
        rng = np.random.default_rng(0)
        a, b = rng.standard_normal((5, 3)), rng.standard_normal((5, 3))
        scores = interaction_score(Tensor(a), Tensor(b))
        np.testing.assert_allclose(scores.data, np.sum(a * b, axis=-1))


class TestReconstruction:
    def test_aligned_representations_have_lower_loss(self):
        rng = np.random.default_rng(0)
        users = rng.standard_normal((20, 8))
        aligned = reconstruction_term(
            Tensor(users), Tensor(users * 2.0), Tensor(-users)
        ).item()
        random_items = reconstruction_term(
            Tensor(users), Tensor(rng.standard_normal((20, 8))),
            Tensor(rng.standard_normal((20, 8))),
        ).item()
        assert aligned < random_items

    def test_multiple_negatives_per_positive(self):
        rng = np.random.default_rng(1)
        users = Tensor(rng.standard_normal((10, 4)))
        positives = Tensor(rng.standard_normal((10, 4)))
        negatives = Tensor(rng.standard_normal((30, 4)))
        loss = reconstruction_term(users, positives, negatives)
        assert np.isfinite(loss.item())

    def test_mismatched_negative_count_raises(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            reconstruction_term(
                Tensor(rng.standard_normal((10, 4))),
                Tensor(rng.standard_normal((10, 4))),
                Tensor(rng.standard_normal((15, 4))),
            )

    def test_positive_only(self):
        rng = np.random.default_rng(3)
        users = Tensor(rng.standard_normal((10, 4)))
        loss = reconstruction_term(users, users, None)
        assert np.isfinite(loss.item())


class TestContrastive:
    def test_discriminator_output_shape(self):
        disc = ContrastiveDiscriminator(dim=8, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        logits = disc(Tensor(rng.standard_normal((7, 8))), Tensor(rng.standard_normal((7, 8))))
        assert logits.shape == (7,)

    def test_contrastive_term_is_finite_and_positive(self):
        disc = ContrastiveDiscriminator(dim=6, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        loss = contrastive_term(
            disc, Tensor(rng.standard_normal((12, 6))), Tensor(rng.standard_normal((12, 6))),
            np.random.default_rng(3),
        )
        assert np.isfinite(loss.item())
        assert loss.item() > 0

    def test_single_pair_degenerates_to_zero(self):
        disc = ContrastiveDiscriminator(dim=4, rng=np.random.default_rng(0))
        loss = contrastive_term(
            disc, Tensor(np.ones((1, 4))), Tensor(np.ones((1, 4))),
            np.random.default_rng(0),
        )
        assert loss.item() == 0.0

    def test_gradients_flow_to_discriminator(self):
        disc = ContrastiveDiscriminator(dim=4, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        loss = contrastive_term(
            disc, Tensor(rng.standard_normal((8, 4))), Tensor(rng.standard_normal((8, 4))),
            np.random.default_rng(2),
        )
        loss.backward()
        grads = [p.grad for p in disc.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)

    @pytest.mark.parametrize("count", [2, 3, 5, 17])
    def test_derangement_has_no_fixed_points(self, count):
        for seed in range(5):
            permutation = _derangement(count, np.random.default_rng(seed))
            assert not np.any(permutation == np.arange(count))
            assert sorted(permutation.tolist()) == list(range(count))


class TestFusedTermParity:
    """The fused single-node terms must match their composed-op originals."""

    def _random_latent(self, seed, rows=7, dim=5):
        rng = np.random.default_rng(seed)
        mu = Tensor(rng.standard_normal((rows, dim)), requires_grad=True)
        sigma = Tensor(rng.random((rows, dim)) + 0.1, requires_grad=True)
        return mu, sigma

    def test_fused_minimality_term_matches_composed_kl(self):
        from repro.core.regularizers import fused_minimality_term

        mu_a, sigma_a = self._random_latent(0)
        mu_b, sigma_b = self._random_latent(0)
        reference = minimality_term(mu_a, sigma_a)
        fused = fused_minimality_term(mu_b, sigma_b)
        np.testing.assert_array_equal(fused.data, reference.data)
        reference.backward()
        fused.backward()
        np.testing.assert_array_equal(mu_b.grad, mu_a.grad)
        np.testing.assert_array_equal(sigma_b.grad, sigma_a.grad)

    def test_fused_reconstruction_group_matches_composed_terms(self):
        from repro.core.regularizers import fused_reconstruction_group

        rng = np.random.default_rng(1)
        user_z_a = Tensor(rng.standard_normal((9, 4)), requires_grad=True)
        item_z_a = Tensor(rng.standard_normal((11, 4)), requires_grad=True)
        user_z_b = Tensor(user_z_a.data.copy(), requires_grad=True)
        item_z_b = Tensor(item_z_a.data.copy(), requires_grad=True)
        users = rng.integers(0, 9, 6)
        pos = rng.integers(0, 11, 6)
        neg = rng.integers(0, 11, 12)

        reference = reconstruction_term(
            user_z_a[users], item_z_a[pos], item_z_a[neg]
        )
        fused, diag = fused_reconstruction_group(
            [("term", user_z_b, item_z_b, users, pos, neg)]
        )
        assert diag["term"] == pytest.approx(float(reference.data), rel=0, abs=1e-12)
        np.testing.assert_allclose(fused.data, reference.data, rtol=0, atol=1e-12)
        reference.backward()
        fused.backward()
        np.testing.assert_allclose(user_z_b.grad, user_z_a.grad, rtol=0, atol=1e-12)
        np.testing.assert_allclose(item_z_b.grad, item_z_a.grad, rtol=0, atol=1e-12)

    def test_fused_reconstruction_group_validates_batches(self):
        from repro.core.regularizers import fused_reconstruction_group

        z = Tensor(np.zeros((4, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            fused_reconstruction_group(
                [("bad", z, z, np.array([], dtype=np.int64),
                  np.array([], dtype=np.int64), np.array([], dtype=np.int64))]
            )
        with pytest.raises(ValueError):
            fused_reconstruction_group(
                [("ragged", z, z, np.array([0, 1]), np.array([1, 2]),
                  np.array([0, 1, 2]))]
            )
