"""Tests for the Amazon ratings-file loader (the real-data entry point)."""

import pytest

from repro.data import build_scenario, load_amazon_ratings


@pytest.fixture
def ratings_file(tmp_path):
    """A miniature ratings_*.csv in the Amazon dump format (no header)."""
    lines = [
        "u1,i1,5.0,1400000000",
        "u1,i2,4.0,1400000001",
        "u2,i1,1.0,1400000002",
        "u2,i3,3.0,1400000003",
        "u3,i2,2.0,1400000004",
        "u1,i1,5.0,1400000005",   # duplicate pair, kept by the raw loader
        "bad_row_with_one_field",
    ]
    path = tmp_path / "ratings_Test_Category.csv"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


class TestLoader:
    def test_loads_all_valid_rows(self, ratings_file):
        table = load_amazon_ratings(ratings_file)
        assert table.num_interactions == 6  # malformed row skipped
        assert set(table.users()) == {"u1", "u2", "u3"}
        assert set(table.items()) == {"i1", "i2", "i3"}

    def test_name_defaults_to_file_stem(self, ratings_file):
        table = load_amazon_ratings(ratings_file)
        assert table.name == "ratings_Test_Category"
        assert load_amazon_ratings(ratings_file, name="music").name == "music"

    def test_min_rating_filter(self, ratings_file):
        table = load_amazon_ratings(ratings_file, min_rating=3.0)
        assert ("u2", "i1") not in table.pairs      # rating 1.0 dropped
        assert ("u2", "i3") in table.pairs          # rating 3.0 kept

    def test_max_rows_cap(self, ratings_file):
        table = load_amazon_ratings(ratings_file, max_rows=2)
        assert table.num_interactions == 2

    def test_missing_file_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError) as excinfo:
            load_amazon_ratings(str(tmp_path / "nope.csv"))
        assert "synthetic" in str(excinfo.value)

    def test_loaded_tables_feed_the_scenario_builder(self, ratings_file):
        # The loader output must be directly usable by build_scenario; with
        # thresholds of 1 nothing is filtered and the overlap is detected.
        table_x = load_amazon_ratings(ratings_file, name="x")
        table_y = load_amazon_ratings(ratings_file, name="y")
        scenario = build_scenario(table_x, table_y, cold_start_ratio=0.5,
                                  min_user_interactions=1, min_item_interactions=1,
                                  seed=0)
        assert scenario.domain_x.num_users == 3
        assert scenario.domain_y.num_items == 3
