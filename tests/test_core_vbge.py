"""Tests for the variational bipartite graph encoder."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.core import VBGE
from repro.graph import BipartiteGraph
from repro.nn import Embedding


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edges = np.unique(
        np.column_stack([rng.integers(0, 12, 120), rng.integers(0, 15, 120)]), axis=0
    )
    return BipartiteGraph(12, 15, edges)


@pytest.fixture
def embeddings(graph):
    rng = np.random.default_rng(1)
    users = Embedding(graph.num_users, 8, rng=rng)
    items = Embedding(graph.num_items, 8, rng=rng)
    return users, items


class TestVBGEShapes:
    def test_latent_shapes(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        user_latent, item_latent = encoder.encode(users.all(), items.all(), graph)
        assert user_latent.mu.shape == (graph.num_users, 8)
        assert user_latent.sigma.shape == (graph.num_users, 8)
        assert user_latent.z.shape == (graph.num_users, 8)
        assert item_latent.mu.shape == (graph.num_items, 8)

    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_layer_count_does_not_change_output_dim(self, graph, embeddings, layers):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=layers, dropout=0.0, seed=0)
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        assert user_latent.z.shape == (graph.num_users, 8)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            VBGE(dim=8, num_layers=0)

    def test_sigma_is_positive(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        user_latent, item_latent = encoder.encode(users.all(), items.all(), graph)
        assert np.all(user_latent.sigma.data > 0)
        assert np.all(item_latent.sigma.data > 0)


class TestSamplingBehaviour:
    def test_training_mode_samples_around_mu(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        encoder.train()
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        assert not np.allclose(user_latent.z.data, user_latent.mu.data)

    def test_eval_mode_returns_mean(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        encoder.eval()
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        np.testing.assert_allclose(user_latent.z.data, user_latent.mu.data)

    def test_deterministic_flag_disables_sampling(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, deterministic=True, seed=0)
        encoder.train()
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        np.testing.assert_allclose(user_latent.z.data, user_latent.mu.data)

    def test_deterministic_latent_accessor(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        np.testing.assert_allclose(user_latent.deterministic().data, user_latent.mu.data)


class TestGradientsAndStructure:
    def test_gradients_reach_embeddings(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        encoder.train()
        user_latent, item_latent = encoder.encode(users.all(), items.all(), graph)
        loss = ops.add(ops.mean(ops.mul(user_latent.z, user_latent.z)),
                       ops.mean(ops.mul(item_latent.z, item_latent.z)))
        loss.backward()
        assert users.weight.grad is not None
        assert items.weight.grad is not None
        assert np.any(users.weight.grad != 0)

    def test_parameter_count_grows_with_layers(self):
        shallow = VBGE(dim=8, num_layers=1)
        deep = VBGE(dim=8, num_layers=3)
        assert deep.num_parameters() > shallow.num_parameters()

    def test_isolated_user_still_gets_representation(self, embeddings):
        # User 11 has no edges at all: the encoder must not produce NaNs.
        edges = np.array([[0, 0], [1, 1], [2, 2]])
        graph = BipartiteGraph(12, 15, edges)
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        assert np.all(np.isfinite(user_latent.mu.data))
        assert np.all(np.isfinite(user_latent.sigma.data))
