"""Tests for the variational bipartite graph encoder."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.core import VBGE
from repro.graph import BipartiteGraph
from repro.nn import Embedding


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edges = np.unique(
        np.column_stack([rng.integers(0, 12, 120), rng.integers(0, 15, 120)]), axis=0
    )
    return BipartiteGraph(12, 15, edges)


@pytest.fixture
def embeddings(graph):
    rng = np.random.default_rng(1)
    users = Embedding(graph.num_users, 8, rng=rng)
    items = Embedding(graph.num_items, 8, rng=rng)
    return users, items


class TestVBGEShapes:
    def test_latent_shapes(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        user_latent, item_latent = encoder.encode(users.all(), items.all(), graph)
        assert user_latent.mu.shape == (graph.num_users, 8)
        assert user_latent.sigma.shape == (graph.num_users, 8)
        assert user_latent.z.shape == (graph.num_users, 8)
        assert item_latent.mu.shape == (graph.num_items, 8)

    @pytest.mark.parametrize("layers", [1, 2, 3])
    def test_layer_count_does_not_change_output_dim(self, graph, embeddings, layers):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=layers, dropout=0.0, seed=0)
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        assert user_latent.z.shape == (graph.num_users, 8)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            VBGE(dim=8, num_layers=0)

    def test_sigma_is_positive(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        user_latent, item_latent = encoder.encode(users.all(), items.all(), graph)
        assert np.all(user_latent.sigma.data > 0)
        assert np.all(item_latent.sigma.data > 0)


class TestSamplingBehaviour:
    def test_training_mode_samples_around_mu(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        encoder.train()
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        assert not np.allclose(user_latent.z.data, user_latent.mu.data)

    def test_eval_mode_returns_mean(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        encoder.eval()
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        np.testing.assert_allclose(user_latent.z.data, user_latent.mu.data)

    def test_deterministic_flag_disables_sampling(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, deterministic=True, seed=0)
        encoder.train()
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        np.testing.assert_allclose(user_latent.z.data, user_latent.mu.data)

    def test_deterministic_latent_accessor(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        np.testing.assert_allclose(user_latent.deterministic().data, user_latent.mu.data)


class TestGradientsAndStructure:
    def test_gradients_reach_embeddings(self, graph, embeddings):
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        encoder.train()
        user_latent, item_latent = encoder.encode(users.all(), items.all(), graph)
        loss = ops.add(ops.mean(ops.mul(user_latent.z, user_latent.z)),
                       ops.mean(ops.mul(item_latent.z, item_latent.z)))
        loss.backward()
        assert users.weight.grad is not None
        assert items.weight.grad is not None
        assert np.any(users.weight.grad != 0)

    def test_parameter_count_grows_with_layers(self):
        shallow = VBGE(dim=8, num_layers=1)
        deep = VBGE(dim=8, num_layers=3)
        assert deep.num_parameters() > shallow.num_parameters()

    def test_isolated_user_still_gets_representation(self, embeddings):
        # User 11 has no edges at all: the encoder must not produce NaNs.
        edges = np.array([[0, 0], [1, 1], [2, 2]])
        graph = BipartiteGraph(12, 15, edges)
        users, items = embeddings
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        user_latent, _ = encoder.encode(users.all(), items.all(), graph)
        assert np.all(np.isfinite(user_latent.mu.data))
        assert np.all(np.isfinite(user_latent.sigma.data))


class TestEncodeVariants:
    def test_fused_encode_matches_reference_encode(self, graph, embeddings):
        """The fused path is bitwise the op-by-op path (values and grads)."""
        users, items = embeddings
        grads = {}
        for fused in (True, False):
            users.weight.zero_grad()
            encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
            user_latent, item_latent = encoder.encode(
                users.all(), items.all(), graph, fused=fused
            )
            grads[fused] = (user_latent.mu.data.copy(), item_latent.sigma.data.copy())
            ops.sum(user_latent.mu).backward()
            grads[fused] += (users.weight.grad.copy(),)
        for got, expected in zip(grads[True], grads[False]):
            np.testing.assert_array_equal(got, expected)

    def test_deferred_sampling_keeps_rng_stream(self, graph, embeddings):
        """defer_sample draws the same noise as the eager reparameterised z."""
        users, items = embeddings
        eager = VBGE(dim=8, num_layers=1, dropout=0.0, seed=5)
        deferred = VBGE(dim=8, num_layers=1, dropout=0.0, seed=5)
        eager_user, _ = eager.encode(users.all(), items.all(), graph)
        deferred_user, _ = deferred.encode(users.all(), items.all(), graph,
                                           defer_sample=True)
        assert deferred_user.z is None
        rebuilt = deferred_user.mu.data + deferred_user.sigma.data * deferred_user.noise
        np.testing.assert_array_equal(rebuilt, eager_user.z.data)

    def test_encode_users_subgraph_matches_full_rows(self, graph, embeddings):
        """Row-sliced encoding equals the full fused encode on those rows."""
        users, items = embeddings
        index = np.array([0, 3, 7, 11])
        encoder = VBGE(dim=8, num_layers=2, dropout=0.0, seed=0)
        encoder.eval()
        full_user, _ = encoder.encode(users.all(), items.all(), graph)
        mu, sigma = encoder.encode_users_subgraph(users.all(), graph, index)
        np.testing.assert_allclose(mu.data, full_user.mu.data[index],
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(sigma.data, full_user.sigma.data[index],
                                   rtol=0, atol=1e-12)

    def test_encode_users_subgraph_gradients_match_sliced_full_pass(
            self, graph, embeddings):
        """Gradients through the sliced pull equal the masked full backward."""
        users, items = embeddings
        index = np.array([2, 5, 9])
        upstream = np.random.default_rng(3).standard_normal((3, 8))

        encoder = VBGE(dim=8, num_layers=1, dropout=0.0, seed=0)
        encoder.eval()
        users.weight.zero_grad()
        mu, _ = encoder.encode_users_subgraph(users.all(), graph, index)
        mu.backward(upstream)
        sliced_grad = users.weight.grad.copy()

        users.weight.zero_grad()
        full_user, _ = encoder.encode(users.all(), items.all(), graph)
        scatter = np.zeros_like(full_user.mu.data)
        scatter[index] = upstream
        full_user.mu.backward(scatter)
        np.testing.assert_allclose(sliced_grad, users.weight.grad,
                                   rtol=0, atol=1e-12)
