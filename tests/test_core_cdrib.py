"""Tests for the CDRIB model, its ablation variants and the trainer."""

import numpy as np
import pytest

from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer, make_ablation_config
from repro.core.variants import ABLATION_VARIANTS, variant_display_name
from repro.eval import LeaveOneOutEvaluator


@pytest.fixture
def model(tiny_scenario, fast_cdrib_config):
    return CDRIB(tiny_scenario, fast_cdrib_config)


@pytest.fixture
def trainer(model):
    return CDRIBTrainer(model)


class TestConfig:
    def test_variant_override(self):
        config = CDRIBConfig(beta1=1.0)
        changed = config.variant(beta1=2.0, num_layers=3)
        assert changed.beta1 == 2.0
        assert changed.num_layers == 3
        assert config.beta1 == 1.0  # original untouched

    def test_ablation_configs(self):
        base = CDRIBConfig()
        assert make_ablation_config(base, "full").use_contrastive
        assert not make_ablation_config(base, "wo_con").use_contrastive
        no_inib = make_ablation_config(base, "wo_inib_con")
        assert not no_inib.use_contrastive and not no_inib.use_in_domain_ib
        assert make_ablation_config(base, "deterministic").deterministic_encoder
        assert not make_ablation_config(base, "dot_contrast").use_discriminator
        with pytest.raises(ValueError):
            make_ablation_config(base, "bogus")

    def test_variant_display_names(self):
        assert variant_display_name("full") == "CDRIB"
        assert variant_display_name("wo_con") == "w/o Con"
        assert set(ABLATION_VARIANTS) >= {"full", "wo_con", "wo_inib_con"}


class TestModel:
    def test_embedding_tables_match_scenario(self, model, tiny_scenario):
        assert model.user_embedding_x.num_embeddings == tiny_scenario.domain_x.num_users
        assert model.item_embedding_y.num_embeddings == tiny_scenario.domain_y.num_items

    def test_encode_domains_keys(self, model, tiny_scenario):
        latents = model.encode_domains()
        assert set(latents) == {tiny_scenario.domain_x.name, tiny_scenario.domain_y.name}

    def test_training_loss_contains_all_terms(self, model, trainer):
        batches = trainer._build_batches()
        _, diagnostics = model.training_loss(batches)
        for key in ("minimality", "in_domain_x", "in_domain_y",
                    "cross_o2y", "cross_o2x", "contrastive", "total"):
            assert key in diagnostics

    def test_training_loss_with_empty_batches_is_minimality_only(self, model):
        _, diagnostics = model.training_loss({})
        assert set(diagnostics) == {"minimality", "total"}
        assert diagnostics["total"] == pytest.approx(diagnostics["minimality"])

    def test_contrastive_weight_scales_the_term(self, tiny_scenario, fast_cdrib_config):
        heavy = CDRIB(tiny_scenario, fast_cdrib_config.variant(contrastive_weight=1.0,
                                                               dropout=0.0))
        light = CDRIB(tiny_scenario, fast_cdrib_config.variant(contrastive_weight=0.1,
                                                               dropout=0.0))
        light.load_state_dict(heavy.state_dict())
        pairs = tiny_scenario.overlap_pairs
        heavy.eval()
        light.eval()
        _, heavy_terms = heavy.training_loss({"overlap": pairs})
        _, light_terms = light.training_loss({"overlap": pairs})
        assert light_terms["contrastive"] == pytest.approx(
            0.1 * heavy_terms["contrastive"], rel=1e-6
        )

    def test_ablation_flags_remove_terms(self, tiny_scenario, fast_cdrib_config):
        config = fast_cdrib_config.variant(use_contrastive=False, use_in_domain_ib=False)
        model = CDRIB(tiny_scenario, config)
        trainer = CDRIBTrainer(model)
        _, diagnostics = model.training_loss(trainer._build_batches())
        assert "contrastive" not in diagnostics
        assert "in_domain_x" not in diagnostics
        assert "cross_o2y" in diagnostics

    def test_state_dict_roundtrip_preserves_scores(self, tiny_scenario, fast_cdrib_config):
        model_a = CDRIB(tiny_scenario, fast_cdrib_config)
        model_b = CDRIB(tiny_scenario, fast_cdrib_config.variant(seed=99))
        model_b.load_state_dict(model_a.state_dict())
        split = tiny_scenario.x_to_y
        users = np.array([split.test[0].source_user] * 5)
        items = np.arange(5)
        model_a.refresh_eval_cache()
        model_b.refresh_eval_cache()
        np.testing.assert_allclose(
            model_a.cold_start_scores(split.source, split.target, users, items),
            model_b.cold_start_scores(split.source, split.target, users, items),
        )

    def test_cold_start_scores_shape(self, model, tiny_scenario):
        split = tiny_scenario.x_to_y
        users = np.zeros(7, dtype=np.int64)
        items = np.arange(7)
        scores = model.cold_start_scores(split.source, split.target, users, items)
        assert scores.shape == (7,)
        assert np.all(np.isfinite(scores))


class TestTrainer:
    def test_pools_built_for_all_groups(self, trainer):
        assert set(trainer._pools) == {"in_x", "in_y", "cross_x_to_y", "cross_y_to_x"}
        assert len(trainer._pools["in_x"]) > 0
        assert len(trainer._pools["cross_x_to_y"]) > 0

    def test_cross_pool_users_are_mapped_to_source_domain(self, trainer, tiny_scenario):
        pairs = {int(y): int(x) for x, y in tiny_scenario.overlap_pairs}
        pool = trainer._pools["cross_x_to_y"]
        for source_user, target_user, _ in pool.rows[:50]:
            assert pairs[int(target_user)] == int(source_user)

    def test_fit_reduces_loss(self, tiny_scenario, fast_cdrib_config):
        model = CDRIB(tiny_scenario, fast_cdrib_config.variant(epochs=6))
        trainer = CDRIBTrainer(model)
        result = trainer.fit()
        assert len(result.history) == 6
        assert result.history[-1].loss < result.history[0].loss

    def test_fit_with_validation_tracking(self, tiny_scenario, fast_cdrib_config):
        evaluator = LeaveOneOutEvaluator(tiny_scenario, num_negatives=20, seed=0)
        model = CDRIB(tiny_scenario, fast_cdrib_config.variant(epochs=4))
        trainer = CDRIBTrainer(model, evaluator=evaluator)
        result = trainer.fit(eval_every=2)
        assert result.best_validation_mrr is not None
        assert result.best_epoch in (2, 4)

    def test_validation_without_evaluator_raises(self, trainer):
        with pytest.raises(ValueError):
            trainer.validation_mrr()

    def test_make_scorer_is_pairwise(self, trainer, tiny_scenario):
        trainer.model.refresh_eval_cache()
        split = tiny_scenario.x_to_y
        scorer = trainer.make_scorer(split.source, split.target)
        scores = scorer(np.zeros(4, dtype=np.int64), np.arange(4))
        assert scores.shape == (4,)

    def test_steps_per_epoch_positive(self, trainer):
        assert trainer.steps_per_epoch() >= 1
