"""Tests for the ``repro.io`` checkpoint subsystem.

Covers the on-disk format (payload + manifest, checksum, versioning), the
shared :class:`~repro.nn.Module` save path, optimizer persistence for the
fused and reference Adam engines, and baseline save/load.
"""

import json
import os

import numpy as np
import pytest

from repro.baselines import make_baseline
from repro.io import (
    FORMAT_VERSION,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.io.checkpoint import MANIFEST_NAME, PAYLOAD_NAME
from repro.nn import Embedding, Linear, Module
from repro.nn.module import Parameter
from repro.optim import SGD, Adam


# --------------------------------------------------------------------------- #
# Format round-trips and rejection
# --------------------------------------------------------------------------- #
class TestCheckpointFormat:
    def _arrays(self, rng):
        return {
            "model/weight": rng.standard_normal((4, 3)),
            "model/bias32": rng.standard_normal(3).astype(np.float32),
            "optim/step": np.int64(17),
        }

    def test_round_trip_is_bit_identical(self, tmp_path, rng):
        arrays = self._arrays(rng)
        states = {"model": np.random.default_rng(9).bit_generator.state}
        path = save_checkpoint(str(tmp_path / "ckpt"), arrays,
                               manifest={"metrics": {"loss": 1.5}},
                               rng_states=states, kind="unit-test")
        loaded = load_checkpoint(path, expect_kind="unit-test")
        assert loaded.format_version == FORMAT_VERSION
        assert loaded.manifest["metrics"] == {"loss": 1.5}
        for key, value in arrays.items():
            assert loaded.arrays[key].dtype == np.asarray(value).dtype
            np.testing.assert_array_equal(loaded.arrays[key], value)
        assert loaded.rng_states["model"] == states["model"]
        assert loaded.scalar("optim/step") == 17
        assert set(loaded.namespace("model")) == {"weight", "bias32"}

    def test_corrupt_payload_is_rejected(self, tmp_path, rng):
        path = save_checkpoint(str(tmp_path / "ckpt"), self._arrays(rng))
        payload = os.path.join(path, PAYLOAD_NAME)
        blob = bytearray(open(payload, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(payload, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_version_mismatch_is_rejected(self, tmp_path, rng):
        path = save_checkpoint(str(tmp_path / "ckpt"), self._arrays(rng))
        manifest_path = os.path.join(path, MANIFEST_NAME)
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = FORMAT_VERSION + 1
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(path)

    def test_wrong_kind_is_rejected(self, tmp_path, rng):
        path = save_checkpoint(str(tmp_path / "ckpt"), self._arrays(rng),
                               kind="module")
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(path, expect_kind="cdrib-trainer")

    def test_non_checkpoint_directory_is_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_checkpoint(str(tmp_path))

    def test_reserved_keys_are_rejected(self, tmp_path, rng):
        with pytest.raises(ValueError):
            save_checkpoint(str(tmp_path / "a"), {"rng_json": np.zeros(1)})
        with pytest.raises(ValueError):
            save_checkpoint(str(tmp_path / "b"), {"x": np.zeros(1)},
                            manifest={"format_version": 99})


# --------------------------------------------------------------------------- #
# Module save path
# --------------------------------------------------------------------------- #
class _TinyNet(Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embed = Embedding(5, 4, rng=rng)
        self.out = Linear(4, 2, rng=rng)

    def forward(self, idx):
        return self.out(self.embed(idx))


class TestModuleSaveState:
    def test_round_trip_restores_every_parameter(self, tmp_path):
        net = _TinyNet(seed=1)
        path = net.save_state(str(tmp_path / "net"))
        other = _TinyNet(seed=2)
        before = {k: v.copy() for k, v in other.state_dict().items()}
        other.load_state(path)
        for key, value in net.state_dict().items():
            np.testing.assert_array_equal(other.state_dict()[key], value)
        assert any(not np.array_equal(before[k], v)
                   for k, v in other.state_dict().items())

    def test_strict_shape_mismatch_fails(self, tmp_path):
        net = _TinyNet()
        path = net.save_state(str(tmp_path / "net"))

        class Other(Module):
            def __init__(self):
                super().__init__()
                self.embed = Embedding(5, 4)

        with pytest.raises(KeyError):
            Other().load_state(path)


# --------------------------------------------------------------------------- #
# Optimizer persistence
# --------------------------------------------------------------------------- #
def _quadratic_params(seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.standard_normal((3, 2)), name="a"),
            Parameter(rng.standard_normal(4), name="b")]


def _quadratic_step(params, optimizer, targets):
    for param, target in zip(params, targets):
        param.grad = 2.0 * (param.data - target)
    optimizer.step()


class TestOptimizerStateDict:
    @pytest.mark.parametrize("fused", [False, True])
    def test_adam_resume_matches_uninterrupted(self, fused):
        targets = [np.full((3, 2), 0.5), np.full(4, -1.0)]

        straight = _quadratic_params()
        opt_straight = Adam(straight, lr=0.05, fused=fused)
        for _ in range(12):
            _quadratic_step(straight, opt_straight, targets)

        resumed = _quadratic_params()
        opt_a = Adam(resumed, lr=0.05, fused=fused)
        for _ in range(5):
            _quadratic_step(resumed, opt_a, targets)
        saved_params = [p.data.copy() for p in resumed]
        saved_state = opt_a.state_dict()

        fresh = _quadratic_params(seed=99)
        for param, value in zip(fresh, saved_params):
            param.data = value.copy()
        opt_b = Adam(fresh, lr=0.05, fused=fused)
        opt_b.load_state_dict(saved_state)
        for _ in range(7):
            _quadratic_step(fresh, opt_b, targets)

        for param_a, param_b in zip(straight, fresh):
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_adam_state_crosses_engines(self):
        """Fused state loads into a reference optimizer and vice versa."""
        params_ref = _quadratic_params()
        params_fused = _quadratic_params()
        ref = Adam(params_ref, lr=0.05, fused=False)
        fused = Adam(params_fused, lr=0.05, fused=True)
        targets = [np.full((3, 2), 0.5), np.full(4, -1.0)]
        for _ in range(4):
            _quadratic_step(params_ref, ref, targets)
        fused.load_state_dict(ref.state_dict())
        state = fused.state_dict()
        assert state["step_count"] == 4
        for m_ref, m_fused in zip(ref.state_dict()["m"], state["m"]):
            np.testing.assert_array_equal(m_ref, m_fused)

    def test_adam_shape_mismatch_rejected(self):
        opt = Adam(_quadratic_params(), lr=0.05)
        state = opt.state_dict()
        state["m"][0] = np.zeros((9, 9))
        with pytest.raises(ValueError):
            opt.load_state_dict(state)

    def test_adam_count_mismatch_rejected(self):
        opt = Adam(_quadratic_params(), lr=0.05)
        state = opt.state_dict()
        state["num_parameters"] = 5
        with pytest.raises(ValueError):
            opt.load_state_dict(state)

    def test_sgd_velocity_round_trip(self):
        params = _quadratic_params()
        opt = SGD(params, lr=0.1, momentum=0.9)
        targets = [np.zeros((3, 2)), np.zeros(4)]
        for _ in range(3):
            _quadratic_step(params, opt, targets)
        other = SGD(_quadratic_params(), lr=0.1, momentum=0.9)
        other.load_state_dict(opt.state_dict())
        for v_a, v_b in zip(opt._velocity, other._velocity):
            np.testing.assert_array_equal(v_a, v_b)


# --------------------------------------------------------------------------- #
# Baseline persistence (shared Module path)
# --------------------------------------------------------------------------- #
class TestBaselinePersistence:
    def test_bprmf_scores_survive_round_trip(self, tmp_path, tiny_scenario,
                                             fast_baseline_config):
        model = make_baseline("BPRMF", fast_baseline_config)
        model.fit(tiny_scenario)
        split = tiny_scenario.x_to_y
        users = np.array([u.source_user for u in split.test[:3]])
        items = np.arange(users.shape[0])
        before = model.scorer(split.source, split.target)(users, items)

        path = model.save(str(tmp_path / "bprmf"))
        fresh = make_baseline("BPRMF", fast_baseline_config)
        fresh.fit(tiny_scenario)  # build the structure, then overwrite values
        fresh.load(path)
        after = fresh.scorer(split.source, split.target)(users, items)
        np.testing.assert_array_equal(before, after)

    def test_unfitted_baseline_rejects_load(self, tmp_path, tiny_scenario,
                                            fast_baseline_config):
        model = make_baseline("BPRMF", fast_baseline_config)
        model.fit(tiny_scenario)
        path = model.save(str(tmp_path / "bprmf"))
        with pytest.raises(ValueError, match="no modules"):
            make_baseline("BPRMF", fast_baseline_config).load(path)
