"""Exact-resume golden tests for the trainer checkpoint subsystem.

The acceptance contract of ``repro.io``: training 10 steps, saving,
rebuilding everything from disk (model + optimizer + every RNG stream) and
training 10 more must produce losses *bit-identical* to 20 uninterrupted
steps — for the fused, subgraph and reference engines, at epoch boundaries
and mid-epoch.  These tests sit alongside ``test_core_trainer_golden.py``
and reuse its pinned scenario, so a resumed run is also pinned against the
seed implementation's trajectory.
"""

import numpy as np
import pytest

from repro.core import CDRIB, CDRIBTrainer
from repro.data import SyntheticConfig, SyntheticCrossDomainGenerator, build_scenario
from repro.io import CheckpointError, load_checkpoint

from test_core_trainer_golden import GOLDEN_LOSSES, PINNED_ATOL, golden_config


@pytest.fixture(scope="module")
def golden_scenario():
    config = SyntheticConfig(
        num_overlap_users=40, num_specific_users_x=25, num_specific_users_y=25,
        num_items_x=70, num_items_y=70, min_interactions=6, max_interactions=14,
        seed=11,
    )
    data = SyntheticCrossDomainGenerator(config).generate()
    return build_scenario(data.table_x, data.table_y, cold_start_ratio=0.2,
                          min_user_interactions=3, min_item_interactions=2,
                          seed=11)


def make_trainer(scenario, engine):
    return CDRIBTrainer(CDRIB(scenario, golden_config()), engine=engine)


class TestExactResume:
    @pytest.mark.parametrize("engine", ["fused", "subgraph", "reference"])
    @pytest.mark.parametrize("split_at", [10, 7])
    def test_resume_equals_uninterrupted(self, golden_scenario, tmp_path,
                                         engine, split_at):
        """10 + save + reload + 10 == 20 straight, bit for bit.

        ``split_at=10`` lands on an epoch boundary (10 steps/epoch on this
        scenario), ``split_at=7`` saves mid-epoch, exercising the presample
        replay of the fast engines.
        """
        straight = make_trainer(golden_scenario, engine).run_steps(20)

        first_half = make_trainer(golden_scenario, engine)
        before = first_half.run_steps(split_at)
        path = first_half.save_checkpoint(str(tmp_path / f"{engine}-{split_at}"))

        resumed = make_trainer(golden_scenario, engine)
        resumed.restore_checkpoint(path)
        after = resumed.run_steps(20 - split_at)

        assert before + after == straight  # exact float equality, no tolerance
        np.testing.assert_allclose(np.array(straight), GOLDEN_LOSSES,
                                   rtol=0, atol=PINNED_ATOL)

    def test_cross_engine_resume(self, golden_scenario, tmp_path):
        """A mid-epoch fused checkpoint resumes exactly on the reference
        engine (the engines draw identical batch streams)."""
        straight = make_trainer(golden_scenario, "reference").run_steps(20)
        fused = make_trainer(golden_scenario, "fused")
        before = fused.run_steps(7)
        path = fused.save_checkpoint(str(tmp_path / "cross"))

        reference = make_trainer(golden_scenario, "reference")
        reference.restore_checkpoint(path)
        after = reference.run_steps(13)
        np.testing.assert_allclose(np.array(before + after), np.array(straight),
                                   rtol=0, atol=1e-10)

    def test_state_dict_round_trip_is_bit_identical(self, golden_scenario, tmp_path):
        trainer = make_trainer(golden_scenario, "fused")
        trainer.run_steps(5)
        path = trainer.save_checkpoint(str(tmp_path / "state"))

        other = make_trainer(golden_scenario, "fused")
        other.restore_checkpoint(path)
        for key, value in trainer.model.state_dict().items():
            np.testing.assert_array_equal(other.model.state_dict()[key], value)
        state_a = trainer.optimizer.state_dict()
        state_b = other.optimizer.state_dict()
        assert state_a["step_count"] == state_b["step_count"] == 5
        for m_a, m_b in zip(state_a["m"], state_b["m"]):
            np.testing.assert_array_equal(m_a, m_b)

        # Cold-start scores (the serving quantity) are bit-identical too.
        split = golden_scenario.x_to_y
        users = np.array([u.source_user for u in split.test[:3]])
        items = np.arange(users.shape[0])
        np.testing.assert_array_equal(
            trainer.model.cold_start_scores(split.source, split.target, users, items),
            other.model.cold_start_scores(split.source, split.target, users, items),
        )

    def test_manifest_records_training_state(self, golden_scenario, tmp_path):
        trainer = make_trainer(golden_scenario, "subgraph")
        trainer.run_steps(7)
        path = trainer.save_checkpoint(str(tmp_path / "manifest"),
                                       metrics={"loss": 1.0},
                                       provenance={"scenario": "golden",
                                                   "profile": "unit"})
        checkpoint = load_checkpoint(path, expect_kind="cdrib-trainer")
        assert checkpoint.manifest["engine"] == "subgraph"
        assert checkpoint.manifest["metrics"] == {"loss": 1.0}
        assert checkpoint.manifest["provenance"]["scenario"] == "golden"
        assert checkpoint.manifest["model"]["config"]["embedding_dim"] == 16
        assert checkpoint.scalar("trainer/global_step") == 7
        assert checkpoint.scalar("trainer/steps_into_epoch") == 7
        assert {"model", "trainer", "sampler_x", "sampler_y"} <= set(
            checkpoint.rng_states)

    def test_domain_mismatch_rejected(self, golden_scenario, tiny_scenario, tmp_path):
        trainer = make_trainer(golden_scenario, "fused")
        path = trainer.save_checkpoint(str(tmp_path / "dom"))
        other = CDRIBTrainer(CDRIB(tiny_scenario, golden_config()), engine="fused")
        with pytest.raises(CheckpointError, match="domains"):
            other.restore_checkpoint(path)

    def test_config_mismatch_rejected(self, golden_scenario, tmp_path):
        """Same shapes but a different batch_size would silently diverge."""
        trainer = make_trainer(golden_scenario, "fused")
        path = trainer.save_checkpoint(str(tmp_path / "cfg"))
        other_config = golden_config().variant(batch_size=32)
        other = CDRIBTrainer(CDRIB(golden_scenario, other_config), engine="fused")
        with pytest.raises(CheckpointError, match="batch_size"):
            other.restore_checkpoint(path)

    def test_best_rollback_checkpoint_is_publish_only(self, golden_scenario, tmp_path):
        """After fit() restores the best-validation state, the model no longer
        matches the optimizer/RNG trajectory — saving still works (for
        serving) but resuming from that artifact must be refused."""
        from repro.eval import LeaveOneOutEvaluator

        evaluator = LeaveOneOutEvaluator(golden_scenario, num_negatives=20,
                                         seed=0, max_users_per_direction=4)
        trainer = CDRIBTrainer(CDRIB(golden_scenario, golden_config()),
                               evaluator=evaluator, engine="fused")
        trainer.fit(epochs=2, eval_every=1)
        path = trainer.save_checkpoint(str(tmp_path / "published"))
        checkpoint = load_checkpoint(path)
        assert checkpoint.manifest["resumable"] is False
        with pytest.raises(CheckpointError, match="publish-only"):
            make_trainer(golden_scenario, "fused").restore_checkpoint(path)

    def test_save_over_existing_checkpoint_is_crash_safe(self, golden_scenario,
                                                         tmp_path):
        """Re-saving replaces the directory wholesale via a staged swap, so
        the previous checkpoint is never left half-truncated."""
        trainer = make_trainer(golden_scenario, "fused")
        trainer.run_steps(2)
        path = str(tmp_path / "rolling")
        trainer.save_checkpoint(path)
        first = load_checkpoint(path)
        trainer.run_steps(2)
        trainer.save_checkpoint(path)
        second = load_checkpoint(path)
        assert second.scalar("trainer/global_step") == 4
        assert second.scalar("trainer/global_step") != first.scalar(
            "trainer/global_step")
        import os

        assert not os.path.exists(path + ".saving")
        assert not os.path.exists(path + ".old")

    def test_fit_resume_continues_epoch_numbering(self, golden_scenario, tmp_path):
        straight = make_trainer(golden_scenario, "fused").fit(epochs=2)

        part = make_trainer(golden_scenario, "fused")
        part.fit(epochs=1, checkpoint_dir=str(tmp_path / "ckpts"))
        resumed = make_trainer(golden_scenario, "fused")
        result = resumed.fit(epochs=1,
                             resume_from=str(tmp_path / "ckpts" / "last"))

        assert [log.epoch for log in result.history] == [2]
        np.testing.assert_allclose(result.history[0].loss,
                                   straight.history[1].loss, rtol=0, atol=0)

    def test_fit_saves_best_checkpoint(self, golden_scenario, tmp_path):
        from repro.eval import LeaveOneOutEvaluator

        evaluator = LeaveOneOutEvaluator(golden_scenario, num_negatives=20,
                                         seed=0, max_users_per_direction=4)
        trainer = CDRIBTrainer(CDRIB(golden_scenario, golden_config()),
                               evaluator=evaluator, engine="fused")
        trainer.fit(epochs=2, eval_every=1, checkpoint_dir=str(tmp_path / "run"))
        best = load_checkpoint(str(tmp_path / "run" / "best"),
                               expect_kind="cdrib-trainer")
        last = load_checkpoint(str(tmp_path / "run" / "last"),
                               expect_kind="cdrib-trainer")
        assert best.manifest["metrics"]["best_validation_mrr"] is not None
        assert last.scalar("trainer/epochs_done") == 2
