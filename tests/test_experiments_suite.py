"""Tests for the experiment-suite orchestrator (repro.experiments.suite).

The load-bearing guarantee pinned here: a suite executed through the
multiprocessing worker pool produces per-job metrics *bit-identical* to
serial execution, and to running each job by hand through the
``train`` / ``run_training_job`` path with the same seed.
"""

import dataclasses
import json
import os

import pytest

from repro.experiments import (
    BUILTIN_SPECS,
    JobSpec,
    SuiteSpec,
    SuiteSpecError,
    expand_jobs,
    get_profile,
    job_key,
    load_suite_spec,
    model_display_name,
    parse_model,
    run_suite,
    spec_sha256,
)
from repro.experiments.reporting import file_sha256
from repro.experiments.suite import SUITE_MANIFEST_NAME

BASE_SPEC = {
    "name": "test-suite",
    "scenarios": ["game_video"],
    "models": ["CDRIB", "BPRMF"],
    "seeds": [0, 1],
    "profile": "smoke",
    "epochs": 2,
}


def make_spec(**overrides):
    raw = {**BASE_SPEC, **overrides}
    return SuiteSpec.from_dict(raw)


# --------------------------------------------------------------------------- #
# Spec validation
# --------------------------------------------------------------------------- #
class TestSpecValidation:
    def test_valid_spec_round_trips(self):
        spec = make_spec()
        assert SuiteSpec.from_dict(spec.to_dict()) == spec
        assert spec_sha256(spec) == spec_sha256(SuiteSpec.from_dict(spec.to_dict()))

    def test_hash_changes_with_content(self):
        assert spec_sha256(make_spec()) != spec_sha256(make_spec(seeds=[0, 2]))

    def test_unknown_model_name(self):
        with pytest.raises(SuiteSpecError, match="unknown model"):
            make_spec(models=["CDRIB", "NotAModel"])

    def test_unknown_cdrib_variant(self):
        with pytest.raises(SuiteSpecError, match="unknown CDRIB variant"):
            make_spec(models=["CDRIB:wo_everything"])

    def test_cdrib_full_alias_rejected(self):
        # 'CDRIB:full' would duplicate 'CDRIB' under a different job key.
        with pytest.raises(SuiteSpecError, match="not 'CDRIB:full'"):
            make_spec(models=["CDRIB", "CDRIB:full"])

    @pytest.mark.parametrize("axis", ["scenarios", "models", "seeds"])
    def test_empty_grid_axis(self, axis):
        with pytest.raises(SuiteSpecError, match=f"grid axis '{axis}' is empty"):
            make_spec(**{axis: []})

    @pytest.mark.parametrize("axis,duplicated", [
        ("scenarios", ["game_video", "game_video"]),
        ("models", ["CDRIB", "CDRIB"]),
        ("seeds", [0, 0]),
    ])
    def test_duplicate_axis_entries_rejected(self, axis, duplicated):
        with pytest.raises(SuiteSpecError, match="duplicate"):
            make_spec(**{axis: duplicated})

    def test_unknown_scenario(self):
        with pytest.raises(SuiteSpecError, match="unknown scenario"):
            make_spec(scenarios=["books_tools"])

    def test_unknown_profile_engine_and_bad_epochs(self):
        with pytest.raises(SuiteSpecError, match="unknown profile"):
            make_spec(profile="gigantic")
        with pytest.raises(SuiteSpecError, match="unknown engine"):
            make_spec(engine="warp")
        with pytest.raises(SuiteSpecError, match="epochs"):
            make_spec(epochs=0)

    def test_bad_seed_types(self):
        with pytest.raises(SuiteSpecError, match="seeds"):
            make_spec(seeds=[0, -3])
        with pytest.raises(SuiteSpecError, match="seeds"):
            make_spec(seeds=[True])

    def test_missing_and_unknown_keys(self):
        with pytest.raises(SuiteSpecError, match="missing required keys"):
            SuiteSpec.from_dict({"name": "x"})
        with pytest.raises(SuiteSpecError, match="unknown suite-spec keys"):
            SuiteSpec.from_dict({**BASE_SPEC, "workers": 4})

    def test_unsafe_suite_name(self):
        with pytest.raises(SuiteSpecError, match="filesystem-safe"):
            make_spec(name="bad/name")


# --------------------------------------------------------------------------- #
# Job-matrix expansion
# --------------------------------------------------------------------------- #
class TestExpansion:
    def test_matrix_size_and_order(self):
        spec = make_spec(scenarios=["game_video", "phone_elec"], seeds=[0, 1, 2])
        jobs = expand_jobs(spec)
        assert len(jobs) == 2 * 2 * 3
        # Scenario-major, then model, then seed.
        assert jobs[0].key == job_key("game_video", "CDRIB", 0)
        assert jobs[1].key == job_key("game_video", "CDRIB", 1)
        assert jobs[-1].key == job_key("phone_elec", "BPRMF", 2)
        assert len({job.key for job in jobs}) == len(jobs)

    def test_job_round_trip(self):
        for job in expand_jobs(make_spec()):
            assert JobSpec.from_dict(job.to_dict()) == job
            assert JobSpec.from_dict(json.loads(json.dumps(job.to_dict()))) == job

    def test_jobs_inherit_spec_settings(self):
        spec = make_spec(engine="reference", epochs=3)
        for job in expand_jobs(spec):
            assert job.engine == "reference"
            assert job.epochs == 3
            assert job.profile == "smoke"

    def test_keys_are_filesystem_safe(self):
        key = job_key("game_video", "EMCDR(BPRMF)", 7)
        assert key == "game_video__emcdr-bprmf__seed7"
        assert "/" not in key and "(" not in key

    def test_parse_model_and_display_names(self):
        assert parse_model("CDRIB") == ("cdrib", "full")
        assert parse_model("CDRIB:wo_con") == ("cdrib", "wo_con")
        assert parse_model("SA-VAE") == ("baseline", "SA-VAE")
        assert model_display_name("CDRIB:wo_inib_con") == "w/o In-IB&Con"
        assert model_display_name("BPRMF") == "BPRMF"

    def test_builtin_specs_all_validate_and_expand(self):
        for name in BUILTIN_SPECS:
            spec = load_suite_spec(name)
            jobs = expand_jobs(spec)
            assert len(jobs) == (len(spec.scenarios) * len(spec.models)
                                 * len(spec.seeds))
            assert spec.profile == "smoke"

    def test_load_spec_from_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(BASE_SPEC))
        assert load_suite_spec(str(path)) == make_spec()
        with pytest.raises(SuiteSpecError, match="neither a built-in"):
            load_suite_spec("no-such-spec")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SuiteSpecError, match="not valid JSON"):
            load_suite_spec(str(bad))


# --------------------------------------------------------------------------- #
# Execution: parallel == serial == the train path, bit for bit
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def suite_spec():
    return SuiteSpec.from_dict(BASE_SPEC)


@pytest.fixture(scope="module")
def parallel_run(suite_spec, tmp_path_factory):
    """The base spec executed through a 2-worker multiprocessing pool."""
    output = str(tmp_path_factory.mktemp("suite_parallel"))
    return output, run_suite(suite_spec, output, jobs=2)


@pytest.fixture(scope="module")
def serial_run(suite_spec, tmp_path_factory):
    """The identical spec executed serially in a separate directory."""
    output = str(tmp_path_factory.mktemp("suite_serial"))
    return output, run_suite(suite_spec, output, jobs=1)


class TestParallelMatchesSerial:
    def test_payloads_bit_identical(self, parallel_run, serial_run):
        _, parallel = parallel_run
        _, serial = serial_run
        assert parallel.spec_sha256 == serial.spec_sha256
        assert len(parallel.payloads) == len(serial.payloads) == 4
        # Exact equality — metrics, histories and rank vectors, no tolerance.
        for left, right in zip(parallel.payloads, serial.payloads):
            assert left == right

    def test_cdrib_job_matches_run_training_job_path(self, parallel_run):
        """Suite CDRIB jobs equal a hand-driven `repro train` run, bit for bit."""
        from repro.experiments import (
            build_paper_scenario,
            make_evaluator,
            run_training_job,
            train_cdrib,
        )

        _, result = parallel_run
        payload = next(p for p in result.payloads
                       if p["job"]["model"] == "CDRIB" and p["job"]["seed"] == 1)

        profile = get_profile("smoke")
        profile = dataclasses.replace(
            profile, seed=1, cdrib=profile.cdrib.variant(seed=1),
            baseline=profile.baseline.variant(seed=1))

        # Training trajectory: identical losses epoch by epoch.
        train_rows = run_training_job("game_video", profile=profile, epochs=2)
        assert [row["loss"] for row in train_rows] == \
            [entry["loss"] for entry in payload["history"]]

        # Evaluation metrics: identical to evaluating the serially trained model.
        scenario = build_paper_scenario("game_video", profile)
        evaluator = make_evaluator(scenario, profile)
        trainer = train_cdrib(scenario, profile.cdrib.variant(epochs=2))
        for split, row in zip(scenario.directions, payload["rows"]):
            evaluated = evaluator.evaluate_direction(
                trainer.make_scorer(split.source, split.target),
                split.source, split.target)
            metrics = evaluated.metrics.as_dict()
            assert row["direction"] == f"{split.source}->{split.target}"
            for column in ("MRR", "NDCG@5", "NDCG@10", "HR@1", "HR@5", "HR@10"):
                assert row[column] == metrics[column]

    def test_seeds_actually_vary_results(self, parallel_run):
        _, result = parallel_run
        by_seed = {p["job"]["seed"]: p for p in result.payloads
                   if p["job"]["model"] == "CDRIB"}
        assert by_seed[0]["rows"][0]["MRR"] != by_seed[1]["rows"][0]["MRR"]


# --------------------------------------------------------------------------- #
# Artifacts, manifest and resume-from-partial
# --------------------------------------------------------------------------- #
class TestArtifactsAndResume:
    def test_per_job_artifacts_exist(self, parallel_run, suite_spec):
        output, _ = parallel_run
        for job in expand_jobs(suite_spec):
            job_dir = os.path.join(output, "jobs", job.key)
            assert os.path.isfile(os.path.join(job_dir, "result.json"))
            assert os.path.isfile(os.path.join(job_dir, "result.manifest.json"))
            # Every job leaves a model checkpoint (CDRIB: repro.io dir with
            # payload+manifest; baselines: recommender state).
            assert os.path.exists(os.path.join(job_dir, "checkpoint"))

    def test_cdrib_checkpoint_carries_seed_provenance(self, parallel_run,
                                                      suite_spec):
        output, _ = parallel_run
        key = job_key("game_video", "CDRIB", 1)
        manifest_path = os.path.join(output, "jobs", key, "checkpoint",
                                     "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        provenance = manifest["provenance"]
        assert provenance["scenario"] == "game_video"
        assert provenance["profile"] == "smoke"
        assert provenance["seed"] == 1
        assert provenance["suite_job"] == key

    def test_suite_manifest_records_spec_hash_and_job_checksums(
            self, parallel_run, suite_spec):
        output, result = parallel_run
        with open(os.path.join(output, SUITE_MANIFEST_NAME)) as handle:
            manifest = json.load(handle)
        assert manifest["spec_sha256"] == spec_sha256(suite_spec)
        assert manifest["spec"] == suite_spec.to_dict()
        jobs = expand_jobs(suite_spec)
        assert set(manifest["jobs"]) == {job.key for job in jobs}
        for job in jobs:
            entry = manifest["jobs"][job.key]
            recorded = entry["sha256"]
            actual = file_sha256(os.path.join(output, entry["result"]))
            assert recorded == actual

    def test_resume_skips_valid_jobs_and_reruns_invalid(self, parallel_run,
                                                        suite_spec):
        output, first = parallel_run
        # Everything valid: full skip, identical rows.
        resumed = run_suite(suite_spec, output, jobs=1)
        assert resumed.skipped == 4
        assert resumed.rows() == first.rows()

        # Corrupt one result file: its checksum no longer validates, so just
        # that job reruns — and reproduces the identical payload.
        victim = os.path.join(output, "jobs",
                              job_key("game_video", "BPRMF", 0), "result.json")
        with open(victim, "a") as handle:
            handle.write("\n")
        resumed = run_suite(suite_spec, output, jobs=1)
        assert resumed.skipped == 3
        assert resumed.rows() == first.rows()

    def test_resume_refuses_mismatched_spec_hash(self, parallel_run):
        output, _ = parallel_run
        other = make_spec(epochs=1)
        with pytest.raises(SuiteSpecError, match="does not match"):
            run_suite(other, output, jobs=1)

    def test_invalid_worker_count(self, suite_spec, tmp_path):
        with pytest.raises(SuiteSpecError, match="worker count"):
            run_suite(suite_spec, str(tmp_path), jobs=0)


# --------------------------------------------------------------------------- #
# Aggregation
# --------------------------------------------------------------------------- #
class TestAggregation:
    def test_mean_std_over_seeds(self, parallel_run):
        import numpy as np

        _, result = parallel_run
        aggregated = result.aggregate()
        # 2 models x 2 directions.
        assert len(aggregated) == 4
        for row in aggregated:
            assert row["seeds"] == 2
            assert set(("MRR_mean", "MRR_std", "MRR", "sig")) <= set(row)
        cdrib = next(r for r in aggregated
                     if r["model"] == "CDRIB" and r["direction"] == "game->video")
        per_seed = [row["MRR"] for row in result.rows()
                    if row["model"] == "CDRIB" and row["direction"] == "game->video"]
        assert cdrib["MRR_mean"] == pytest.approx(np.mean(per_seed))
        assert cdrib["MRR_std"] == pytest.approx(np.std(per_seed, ddof=1))
        assert cdrib["MRR"] == f"{cdrib['MRR_mean']:.2f}±{cdrib['MRR_std']:.2f}"

    def test_best_model_ranked_first_per_direction(self, parallel_run):
        _, result = parallel_run
        aggregated = result.aggregate()
        by_direction = {}
        for row in aggregated:
            by_direction.setdefault(row["direction"], []).append(row)
        for rows in by_direction.values():
            means = [row["MRR_mean"] for row in rows]
            assert means == sorted(means, reverse=True)

    def test_significance_marker_only_on_best(self, parallel_run):
        _, result = parallel_run
        for row in result.aggregate():
            assert row["sig"] in ("", "*")
        by_direction = {}
        for row in result.aggregate():
            by_direction.setdefault(row["direction"], []).append(row)
        for rows in by_direction.values():
            assert all(row["sig"] == "" for row in rows[1:])


# --------------------------------------------------------------------------- #
# ANN serving smoke (spec.ann_check)
# --------------------------------------------------------------------------- #
class TestAnnCheck:
    def test_ann_check_must_be_boolean(self):
        with pytest.raises(SuiteSpecError, match="ann_check"):
            make_spec(ann_check="yes")

    def test_ann_check_round_trips_and_changes_hash(self):
        spec = make_spec(ann_check=True)
        assert SuiteSpec.from_dict(spec.to_dict()) == spec
        assert spec_sha256(spec) != spec_sha256(make_spec())

    def test_jobs_inherit_ann_check(self):
        jobs = expand_jobs(make_spec(ann_check=True))
        assert all(job.ann_check for job in jobs)
        assert JobSpec.from_dict(jobs[0].to_dict()) == jobs[0]

    def test_smoke_builtin_spec_enables_ann_check(self):
        assert BUILTIN_SPECS["main-tables-smoke"]["ann_check"] is True
        assert load_suite_spec("main-tables-smoke").ann_check

    def test_default_spec_produces_no_ann_rows(self, parallel_run):
        _, result = parallel_run
        assert result.ann_rows() == []
        assert all("ann" not in payload for payload in result.payloads)

    def test_cdrib_jobs_carry_ann_rows(self, tmp_path):
        spec = make_spec(name="ann-check", models=["CDRIB", "BPRMF"],
                         seeds=[0], epochs=1, ann_check=True)
        result = run_suite(spec, str(tmp_path / "out"), jobs=1)
        rows = result.ann_rows()
        assert len(rows) == 1                      # CDRIB only, not baselines
        row = rows[0]
        assert row["model"] == "CDRIB" and row["backend"] == "ivf"
        assert 0.0 <= row["recall_vs_exact"] <= 1.0
        assert 1 <= row["nprobe"] <= row["num_clusters"] <= row["num_items"]
        # The row is part of the durable result artifact (resume-safe)...
        with open(tmp_path / "out" / "jobs" /
                  job_key("game_video", "CDRIB", 0) / "result.json") as handle:
            assert json.load(handle)["ann"] == row
        # ...and a resumed suite reloads it bit for bit.
        resumed = run_suite(spec, str(tmp_path / "out"), jobs=1)
        assert resumed.skipped == 2
        assert resumed.ann_rows() == rows
