"""Tests for the load-generation harness (``repro.experiments.loadgen``)."""

import json

import numpy as np
import pytest

from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer
from repro.experiments.loadgen import (
    generate_traffic,
    load_bench_serve,
    run_load_test,
    run_loadgen_benchmark,
    save_bench_serve,
    summarize_latencies,
)
from repro.serve import ColdStartServer


@pytest.fixture(scope="module")
def trained_model(small_scenario):
    model = CDRIB(small_scenario, CDRIBConfig(embedding_dim=16, num_layers=2,
                                              epochs=2, batch_size=128,
                                              num_negatives=2, seed=0))
    CDRIBTrainer(model).fit()
    return model


def make_server(trained_model, small_scenario, **kwargs):
    defaults = dict(top_k=5, cache_capacity=256)
    defaults.update(kwargs)
    return ColdStartServer(trained_model, small_scenario.domain_x.name,
                           small_scenario.domain_y.name, **defaults)


class TestGenerateTraffic:
    def test_seeded_and_in_range(self):
        traffic = generate_traffic(500, 40, seed=7)
        assert traffic.shape == (500,)
        assert traffic.min() >= 0 and traffic.max() < 40
        assert np.array_equal(traffic, generate_traffic(500, 40, seed=7))
        assert not np.array_equal(traffic, generate_traffic(500, 40, seed=8))

    def test_hot_set_dominates(self):
        traffic = generate_traffic(2000, 100, seed=0, hot_fraction=0.2,
                                   hot_weight=0.8)
        hot_share = float(np.mean(traffic < 20))
        # 80% of requests target the hot 20% (plus uniform spillover).
        assert hot_share > 0.7

    def test_uniform_when_hot_weight_zero(self):
        traffic = generate_traffic(2000, 100, seed=0, hot_weight=0.0)
        assert float(np.mean(traffic < 20)) < 0.35

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            generate_traffic(0, 10)
        with pytest.raises(ValueError):
            generate_traffic(10, 0)
        with pytest.raises(ValueError):
            generate_traffic(10, 10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            generate_traffic(10, 10, hot_weight=1.5)


class TestSummarizeLatencies:
    def test_percentiles_ordered_and_in_ms(self):
        summary = summarize_latencies(np.linspace(0.001, 0.1, 100))
        assert summary["p50_ms"] <= summary["p90_ms"] <= summary["p99_ms"]
        assert summary["p99_ms"] <= summary["max_ms"] == pytest.approx(100.0)
        assert summary["mean_ms"] == pytest.approx(50.5, rel=1e-6)

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize_latencies([])


class TestRunLoadTest:
    def test_serves_all_requests_with_percentiles(self, trained_model,
                                                  small_scenario):
        server = make_server(trained_model, small_scenario)
        num_users = small_scenario.domain_x.graph.num_users
        traffic = generate_traffic(64, num_users, seed=3)
        result = run_load_test(server, traffic, workers=4, max_batch_size=8)
        assert result.requests == 64
        assert result.errors == 0
        assert result.workers == 4
        assert result.latencies_seconds.shape == (64,)
        assert result.users_per_sec > 0
        assert (result.latency["p50_ms"] <= result.latency["p90_ms"]
                <= result.latency["p99_ms"])
        assert result.batches_flushed >= 1

    def test_skewed_traffic_hits_cache(self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        num_users = small_scenario.domain_x.graph.num_users
        traffic = generate_traffic(128, num_users, seed=1, hot_fraction=0.1)
        result = run_load_test(server, traffic, workers=2, max_batch_size=16)
        assert result.cache_hits + result.cache_misses >= result.requests
        assert 0.0 < result.cache_hit_rate < 1.0
        # Unique users encoded, not one encode per request.
        assert result.users_encoded == len(np.unique(traffic))

    def test_counters_are_deltas_on_a_reused_server(self, trained_model,
                                                    small_scenario):
        server = make_server(trained_model, small_scenario)
        traffic = np.array([0, 1, 2, 3] * 4)
        run_load_test(server, traffic, workers=2, max_batch_size=4)
        server.cache.clear()
        again = run_load_test(server, traffic, workers=2, max_batch_size=4)
        # Same cold-cache run on a warm-counter server: deltas, not totals.
        assert again.users_encoded == 4
        assert again.cache_misses >= 4

    def test_bad_user_counts_as_error_not_crash(self, trained_model,
                                                small_scenario):
        server = make_server(trained_model, small_scenario)
        traffic = np.array([0, 1, 10**9, 2])
        result = run_load_test(server, traffic, workers=2, max_batch_size=4)
        assert result.errors == 1
        assert result.requests == 4
        assert result.latencies_seconds.shape == (4,)

    def test_row_carries_the_artifact_schema(self, trained_model,
                                             small_scenario):
        server = make_server(trained_model, small_scenario)
        result = run_load_test(server, [0, 1, 2, 3], workers=1,
                               max_batch_size=2)
        row = result.as_row()
        for key in ("users_per_sec", "p50_ms", "p90_ms", "p99_ms",
                    "cache_hit_rate", "requests", "workers"):
            assert key in row

    def test_invalid_arguments_rejected(self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        with pytest.raises(ValueError):
            run_load_test(server, [], workers=1)
        with pytest.raises(ValueError):
            run_load_test(server, [0, 1], workers=0)


class TestLoadgenBenchmark:
    def test_sweep_produces_one_row_per_configuration(self):
        from repro.experiments.config import get_profile

        rows = run_loadgen_benchmark(
            "game_video", batch_sizes=(8,), workers=(1, 2),
            backends=("exact",), num_requests=24, top_k=4,
            profile=get_profile("smoke"))
        assert len(rows) == 2  # 1 batch size x 2 worker counts x 1 backend
        for row in rows:
            assert row["backend"] == "exact"
            assert row["requests"] == 24
            assert row["users_per_sec"] > 0
            assert row["p50_ms"] <= row["p90_ms"] <= row["p99_ms"]
            assert 0.0 <= row["cache_hit_rate"] <= 1.0
        assert sorted(row["workers"] for row in rows) == [1, 2]

    def test_nprobe_axis_applies_to_ivf_only(self):
        from repro.experiments.config import get_profile

        rows = run_loadgen_benchmark(
            "game_video", batch_sizes=(8,), workers=(1,),
            nprobes=(1, 2), backends=("exact", "ivf"), num_requests=16,
            top_k=4, profile=get_profile("smoke"))
        exact = [row for row in rows if row["backend"] == "exact"]
        ivf = [row for row in rows if row["backend"] == "ivf"]
        assert len(exact) == 1 and exact[0]["nprobe"] == ""
        assert sorted(row["nprobe"] for row in ivf) == [1, 2]

    def test_invalid_axes_rejected(self):
        with pytest.raises(ValueError):
            run_loadgen_benchmark(batch_sizes=())
        with pytest.raises(ValueError):
            run_loadgen_benchmark(workers=(0,))
        with pytest.raises(ValueError):
            run_loadgen_benchmark(backends=())
        with pytest.raises(ValueError):
            run_loadgen_benchmark(num_requests=0)


class TestBenchServeArtifact:
    def _rows(self):
        return [{"backend": "exact", "max_batch_size": 8, "workers": 2,
                 "nprobe": "", "users_per_sec": 1000.0, "p50_ms": 1.0,
                 "p90_ms": 2.0, "p99_ms": 3.0, "cache_hit_rate": 0.5}]

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "BENCH_serve.json")
        written = save_bench_serve(self._rows(), path,
                                   config={"scenario": "game_video"})
        payload = load_bench_serve(written)
        assert payload["benchmark"] == "bench-serve"
        assert payload["schema_version"] == 1
        assert payload["config"]["scenario"] == "game_video"
        assert payload["rows"][0]["users_per_sec"] == 1000.0
        assert payload["generated_unix"] > 0

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_bench_serve([], str(tmp_path / "x.json"))

    def test_rows_missing_schema_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="p99_ms"):
            save_bench_serve([{"users_per_sec": 1.0}],
                             str(tmp_path / "x.json"))

    def test_foreign_artifact_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"benchmark": "something-else"}))
        with pytest.raises(ValueError, match="not a bench-serve"):
            load_bench_serve(str(path))
        path.write_text(json.dumps({"benchmark": "bench-serve",
                                    "schema_version": 99, "rows": [{}]}))
        with pytest.raises(ValueError, match="schema_version"):
            load_bench_serve(str(path))


class TestBenchServeCLI:
    def test_parser_accepts_bench_serve_flags(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(
            ["bench-serve", "--workers", "1,4", "--requests", "64",
             "--backends", "exact", "--nprobes", "2,4",
             "--bench-json", "out/BENCH_serve.json"])
        assert args.experiment == "bench-serve"
        assert args.workers == "1,4"
        assert args.requests == 64
        assert args.backends == "exact"
        assert args.nprobes == "2,4"
        assert args.bench_json == "out/BENCH_serve.json"

    def test_invalid_flags_rejected(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["bench-serve", "--workers", "0,2"])
        assert "--workers" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["bench-serve", "--backends", "faiss"])
        assert "--backends" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["bench-serve", "--requests", "0"])
        assert "--requests" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["serve", "--bench-json", "x.json"])
        assert "--bench-json" in capsys.readouterr().err

    def test_main_writes_bench_serve_artifact(self, tmp_path, capsys):
        from repro.experiments.cli import main

        artifact = str(tmp_path / "BENCH_serve.json")
        code = main(["bench-serve", "--profile", "smoke",
                     "--batch-sizes", "8", "--workers", "1,2",
                     "--backends", "exact", "--requests", "24",
                     "--top-k", "4", "--bench-json", artifact])
        assert code == 0
        out = capsys.readouterr().out
        assert "users_per_sec" in out
        assert "wrote BENCH_serve artifact" in out
        payload = load_bench_serve(artifact)
        assert len(payload["rows"]) == 2
        assert payload["config"]["profile"] == "smoke"
        assert payload["config"]["workers"] == [1, 2]
