"""Tests for the concurrent serving front-end (``repro.serve.frontend``).

The acceptance pin lives here: top-K lists served through a
:class:`ServingFrontend` under genuinely concurrent traffic must be
bit-identical to synchronous :meth:`ColdStartServer.recommend` calls for
the same requests.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer
from repro.serve import ColdStartServer, ServingFrontend


@pytest.fixture(scope="module")
def trained_model(small_scenario):
    model = CDRIB(small_scenario, CDRIBConfig(embedding_dim=16, num_layers=2,
                                              epochs=2, batch_size=128,
                                              num_negatives=2, seed=0))
    CDRIBTrainer(model).fit()
    return model


def make_server(trained_model, small_scenario, **kwargs):
    defaults = dict(top_k=5, cache_capacity=256)
    defaults.update(kwargs)
    return ColdStartServer(trained_model, small_scenario.domain_x.name,
                           small_scenario.domain_y.name, **defaults)


class TestTicketLifecycle:
    def test_submit_returns_pending_ticket(self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        frontend = ServingFrontend(server, max_batch_size=100, start=False)
        ticket = frontend.submit(1)
        assert not ticket.done and not ticket.failed
        assert frontend.pending == 1
        frontend.flush()
        assert ticket.done
        assert frontend.pending == 0
        assert ticket.result().user == 1
        assert len(ticket.result()) == server.top_k

    def test_size_auto_flush_resolves_inline(self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        frontend = ServingFrontend(server, max_batch_size=2, start=False)
        first = frontend.submit(1)
        assert not first.done
        second = frontend.submit(2)          # hits max_batch_size
        assert first.done and second.done
        assert frontend.batches_flushed == 1

    def test_result_timeout_raises(self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        frontend = ServingFrontend(server, max_batch_size=100, start=False)
        ticket = frontend.submit(1)
        with pytest.raises(TimeoutError):
            ticket.result(timeout=0.01)
        frontend.flush()
        assert ticket.result(timeout=0.01).user == 1

    def test_close_drains_queue_and_refuses_new_submits(
            self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        frontend = ServingFrontend(server, max_batch_size=100)
        ticket = frontend.submit(3)
        frontend.close()
        assert ticket.done                  # drained, not stranded
        assert ticket.result().user == 3
        with pytest.raises(RuntimeError):
            frontend.submit(4)
        frontend.close()                    # idempotent

    def test_context_manager_closes(self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        with ServingFrontend(server, max_batch_size=100) as frontend:
            ticket = frontend.submit(2)
        assert ticket.done
        with pytest.raises(RuntimeError):
            frontend.submit(1)

    def test_failed_request_resolves_and_reraises(self, trained_model,
                                                  small_scenario):
        server = make_server(trained_model, small_scenario)
        frontend = ServingFrontend(server, max_batch_size=100, start=False)
        good = frontend.submit(1)
        poison = frontend.submit(10**9)
        frontend.flush()
        assert good.done and poison.done and poison.failed
        with pytest.raises(ValueError):
            poison.result(timeout=0.1)
        assert np.array_equal(good.result().items,
                              server.recommend([1])[0].items)


class TestBackgroundFlusher:
    def test_max_delay_flushes_without_any_further_call(
            self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        with ServingFrontend(server, max_batch_size=100,
                             max_delay=0.01) as frontend:
            ticket = frontend.submit(1)
            # No explicit flush, no further submit: only the background
            # flusher can resolve this.
            result = ticket.result(timeout=5.0)
        assert result.user == 1

    def test_idle_queue_flushes_before_max_delay(self, trained_model,
                                                 small_scenario):
        # With a long max_delay the deadline alone cannot explain a flush
        # within the test timeout; the idle check must kick in.
        server = make_server(trained_model, small_scenario)
        with ServingFrontend(server, max_batch_size=100, max_delay=30.0,
                             poll_interval=0.005) as frontend:
            ticket = frontend.submit(2)
            result = ticket.result(timeout=5.0)
        assert result.user == 2


class TestConcurrentBitIdentity:
    """The acceptance pin: concurrent front-end lists == synchronous lists."""

    def _traffic(self, small_scenario, n=96, seed=11):
        num_users = small_scenario.domain_x.graph.num_users
        rng = np.random.default_rng(seed)
        return rng.integers(0, num_users, size=n)

    def test_concurrent_matches_synchronous_recommend(self, trained_model,
                                                      small_scenario):
        traffic = self._traffic(small_scenario)
        concurrent_server = make_server(trained_model, small_scenario)
        reference_server = make_server(trained_model, small_scenario)

        with ServingFrontend(concurrent_server, max_batch_size=8,
                             max_delay=0.005) as frontend:
            def drive(user):
                return frontend.submit(int(user)).result(timeout=30.0)

            with ThreadPoolExecutor(max_workers=4) as pool:
                served = list(pool.map(drive, traffic))

        for user, rec in zip(traffic, served):
            reference = reference_server.recommend([int(user)])[0]
            assert rec.user == int(user)
            assert np.array_equal(rec.items, reference.items)
            np.testing.assert_allclose(rec.scores, reference.scores,
                                       rtol=1e-12, atol=1e-12)

    def test_concurrent_mixed_k_matches_synchronous(self, trained_model,
                                                    small_scenario):
        traffic = self._traffic(small_scenario, n=48, seed=23)
        ks = [3 if i % 3 == 0 else None for i in range(len(traffic))]
        concurrent_server = make_server(trained_model, small_scenario)
        reference_server = make_server(trained_model, small_scenario)

        with ServingFrontend(concurrent_server, max_batch_size=8,
                             max_delay=0.005) as frontend:
            def drive(pair):
                user, k = pair
                return frontend.submit(int(user), k=k).result(timeout=30.0)

            with ThreadPoolExecutor(max_workers=4) as pool:
                served = list(pool.map(drive, zip(traffic, ks)))

        for user, k, rec in zip(traffic, ks, served):
            reference = reference_server.recommend([int(user)], k=k)[0]
            assert np.array_equal(rec.items, reference.items)
            assert len(rec) == (k if k is not None else concurrent_server.top_k)

    def test_every_submitted_request_is_served_exactly_once(
            self, trained_model, small_scenario):
        server = make_server(trained_model, small_scenario)
        counted = []
        lock = threading.Lock()
        original_recommend = server.recommend

        def counting_recommend(users, k=None):
            with lock:
                counted.extend(int(u) for u in np.asarray(users))
            return original_recommend(users, k=k)

        server.recommend = counting_recommend
        traffic = self._traffic(small_scenario, n=64, seed=5)
        try:
            with ServingFrontend(server, max_batch_size=16,
                                 max_delay=0.002) as frontend:
                with ThreadPoolExecutor(max_workers=8) as pool:
                    list(pool.map(
                        lambda u: frontend.submit(int(u)).result(timeout=30.0),
                        traffic))
        finally:
            server.recommend = original_recommend
        assert sorted(counted) == sorted(int(u) for u in traffic)
