"""End-to-end integration tests: does the reproduction learn what it should?

These tests train small models, so they are the slowest in the suite, but
they pin down the paper's central qualitative claims on a seeded scenario:

* CDRIB comfortably beats a random recommender on cold-start users;
* CDRIB beats a non-personalised popularity recommender;
* the EMCDR pipeline runs end-to-end and also beats random;
* shrinking the training overlap ratio does not *improve* CDRIB (robustness
  trend of Table VIII).
"""

import numpy as np
import pytest

from repro.baselines import BaselineConfig, make_baseline
from repro.core import CDRIB, CDRIBConfig, CDRIBTrainer
from repro.eval import LeaveOneOutEvaluator, popularity_scorer, random_scorer


@pytest.fixture(scope="module")
def trained_cdrib(small_scenario):
    config = CDRIBConfig(embedding_dim=32, num_layers=2, epochs=50, batch_size=256,
                         num_negatives=4, learning_rate=0.02, beta1=0.5, beta2=0.5,
                         dropout=0.1, seed=0)
    model = CDRIB(small_scenario, config)
    trainer = CDRIBTrainer(model)
    trainer.fit()
    return trainer


@pytest.fixture(scope="module")
def evaluator(small_scenario):
    return LeaveOneOutEvaluator(small_scenario, num_negatives=99, seed=0)


def _mean_mrr(scenario, evaluator, scorer_factory):
    values = []
    for split in scenario.directions:
        result = evaluator.evaluate_direction(
            scorer_factory(split.source, split.target), split.source, split.target
        )
        values.append(result.metrics.mrr)
    return float(np.mean(values))


class TestCDRIBLearns:
    def test_beats_random(self, small_scenario, evaluator, trained_cdrib):
        cdrib_mrr = _mean_mrr(small_scenario, evaluator, trained_cdrib.make_scorer)
        random_mrr = _mean_mrr(small_scenario, evaluator,
                               lambda s, t: random_scorer(seed=1))
        assert cdrib_mrr > 1.8 * random_mrr

    def test_beats_popularity(self, small_scenario, evaluator, trained_cdrib):
        cdrib_mrr = _mean_mrr(small_scenario, evaluator, trained_cdrib.make_scorer)
        popularity_mrr = _mean_mrr(
            small_scenario, evaluator,
            lambda s, t: popularity_scorer(small_scenario.domain(t)),
        )
        assert cdrib_mrr > popularity_mrr

    def test_loss_decreased_during_training(self, trained_cdrib):
        history = trained_cdrib.model  # model trained in fixture
        # Re-run a couple of epochs to confirm training is stable (no NaNs).
        loss, terms = CDRIBTrainer(history).train_epoch()
        assert np.isfinite(loss)


class TestEMCDRPipeline:
    def test_emcdr_end_to_end_beats_random(self, small_scenario, evaluator):
        config = BaselineConfig(embedding_dim=32, epochs=10, mapping_epochs=40,
                                batch_size=256, num_negatives=4, seed=0)
        model = make_baseline("EMCDR(BPRMF)", config).fit(small_scenario)
        emcdr_mrr = _mean_mrr(small_scenario, evaluator, model.scorer)
        random_mrr = _mean_mrr(small_scenario, evaluator,
                               lambda s, t: random_scorer(seed=2))
        assert emcdr_mrr > random_mrr


class TestCrossDomainBridgeHelps:
    def test_cross_domain_terms_enable_cold_start_transfer(self, small_scenario, evaluator):
        """The overlap bridge is what makes cold-start transfer possible.

        Without the cross-domain IB and contrastive terms the two encoders
        are never aligned, so scoring a source-domain user representation
        against target-domain items should be close to random; the full
        model must beat that clearly.  (The finer-grained overlap-*ratio*
        trend of Table VIII needs convergence-level training and is checked
        by the benchmark harness instead.)
        """
        config = CDRIBConfig(embedding_dim=32, num_layers=2, epochs=50, batch_size=256,
                             num_negatives=4, learning_rate=0.02, beta1=0.5, beta2=0.5,
                             dropout=0.1, seed=0)

        def train_with(cfg):
            trainer = CDRIBTrainer(CDRIB(small_scenario, cfg))
            trainer.fit()
            return _mean_mrr(small_scenario, evaluator, trainer.make_scorer)

        with_bridge = train_with(config)
        without_bridge = train_with(config.variant(use_cross_domain_ib=False,
                                                   use_contrastive=False))
        assert with_bridge > 1.25 * without_bridge
