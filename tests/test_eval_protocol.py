"""Tests for the leave-one-out evaluation protocol, grouping and significance."""

import numpy as np
import pytest

from repro.eval import (
    LeaveOneOutEvaluator,
    PAPER_INTERACTION_BUCKETS,
    group_by_interaction_count,
    paired_t_test,
    popularity_scorer,
    random_scorer,
)


@pytest.fixture(scope="module")
def evaluator(tiny_scenario):
    return LeaveOneOutEvaluator(tiny_scenario, num_negatives=30, seed=0)


def _oracle_scorer(scenario, target_name):
    """Scorer that knows the held-out ground truth: positives get score 1."""
    target_domain = scenario.domain(target_name)
    split = next(s for s in scenario.directions if s.target == target_name)
    truth = set()
    for user in split.validation + split.test:
        for item in user.target_items:
            truth.add((int(user.source_user), int(item)))

    def score(users, items):
        return np.array([1.0 if (int(u), int(i)) in truth else 0.0
                         for u, i in zip(users, items)])

    return score


class TestLeaveOneOutEvaluator:
    def test_oracle_scorer_achieves_perfect_mrr(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        result = evaluator.evaluate_direction(
            _oracle_scorer(tiny_scenario, split.target), split.source, split.target
        )
        assert result.metrics.mrr == pytest.approx(1.0)
        assert result.metrics.hit_rate[1] == pytest.approx(1.0)

    def test_random_scorer_is_far_from_perfect(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        result = evaluator.evaluate_direction(
            random_scorer(seed=1), split.source, split.target
        )
        assert result.metrics.mrr < 0.6

    def test_record_count_matches_split(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        result = evaluator.evaluate_direction(
            random_scorer(), split.source, split.target, split_name="test"
        )
        assert result.metrics.num_records == split.num_test_records

    def test_validation_and_all_splits(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        validation = evaluator.evaluate_direction(
            random_scorer(), split.source, split.target, split_name="validation"
        )
        everything = evaluator.evaluate_direction(
            random_scorer(), split.source, split.target, split_name="all"
        )
        assert validation.metrics.num_records == split.num_validation_records
        assert everything.metrics.num_records == (
            split.num_validation_records + split.num_test_records
        )

    def test_unknown_split_raises(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        with pytest.raises(ValueError):
            evaluator.evaluate_direction(random_scorer(), split.source, split.target,
                                         split_name="bogus")

    def test_max_users_cap(self, tiny_scenario):
        capped = LeaveOneOutEvaluator(tiny_scenario, num_negatives=10, seed=0,
                                      max_users_per_direction=1)
        split = tiny_scenario.x_to_y
        result = capped.evaluate_direction(random_scorer(), split.source, split.target)
        assert len({r.user_key for r in result.records}) <= 1

    def test_candidates_exclude_user_history(self, tiny_scenario, evaluator):
        # The positive candidate is always at index 0 and negatives never
        # include any of the user's full-item-set interactions; we verify
        # through the ranks produced by an oracle that scores history items
        # with 1: if negatives leaked history items the oracle rank could drop.
        split = tiny_scenario.y_to_x
        target_domain = tiny_scenario.domain(split.target)
        history = evaluator._full_item_sets[split.target]

        def history_scorer(users, items):
            # Score every item in the user's history (incl. ground truth) as 1.
            user_keys = {}
            for user in split.validation + split.test:
                user_keys[user.source_user] = user.user_key
            return np.array([
                1.0 if int(i) in history.get(user_keys.get(int(u)), set()) else 0.0
                for u, i in zip(users, items)
            ])

        result = evaluator.evaluate_direction(history_scorer, split.source, split.target)
        assert result.metrics.mrr == pytest.approx(1.0)

    def test_evaluate_bidirectional(self, tiny_scenario, evaluator):
        scorers = {
            split.target: random_scorer(seed=3) for split in tiny_scenario.directions
        }
        results = evaluator.evaluate_bidirectional(scorers)
        assert set(results) == {split.target for split in tiny_scenario.directions}

    def test_deterministic_given_seed(self, tiny_scenario):
        split = tiny_scenario.x_to_y
        first = LeaveOneOutEvaluator(tiny_scenario, num_negatives=20, seed=7)
        second = LeaveOneOutEvaluator(tiny_scenario, num_negatives=20, seed=7)
        scorer = popularity_scorer(tiny_scenario.domain(split.target))
        result_a = first.evaluate_direction(scorer, split.source, split.target)
        result_b = second.evaluate_direction(scorer, split.source, split.target)
        assert [r.rank for r in result_a.records] == [r.rank for r in result_b.records]


class TestBatchedScoring:
    def test_batched_scoring_matches_per_record_reference(self, tiny_scenario):
        """The batched scorer path must reproduce the per-record loop exactly."""
        from repro.eval.metrics import rank_of_positive

        split = tiny_scenario.x_to_y
        evaluator = LeaveOneOutEvaluator(tiny_scenario, num_negatives=15, seed=11)
        scorer = popularity_scorer(tiny_scenario.domain(split.target))
        result = evaluator.evaluate_direction(scorer, split.source, split.target)

        # Reference: the historical per-record implementation, inlined.
        direction = tiny_scenario.direction(split.source, split.target)
        target_domain = tiny_scenario.domain(split.target)
        rng = np.random.default_rng(11)
        reference_ranks = []
        for user in direction.test:
            banned = evaluator._full_item_sets[split.target].get(user.user_key, set())
            for item in user.target_items:
                negatives = evaluator._sample_negatives(
                    rng, target_domain.num_items, banned, 15
                )
                candidates = np.concatenate(([int(item)], negatives))
                user_column = np.full(candidates.shape, user.source_user,
                                      dtype=np.int64)
                scores = np.asarray(scorer(user_column, candidates))
                reference_ranks.append(rank_of_positive(scores, positive_index=0))
        assert [r.rank for r in result.records] == reference_ranks

    def test_chunked_scoring_is_equivalent(self, tiny_scenario):
        split = tiny_scenario.x_to_y
        evaluator = LeaveOneOutEvaluator(tiny_scenario, num_negatives=15, seed=2)
        scorer = popularity_scorer(tiny_scenario.domain(split.target))
        unchunked = evaluator.evaluate_direction(scorer, split.source, split.target)
        evaluator.score_chunk_size = 7  # force many tiny scorer calls
        chunked = evaluator.evaluate_direction(scorer, split.source, split.target)
        assert [r.rank for r in unchunked.records] == [r.rank for r in chunked.records]

    def test_scorer_sees_batched_calls(self, tiny_scenario):
        split = tiny_scenario.x_to_y
        evaluator = LeaveOneOutEvaluator(tiny_scenario, num_negatives=5, seed=0)
        calls = []

        def counting_scorer(users, items):
            calls.append(len(items))
            return np.zeros(len(items))

        result = evaluator.evaluate_direction(counting_scorer, split.source,
                                              split.target)
        # One chunked call covers every record instead of a call per record.
        assert len(calls) == 1
        assert calls[0] == result.metrics.num_records * 6


class TestNegativeStreamAlignment:
    """The exhausted-pool branch must consume the RNG like every other draw.

    Regression for small catalogs: a record whose banned set leaves at most
    ``count`` candidates used to return the sorted complement *without*
    touching the generator, making every later record's draws depend on
    whether an earlier pool happened to be exhausted.  The stream is now
    branch-deterministic: one permutation of the complement per such record.
    """

    def test_exhausted_pool_consumes_one_permutation(self):
        sample = LeaveOneOutEvaluator._sample_negatives
        num_items, count = 10, 5
        banned = set(range(6))  # available=4 <= count -> complement branch

        rng = np.random.default_rng(42)
        first = sample(rng, num_items, banned, count)
        second = sample(rng, num_items, set(), count)

        # The complement branch returns exactly the unbanned items ...
        assert sorted(first.tolist()) == [6, 7, 8, 9]
        # ... in permutation order, having consumed exactly one permutation
        # of the complement: replaying that consumption on a fresh generator
        # reproduces the next record's draws bit-for-bit.
        replay = np.random.default_rng(42)
        np.testing.assert_array_equal(first, replay.permutation(np.array([6, 7, 8, 9])))
        np.testing.assert_array_equal(second, sample(replay, num_items, set(), count))

    def test_exhausted_pool_output_is_not_sorted_everywhere(self):
        sample = LeaveOneOutEvaluator._sample_negatives
        outputs = []
        for seed in range(8):
            rng = np.random.default_rng(seed)
            outputs.append(sample(rng, 12, set(range(6)), 6).tolist())
        assert any(out != sorted(out) for out in outputs)

    def test_rejection_branch_stream_unchanged(self):
        """The fix must not touch the normal rejection path's draws."""
        sample = LeaveOneOutEvaluator._sample_negatives
        rng = np.random.default_rng(7)
        drawn = sample(rng, 1000, {1, 2, 3}, 10)

        replay = np.random.default_rng(7)
        expected, seen = [], {1, 2, 3}
        while len(expected) < 10:
            for item in replay.integers(0, 1000, size=(10 - len(expected)) * 2):
                item = int(item)
                if item in seen:
                    continue
                seen.add(item)
                expected.append(item)
                if len(expected) == 10:
                    break
        np.testing.assert_array_equal(drawn, expected)


class TestGrouping:
    def test_groups_partition_records(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        result = evaluator.evaluate_direction(random_scorer(), split.source, split.target)
        groups = group_by_interaction_count(result)
        assert [g.label for g in groups] == [f"{lo}-{hi}" for lo, hi in PAPER_INTERACTION_BUCKETS]
        grouped_records = sum(g.metrics.num_records for g in groups)
        in_range = sum(
            1 for record in result.records
            if any(lo <= record.source_degree <= hi for lo, hi in PAPER_INTERACTION_BUCKETS)
        )
        assert grouped_records == in_range

    def test_custom_buckets(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        result = evaluator.evaluate_direction(random_scorer(), split.source, split.target)
        groups = group_by_interaction_count(result, buckets=((0, 1000),))
        assert groups[0].metrics.num_records == len(result.records)


class TestSignificance:
    def test_oracle_significantly_better_than_random(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        oracle = evaluator.evaluate_direction(
            _oracle_scorer(tiny_scenario, split.target), split.source, split.target
        )
        random_result = evaluator.evaluate_direction(
            random_scorer(seed=5), split.source, split.target
        )
        outcome = paired_t_test(oracle, random_result)
        assert outcome.better
        assert outcome.significant

    def test_identical_results_not_significant(self, tiny_scenario, evaluator):
        split = tiny_scenario.x_to_y
        result = evaluator.evaluate_direction(random_scorer(seed=9), split.source, split.target)
        outcome = paired_t_test(result, result)
        assert not outcome.significant
        assert outcome.mean_difference == 0.0

    def test_mismatched_record_sets_raise(self, tiny_scenario, evaluator):
        split_a = tiny_scenario.x_to_y
        split_b = tiny_scenario.y_to_x
        result_a = evaluator.evaluate_direction(random_scorer(), split_a.source, split_a.target)
        result_b = evaluator.evaluate_direction(random_scorer(), split_b.source, split_b.target)
        if len(result_a.records) == len(result_b.records):
            pytest.skip("record counts coincide for this seed")
        with pytest.raises(ValueError):
            paired_t_test(result_a, result_b)
