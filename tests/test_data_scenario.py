"""Tests for cross-domain scenario assembly, splits and the merged view."""

import numpy as np
import pytest

from repro.data import build_merged_view, build_scenario, scenario_statistics
from repro.data.statistics import format_statistics_table


class TestScenarioConstruction:
    def test_domains_named_after_tables(self, tiny_scenario, tiny_tables):
        assert tiny_scenario.domain_x.name == tiny_tables.table_x.name
        assert tiny_scenario.domain_y.name == tiny_tables.table_y.name

    def test_overlap_pairs_reference_same_user_key(self, tiny_scenario):
        reverse_x = {idx: key for key, idx in tiny_scenario.domain_x.user_index.items()}
        reverse_y = {idx: key for key, idx in tiny_scenario.domain_y.user_index.items()}
        for idx_x, idx_y in tiny_scenario.overlap_pairs:
            assert reverse_x[int(idx_x)] == reverse_y[int(idx_y)]

    def test_cold_start_users_have_no_target_training_edges(self, tiny_scenario):
        for split in tiny_scenario.directions:
            target_domain = tiny_scenario.domain(split.target)
            training_users = set(target_domain.graph.edges[:, 0].tolist())
            for user in split.validation + split.test:
                target_idx = target_domain.user_index[user.user_key]
                assert target_idx not in training_users

    def test_cold_start_users_keep_source_edges(self, tiny_scenario):
        for split in tiny_scenario.directions:
            source_domain = tiny_scenario.domain(split.source)
            for user in split.validation + split.test:
                assert source_domain.graph.items_of_user(user.source_user).size > 0

    def test_cold_start_users_not_in_training_overlap(self, tiny_scenario):
        cold_keys = {
            user.user_key
            for split in tiny_scenario.directions
            for user in split.validation + split.test
        }
        assert cold_keys.isdisjoint(set(tiny_scenario.overlap_user_keys))

    def test_held_out_items_exist_in_full_edge_set(self, tiny_scenario):
        for split in tiny_scenario.directions:
            target_domain = tiny_scenario.domain(split.target)
            full_edges = {(int(u), int(i)) for u, i in target_domain.all_edges}
            for user in split.validation + split.test:
                target_idx = target_domain.user_index[user.user_key]
                for item in user.target_items:
                    assert (target_idx, int(item)) in full_edges

    def test_source_degree_matches_source_graph(self, tiny_scenario):
        for split in tiny_scenario.directions:
            source_domain = tiny_scenario.domain(split.source)
            degrees = np.zeros(source_domain.num_users, dtype=int)
            np.add.at(degrees, source_domain.all_edges[:, 0], 1)
            for user in split.validation + split.test:
                assert user.source_degree == degrees[user.source_user]

    def test_cold_start_ratio_roughly_respected(self, tiny_scenario):
        total_overlap = tiny_scenario.num_overlap_train + sum(
            split.num_cold_start_users for split in tiny_scenario.directions
        )
        cold = sum(split.num_cold_start_users for split in tiny_scenario.directions)
        assert cold <= 0.35 * total_overlap
        assert cold >= 1

    def test_direction_lookup(self, tiny_scenario):
        name_x = tiny_scenario.domain_x.name
        name_y = tiny_scenario.domain_y.name
        assert tiny_scenario.direction(name_x, name_y).target == name_y
        with pytest.raises(KeyError):
            tiny_scenario.direction(name_x, "nope")
        with pytest.raises(KeyError):
            tiny_scenario.domain("nope")

    def test_repr(self, tiny_scenario):
        assert "CDRScenario" in repr(tiny_scenario)


class TestOverlapRatio:
    def test_with_overlap_ratio_subsamples_pairs(self, tiny_scenario):
        reduced = tiny_scenario.with_overlap_ratio(0.5, seed=1)
        assert reduced.num_overlap_train == max(1, round(0.5 * tiny_scenario.num_overlap_train))
        # Evaluation users are untouched.
        assert reduced.x_to_y.num_test_records == tiny_scenario.x_to_y.num_test_records

    def test_full_ratio_keeps_everything(self, tiny_scenario):
        assert tiny_scenario.with_overlap_ratio(1.0).num_overlap_train == (
            tiny_scenario.num_overlap_train
        )

    def test_invalid_ratio(self, tiny_scenario):
        with pytest.raises(ValueError):
            tiny_scenario.with_overlap_ratio(0.0)
        with pytest.raises(ValueError):
            tiny_scenario.with_overlap_ratio(1.5)

    def test_subsampled_pairs_are_subset(self, tiny_scenario):
        reduced = tiny_scenario.with_overlap_ratio(0.4, seed=2)
        original = {tuple(pair) for pair in tiny_scenario.overlap_pairs.tolist()}
        for pair in reduced.overlap_pairs.tolist():
            assert tuple(pair) in original


class TestMergedView:
    def test_merged_edges_count(self, tiny_scenario):
        merged = build_merged_view(tiny_scenario)
        expected = (tiny_scenario.domain_x.graph.num_edges
                    + tiny_scenario.domain_y.graph.num_edges)
        assert merged.graph.num_edges == expected

    def test_merged_item_space_is_disjoint_union(self, tiny_scenario):
        merged = build_merged_view(tiny_scenario)
        assert merged.graph.num_items == (tiny_scenario.domain_x.num_items
                                          + tiny_scenario.domain_y.num_items)
        assert merged.item_offset_y == tiny_scenario.domain_x.num_items

    def test_overlap_users_share_one_merged_id(self, tiny_scenario):
        merged = build_merged_view(tiny_scenario)
        assert len(merged.user_index) <= (tiny_scenario.domain_x.num_users
                                          + tiny_scenario.domain_y.num_users)
        # Every training-overlap user key maps to exactly one merged id.
        for key in tiny_scenario.overlap_user_keys:
            assert key in merged.user_index

    def test_cold_start_users_present_in_merged_index(self, tiny_scenario):
        merged = build_merged_view(tiny_scenario)
        for split in tiny_scenario.directions:
            for user in split.validation + split.test:
                assert user.user_key in merged.user_index


class TestStatistics:
    def test_statistics_rows(self, tiny_scenario):
        rows = scenario_statistics("tiny", tiny_scenario)
        assert len(rows) == 2
        for row in rows:
            as_dict = row.as_dict()
            assert as_dict["Training"] > 0
            assert as_dict["|U|"] > 0
            assert 0 < as_dict["Density"] < 1

    def test_statistics_counts_match_scenario(self, tiny_scenario):
        rows = {row.domain: row for row in scenario_statistics("tiny", tiny_scenario)}
        for split in tiny_scenario.directions:
            row = rows[split.target]
            assert row.num_validation == split.num_validation_records
            assert row.num_test == split.num_test_records
            assert row.num_cold_start == split.num_cold_start_users

    def test_format_statistics_table(self, tiny_scenario):
        rows = scenario_statistics("tiny", tiny_scenario)
        text = format_statistics_table(rows)
        assert "Density" in text
        assert format_statistics_table([]) == "(no rows)"
