"""Versioned on-disk checkpoints: one ``.npz`` payload + a JSON manifest.

A checkpoint is a *directory* holding exactly two files:

* ``payload.npz`` — every array of the saved state, keyed by slash-separated
  paths (``model/<param>``, ``optim/m/<param>``, ``trainer/global_step``, …),
  plus a ``rng_json`` entry carrying the bit-generator states of every RNG
  involved (PCG64 states contain 128-bit integers, so they travel as JSON
  rather than as arrays).
* ``manifest.json`` — human-readable metadata: the format version, what kind
  of state the payload holds, the model configuration and domain shapes
  needed to rebuild the network, a metric snapshot, provenance (scenario /
  profile names for deterministic re-assembly), and the SHA-256 checksum of
  the payload file.

The loader refuses checkpoints whose format version it does not understand
and checkpoints whose payload no longer matches the recorded checksum, so a
truncated copy or a bit-rotted artifact fails loudly instead of producing a
silently wrong model.  Everything higher level — trainer resume, serving
from an artifact, baseline persistence — goes through :func:`save_checkpoint`
/ :func:`load_checkpoint`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

FORMAT_VERSION = 1
PAYLOAD_NAME = "payload.npz"
MANIFEST_NAME = "manifest.json"
_RNG_KEY = "rng_json"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, corrupt, or from an incompatible format."""


@dataclass
class Checkpoint:
    """An in-memory checkpoint: manifest metadata plus the payload arrays."""

    path: str
    manifest: Dict[str, object]
    arrays: Dict[str, np.ndarray]
    rng_states: Dict[str, dict] = field(default_factory=dict)

    @property
    def format_version(self) -> int:
        """The on-disk format version the checkpoint was written with."""
        return int(self.manifest["format_version"])

    @property
    def kind(self) -> str:
        """The state kind tag (``"cdrib-trainer"``, ``"module"``, ...)."""
        return str(self.manifest.get("kind", ""))

    def namespace(self, prefix: str) -> Dict[str, np.ndarray]:
        """Arrays under ``prefix/`` with the prefix stripped."""
        start = prefix.rstrip("/") + "/"
        return {key[len(start):]: value for key, value in self.arrays.items()
                if key.startswith(start)}

    def scalar(self, key: str, default: Optional[int] = None) -> int:
        """An integer scalar stored in the payload."""
        if key not in self.arrays:
            if default is not None:
                return default
            raise CheckpointError(f"checkpoint {self.path!r} has no entry {key!r}")
        return int(self.arrays[key])


def _sha256_of(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_checkpoint(path: str, arrays: Dict[str, np.ndarray],
                    manifest: Optional[Dict[str, object]] = None,
                    rng_states: Optional[Dict[str, dict]] = None,
                    kind: str = "state") -> str:
    """Write ``arrays`` (+ optional RNG states) as a checkpoint directory.

    Parameters
    ----------
    path:
        Checkpoint directory; created (including parents) if missing and
        overwritten in place if it already holds a checkpoint.
    arrays:
        Payload arrays keyed by slash-separated paths.  Scalars (step
        counters) are stored as 0-d arrays.
    manifest:
        Extra manifest fields merged on top of the structural ones
        (``format_version``, ``kind``, ``payload``).  Callers put the model
        config, domain shapes, metrics and provenance here.
    rng_states:
        Bit-generator state dicts (``rng.bit_generator.state``) keyed by
        stream name; serialised as JSON inside the payload.
    kind:
        Free-form state kind tag (``"cdrib-trainer"``, ``"module"``, …),
        checked by loaders that only accept one kind.

    Returns the checkpoint directory path.

    Saving is crash-safe with respect to an existing checkpoint at ``path``:
    both files are written into a staging directory first and swapped in
    with directory renames, so a process dying mid-save leaves the previous
    checkpoint loadable (never a half-truncated payload).  ``path`` is
    treated as a dedicated checkpoint directory — any previous content is
    replaced wholesale by the swap.
    """
    base = path.rstrip("/")
    parent = os.path.dirname(os.path.abspath(base))
    os.makedirs(parent, exist_ok=True)
    staging = base + ".saving"
    backup = base + ".old"
    for leftover in (staging, backup):  # stale debris from an earlier crash
        if os.path.isdir(leftover):
            shutil.rmtree(leftover)
    os.makedirs(staging)

    payload_path = os.path.join(staging, PAYLOAD_NAME)
    payload: Dict[str, np.ndarray] = {}
    for key, value in arrays.items():
        if key == _RNG_KEY:
            raise ValueError(f"array key {key!r} is reserved")
        payload[key] = np.asarray(value)
    if rng_states:
        payload[_RNG_KEY] = np.array(json.dumps(rng_states, sort_keys=True))
    with open(payload_path, "wb") as handle:
        np.savez(handle, **payload)

    full_manifest: Dict[str, object] = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "payload": {
            "file": PAYLOAD_NAME,
            "sha256": _sha256_of(payload_path),
            "num_arrays": len(payload),
        },
    }
    if manifest:
        for key, value in manifest.items():
            if key in ("format_version", "payload"):
                raise ValueError(f"manifest key {key!r} is reserved")
            full_manifest[key] = value
    with open(os.path.join(staging, MANIFEST_NAME), "w") as handle:
        json.dump(full_manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if os.path.isdir(base):
        os.rename(base, backup)
    os.rename(staging, base)
    if os.path.isdir(backup):
        shutil.rmtree(backup)
    return path


def load_checkpoint(path: str, expect_kind: Optional[str] = None) -> Checkpoint:
    """Read and validate a checkpoint directory.

    Raises :class:`CheckpointError` when the directory is not a checkpoint,
    the format version is unknown, the payload checksum does not match the
    manifest (corruption), or ``expect_kind`` is given and does not match.
    """
    manifest_path = os.path.join(path, MANIFEST_NAME)
    payload_path = os.path.join(path, PAYLOAD_NAME)
    if not os.path.isfile(manifest_path) or not os.path.isfile(payload_path):
        raise CheckpointError(f"{path!r} is not a checkpoint directory "
                              f"(expected {MANIFEST_NAME} + {PAYLOAD_NAME})")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise CheckpointError(f"unreadable manifest in {path!r}: {error}") from error

    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    recorded = manifest.get("payload", {}).get("sha256")
    actual = _sha256_of(payload_path)
    if recorded != actual:
        raise CheckpointError(
            f"checkpoint {path!r} failed its checksum "
            f"(manifest {recorded!r} != payload {actual!r}); refusing to load"
        )
    if expect_kind is not None and manifest.get("kind") != expect_kind:
        raise CheckpointError(
            f"checkpoint {path!r} holds kind {manifest.get('kind')!r}, "
            f"expected {expect_kind!r}"
        )

    with np.load(payload_path, allow_pickle=False) as data:
        arrays = {key: data[key] for key in data.files if key != _RNG_KEY}
        rng_states: Dict[str, dict] = {}
        if _RNG_KEY in data.files:
            rng_states = json.loads(str(data[_RNG_KEY]))
    return Checkpoint(path=path, manifest=manifest, arrays=arrays,
                      rng_states=rng_states)


# --------------------------------------------------------------------------- #
# Module-level convenience (used by nn.Module and the baselines)
# --------------------------------------------------------------------------- #
def save_module(path: str, module, manifest: Optional[Dict[str, object]] = None,
                kind: str = "module") -> str:
    """Persist a :class:`~repro.nn.Module`'s parameters as a checkpoint."""
    arrays = {f"model/{name}": value
              for name, value in module.state_dict().items()}
    return save_checkpoint(path, arrays, manifest=manifest, kind=kind)


def load_module(path: str, module, strict: bool = True,
                expect_kind: Optional[str] = None) -> Checkpoint:
    """Load a checkpoint saved by :func:`save_module` into ``module``."""
    checkpoint = load_checkpoint(path, expect_kind=expect_kind)
    module.load_state_dict(checkpoint.namespace("model"), strict=strict)
    return checkpoint
