"""Durable model artifacts (``repro.io``).

The train→publish→serve pipeline's persistence layer: a versioned on-disk
checkpoint format (single ``.npz`` payload + JSON manifest with checksum)
shared by the CDRIB trainer, the plain :class:`~repro.nn.Module` save path
used by the baselines, and the serving CLI (``serve --checkpoint``).
"""

from .checkpoint import (
    FORMAT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    load_module,
    save_checkpoint,
    save_module,
)

__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "save_module",
    "load_module",
]
