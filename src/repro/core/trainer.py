"""Training loop for CDRIB and its ablation variants.

The trainer prepares four edge pools per scenario —

* in-domain edges of domain X and Y (for Eq. 8's reconstruction terms),
* cross-domain edges: target-domain interactions of *training* overlapping
  users, with the user column mapped to their source-domain index (for
  Eq. 7's reconstruction terms),

— plus the overlapping-user index pairs feeding the contrastive regularizer,
then runs mini-batch Adam updates on the joint objective (Eq. 16).
Validation MRR (averaged over both transfer directions) is optionally used
for early model selection, mirroring the paper's selection by best
validation MRR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.sampling import NegativeSampler
from ..data.scenario import CDRScenario
from ..eval import LeaveOneOutEvaluator
from ..optim import Adam, clip_grad_norm
from .cdrib import CDRIB, CDRIBConfig


@dataclass
class EpochLog:
    """Diagnostics of one training epoch."""

    epoch: int
    loss: float
    term_means: Dict[str, float]
    validation_mrr: Optional[float] = None


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: List[EpochLog] = field(default_factory=list)
    best_validation_mrr: Optional[float] = None
    best_epoch: Optional[int] = None

    @property
    def final_loss(self) -> float:
        return self.history[-1].loss if self.history else float("nan")


class _EdgePool:
    """A pool of (user, target_user, item) rows with per-step batch sampling."""

    def __init__(self, rows: np.ndarray, sampler: NegativeSampler,
                 rng: np.random.Generator):
        self.rows = rows
        self.sampler = sampler
        self.rng = rng

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    def sample_batch(self, batch_size: int, num_negatives: int
                     ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        if len(self) == 0:
            return None
        size = min(batch_size, len(self))
        picks = self.rng.choice(len(self), size=size, replace=False)
        batch = self.rows[picks]
        users = batch[:, 0]
        target_users = batch[:, 1]
        items = batch[:, 2]
        negatives = self.sampler.sample_batch(target_users, num_negatives)
        return users, items, negatives


class CDRIBTrainer:
    """Fits a :class:`CDRIB` model on a :class:`CDRScenario`."""

    def __init__(self, model: CDRIB, scenario: Optional[CDRScenario] = None,
                 evaluator: Optional[LeaveOneOutEvaluator] = None):
        self.model = model
        self.scenario = scenario if scenario is not None else model.scenario
        self.config: CDRIBConfig = model.config
        self.evaluator = evaluator
        self._rng = np.random.default_rng(self.config.seed + 1)
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay)
        self._pools = self._build_pools()

    # ------------------------------------------------------------------ #
    # Data preparation
    # ------------------------------------------------------------------ #
    def _build_pools(self) -> Dict[str, _EdgePool]:
        scenario = self.scenario
        dx, dy = scenario.domain_x, scenario.domain_y
        sampler_x = NegativeSampler(dx.graph, seed=self.config.seed + 11)
        sampler_y = NegativeSampler(dy.graph, seed=self.config.seed + 13)

        def in_domain_rows(graph) -> np.ndarray:
            edges = graph.edges
            # Columns: (user used for representation, user used for negative
            # sampling, item); in-domain both user columns coincide.
            return np.column_stack([edges[:, 0], edges[:, 0], edges[:, 1]])

        pools = {
            "in_x": _EdgePool(in_domain_rows(dx.graph), sampler_x, self._rng),
            "in_y": _EdgePool(in_domain_rows(dy.graph), sampler_y, self._rng),
        }

        # Cross-domain pools: target-domain edges of training overlap users,
        # with the user column re-expressed in source-domain indices so the
        # source-domain encoder output can be plugged into the score function.
        pairs = scenario.overlap_pairs
        map_y_to_x = {int(y): int(x) for x, y in pairs}
        map_x_to_y = {int(x): int(y) for x, y in pairs}

        cross_rows_y = [
            (map_y_to_x[int(u)], int(u), int(i))
            for u, i in dy.graph.edges if int(u) in map_y_to_x
        ]
        cross_rows_x = [
            (map_x_to_y[int(u)], int(u), int(i))
            for u, i in dx.graph.edges if int(u) in map_x_to_y
        ]
        pools["cross_x_to_y"] = _EdgePool(
            np.asarray(cross_rows_y, dtype=np.int64).reshape(-1, 3), sampler_y, self._rng
        )
        pools["cross_y_to_x"] = _EdgePool(
            np.asarray(cross_rows_x, dtype=np.int64).reshape(-1, 3), sampler_x, self._rng
        )
        return pools

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def steps_per_epoch(self) -> int:
        largest = max(len(pool) for pool in self._pools.values())
        return max(1, int(np.ceil(largest / self.config.batch_size)))

    def _build_batches(self) -> Dict[str, np.ndarray]:
        cfg = self.config
        batches: Dict[str, np.ndarray] = {}
        for name, pool in self._pools.items():
            batch = pool.sample_batch(cfg.batch_size, cfg.num_negatives)
            if batch is not None:
                batches[name] = batch
        pairs = self.scenario.overlap_pairs
        if pairs.shape[0]:
            size = min(cfg.batch_size, pairs.shape[0])
            picks = self._rng.choice(pairs.shape[0], size=size, replace=False)
            batches["overlap"] = pairs[picks]
        return batches

    def train_epoch(self) -> Tuple[float, Dict[str, float]]:
        """Run one epoch of mini-batch updates; returns (mean loss, mean terms)."""
        self.model.train()
        losses: List[float] = []
        term_sums: Dict[str, float] = {}
        for _ in range(self.steps_per_epoch()):
            batches = self._build_batches()
            self.optimizer.zero_grad()
            loss, diagnostics = self.model.training_loss(batches)
            loss.backward()
            clip_grad_norm(self.optimizer.parameters, max_norm=5.0)
            self.optimizer.step()
            losses.append(diagnostics["total"])
            for key, value in diagnostics.items():
                term_sums[key] = term_sums.get(key, 0.0) + value
        steps = max(1, len(losses))
        term_means = {key: value / steps for key, value in term_sums.items()}
        return float(np.mean(losses)), term_means

    def fit(self, epochs: Optional[int] = None, eval_every: int = 0,
            verbose: bool = False) -> TrainResult:
        """Train for ``epochs`` epochs (defaults to the config value).

        When ``eval_every`` > 0 and an evaluator is attached, validation MRR
        is computed every ``eval_every`` epochs and the best-scoring model
        state is restored at the end (paper-style model selection).
        """
        epochs = epochs if epochs is not None else self.config.epochs
        result = TrainResult()
        best_state = None
        for epoch in range(1, epochs + 1):
            loss, term_means = self.train_epoch()
            log = EpochLog(epoch=epoch, loss=loss, term_means=term_means)
            if eval_every and self.evaluator is not None and epoch % eval_every == 0:
                log.validation_mrr = self.validation_mrr()
                if (result.best_validation_mrr is None
                        or log.validation_mrr > result.best_validation_mrr):
                    result.best_validation_mrr = log.validation_mrr
                    result.best_epoch = epoch
                    best_state = self.model.state_dict()
            result.history.append(log)
            if verbose:
                extra = (f", val MRR {log.validation_mrr:.4f}"
                         if log.validation_mrr is not None else "")
                print(f"[CDRIB] epoch {epoch:3d} loss {loss:.4f}{extra}")
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.refresh_eval_cache()
        return result

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validation_mrr(self) -> float:
        """Mean validation MRR over both transfer directions."""
        if self.evaluator is None:
            raise ValueError("no evaluator attached to the trainer")
        self.model.refresh_eval_cache()
        scores = []
        for split in self.scenario.directions:
            scorer = self.make_scorer(split.source, split.target)
            result = self.evaluator.evaluate_direction(
                scorer, split.source, split.target, split_name="validation"
            )
            scores.append(result.metrics.mrr)
        return float(np.mean(scores)) if scores else 0.0

    def make_scorer(self, source: str, target: str):
        """Return the pairwise scorer callable for a transfer direction."""
        def scorer(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return self.model.cold_start_scores(source, target, users, items)

        return scorer
