"""Training loop for CDRIB and its ablation variants.

The trainer prepares four edge pools per scenario —

* in-domain edges of domain X and Y (for Eq. 8's reconstruction terms),
* cross-domain edges: target-domain interactions of *training* overlapping
  users, with the user column mapped to their source-domain index (for
  Eq. 7's reconstruction terms),

— plus the overlapping-user index pairs feeding the contrastive regularizer,
then runs mini-batch Adam updates on the joint objective (Eq. 16).
Validation MRR (averaged over both transfer directions) is optionally used
for early model selection, mirroring the paper's selection by best
validation MRR.
"""

from __future__ import annotations

import copy
import os

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.sampling import NegativeSampler
from ..data.scenario import CDRScenario
from ..eval import LeaveOneOutEvaluator
from ..io import CheckpointError, load_checkpoint, save_checkpoint
from ..optim import Adam, clip_grad_norm
from .cdrib import CDRIB, CDRIBConfig


@dataclass
class EpochLog:
    """Diagnostics of one training epoch."""

    epoch: int
    loss: float
    term_means: Dict[str, float]
    validation_mrr: Optional[float] = None


@dataclass
class TrainResult:
    """Outcome of a training run."""

    history: List[EpochLog] = field(default_factory=list)
    best_validation_mrr: Optional[float] = None
    best_epoch: Optional[int] = None

    @property
    def final_loss(self) -> float:
        return self.history[-1].loss if self.history else float("nan")


class _EdgePool:
    """A pool of (user, target_user, item) rows with per-step batch sampling.

    ``vectorized`` selects the negative pool's draw strategy: the fast
    engines presample with the sampler's stream-exact block draw, the
    reference engine keeps the seed per-user loop (identical negatives either
    way — the flag exists so benchmarks compare true seed behaviour).
    """

    def __init__(self, rows: np.ndarray, sampler: NegativeSampler,
                 rng: np.random.Generator, vectorized: bool = True):
        self.rows = rows
        self.sampler = sampler
        self.rng = rng
        self.vectorized = vectorized

    def __len__(self) -> int:
        return int(self.rows.shape[0])

    def pick_rows(self, batch_size: int
                  ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Draw one batch of pool rows (trainer RNG only, no negatives yet)."""
        if len(self) == 0:
            return None
        size = min(batch_size, len(self))
        picks = self.rng.choice(len(self), size=size, replace=False)
        batch = self.rows[picks]
        return batch[:, 0], batch[:, 1], batch[:, 2]

    def sample_batch(self, batch_size: int, num_negatives: int
                     ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        picked = self.pick_rows(batch_size)
        if picked is None:
            return None
        users, target_users, items = picked
        negatives = self.sampler.sample_batch(target_users, num_negatives,
                                              vectorized=self.vectorized)
        return users, items, negatives


class CDRIBTrainer:
    """Fits a :class:`CDRIB` model on a :class:`CDRScenario`.

    Parameters
    ----------
    engine:
        ``"fused"`` (default) — fused propagation/loss kernels, a vectorized
        flat-buffer Adam with in-step gradient clipping, and epoch-level
        presampling of every step's edge picks and negative pools.
        ``"subgraph"`` — everything in ``"fused"`` plus mini-batch subgraph
        materialisation: the latent samples and reconstruction buffers of a
        step are restricted to the users/items its batches touch.
        ``"reference"`` — the seed op-by-op implementation, kept as the
        faithfulness baseline: all three engines consume identical RNG
        streams and produce per-step losses equal to ~1e-12 (pinned by the
        golden-trajectory tests) and throughput is benchmarked against this
        path in ``benchmarks/test_training_throughput.py``.
    """

    ENGINES = ("fused", "subgraph", "reference")

    def __init__(self, model: CDRIB, scenario: Optional[CDRScenario] = None,
                 evaluator: Optional[LeaveOneOutEvaluator] = None,
                 engine: str = "fused"):
        if engine not in self.ENGINES:
            raise ValueError(f"unknown engine {engine!r}; choose from {self.ENGINES}")
        self.model = model
        self.scenario = scenario if scenario is not None else model.scenario
        self.config: CDRIBConfig = model.config
        self.evaluator = evaluator
        self.engine = engine
        self.max_grad_norm = 5.0
        self._rng = np.random.default_rng(self.config.seed + 1)
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate,
                              weight_decay=self.config.weight_decay,
                              fused=engine != "reference")
        self._pools = self._build_pools()
        self._pending_batches: List[Dict[str, np.ndarray]] = []
        # Batch-RNG snapshot taken right before the current epoch was
        # presampled, plus how many of its steps were consumed — together
        # they make mid-epoch checkpoints exact (see save_checkpoint).
        self._batch_rng_snapshot: Optional[Dict[str, dict]] = None
        self._steps_into_epoch = 0
        self._global_step = 0
        self._epochs_done = 0
        # False once fit() rolls the model back to its best-validation state:
        # from then on the model no longer matches the optimizer moments and
        # RNG streams, so checkpoints become publish-only (serve, not resume).
        self._trajectory_intact = True
        # Optional provenance recorded into checkpoint manifests (scenario /
        # profile names), set by the experiment runners.
        self.provenance: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------ #
    # Data preparation
    # ------------------------------------------------------------------ #
    def _build_pools(self) -> Dict[str, _EdgePool]:
        scenario = self.scenario
        vectorized = self.engine != "reference"
        dx, dy = scenario.domain_x, scenario.domain_y
        sampler_x = NegativeSampler(dx.graph, seed=self.config.seed + 11)
        sampler_y = NegativeSampler(dy.graph, seed=self.config.seed + 13)

        def in_domain_rows(graph) -> np.ndarray:
            edges = graph.edges
            # Columns: (user used for representation, user used for negative
            # sampling, item); in-domain both user columns coincide.
            return np.column_stack([edges[:, 0], edges[:, 0], edges[:, 1]])

        pools = {
            "in_x": _EdgePool(in_domain_rows(dx.graph), sampler_x, self._rng,
                              vectorized=vectorized),
            "in_y": _EdgePool(in_domain_rows(dy.graph), sampler_y, self._rng,
                              vectorized=vectorized),
        }

        # Cross-domain pools: target-domain edges of training overlap users,
        # with the user column re-expressed in source-domain indices so the
        # source-domain encoder output can be plugged into the score function.
        pairs = scenario.overlap_pairs
        map_y_to_x = {int(y): int(x) for x, y in pairs}
        map_x_to_y = {int(x): int(y) for x, y in pairs}

        cross_rows_y = [
            (map_y_to_x[int(u)], int(u), int(i))
            for u, i in dy.graph.edges if int(u) in map_y_to_x
        ]
        cross_rows_x = [
            (map_x_to_y[int(u)], int(u), int(i))
            for u, i in dx.graph.edges if int(u) in map_x_to_y
        ]
        pools["cross_x_to_y"] = _EdgePool(
            np.asarray(cross_rows_y, dtype=np.int64).reshape(-1, 3), sampler_y,
            self._rng, vectorized=vectorized,
        )
        pools["cross_y_to_x"] = _EdgePool(
            np.asarray(cross_rows_x, dtype=np.int64).reshape(-1, 3), sampler_x,
            self._rng, vectorized=vectorized,
        )
        return pools

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def steps_per_epoch(self) -> int:
        largest = max(len(pool) for pool in self._pools.values())
        return max(1, int(np.ceil(largest / self.config.batch_size)))

    def _build_batches(self) -> Dict[str, np.ndarray]:
        cfg = self.config
        batches: Dict[str, np.ndarray] = {}
        for name, pool in self._pools.items():
            batch = pool.sample_batch(cfg.batch_size, cfg.num_negatives)
            if batch is not None:
                batches[name] = batch
        pairs = self.scenario.overlap_pairs
        if pairs.shape[0]:
            size = min(cfg.batch_size, pairs.shape[0])
            picks = self._rng.choice(pairs.shape[0], size=size, replace=False)
            batches["overlap"] = pairs[picks]
        return batches

    def _presample_epoch(self, steps: int) -> List[Dict[str, np.ndarray]]:
        """Draw every step's edge picks and negative pools for one epoch.

        Trainer-RNG draws (pool picks, overlap picks) happen step-major in
        the reference per-step order; each negative sampler then serves *all*
        of its pool batches of the epoch in one chained block draw — valid
        because the trainer and the two samplers are independent generators,
        and within each sampler's own stream the epoch's batches are
        consecutive.  Batches are identical to the reference engine's lazy
        per-step :meth:`_build_batches` draws.
        """
        cfg = self.config
        picked_steps = []
        overlaps = []
        pairs = self.scenario.overlap_pairs
        for _ in range(steps):
            picked_steps.append({name: pool.pick_rows(cfg.batch_size)
                                 for name, pool in self._pools.items()})
            overlap = None
            if pairs.shape[0]:
                size = min(cfg.batch_size, pairs.shape[0])
                picks = self._rng.choice(pairs.shape[0], size=size, replace=False)
                overlap = pairs[picks]
            overlaps.append(overlap)

        batches_steps: List[Dict[str, np.ndarray]] = [{} for _ in range(steps)]
        # Pool pairs per sampler; groups chained step-major, matching the
        # reference order of that sampler's draws.
        for keys in (("in_x", "cross_y_to_x"), ("in_y", "cross_x_to_y")):
            groups = []
            slots = []
            for step, picked in enumerate(picked_steps):
                for key in keys:
                    if picked[key] is not None:
                        groups.append(picked[key][1])
                        slots.append((step, key))
            if not groups:
                continue
            sampler = self._pools[keys[0]].sampler
            negatives = sampler.sample_batch_chained(groups, cfg.num_negatives)
            for (step, key), negs in zip(slots, negatives):
                users, _, items = picked_steps[step][key]
                batches_steps[step][key] = (users, items, negs)
        for step, overlap in enumerate(overlaps):
            if overlap is not None:
                batches_steps[step]["overlap"] = overlap
        return batches_steps

    def _next_batch(self) -> Dict[str, np.ndarray]:
        """Return the next step's batches.

        The fast engines presample a whole epoch at a time; leftovers survive
        in ``_pending_batches`` across :meth:`run_steps` / :meth:`train_epoch`
        calls so the number of *consumed* step draws — and therefore the RNG
        stream — always equals the reference engine's lazy per-step draws.
        """
        if self.engine == "reference":
            return self._build_batches()
        if not self._pending_batches:
            self._batch_rng_snapshot = self._batch_rng_states()
            self._pending_batches = self._presample_epoch(self.steps_per_epoch())
            self._steps_into_epoch = 0
        self._steps_into_epoch += 1
        return self._pending_batches.pop(0)

    def _apply_step(self, batches: Dict[str, np.ndarray]) -> Dict[str, float]:
        """One optimisation step on prepared batches; returns diagnostics."""
        self.optimizer.zero_grad()
        if self.engine == "reference":
            loss, diagnostics = self.model.training_loss(batches, fused=False)
            loss.backward()
            clip_grad_norm(self.optimizer.parameters, max_norm=self.max_grad_norm)
            self.optimizer.step()
        else:
            loss, diagnostics = self.model.training_loss(
                batches, fused=True, subgraph=self.engine == "subgraph"
            )
            loss.backward()
            self.optimizer.step(max_grad_norm=self.max_grad_norm)
        self._global_step += 1
        return diagnostics

    def train_epoch(self) -> Tuple[float, Dict[str, float]]:
        """Run one epoch of mini-batch updates; returns (mean loss, mean terms)."""
        self.model.train()
        losses: List[float] = []
        term_sums: Dict[str, float] = {}
        for _ in range(self.steps_per_epoch()):
            diagnostics = self._apply_step(self._next_batch())
            losses.append(diagnostics["total"])
            for key, value in diagnostics.items():
                term_sums[key] = term_sums.get(key, 0.0) + value
        steps = max(1, len(losses))
        term_means = {key: value / steps for key, value in term_sums.items()}
        self._epochs_done += 1
        return float(np.mean(losses)), term_means

    def run_steps(self, num_steps: int) -> List[float]:
        """Run exactly ``num_steps`` optimisation steps; returns per-step losses.

        Batches are drawn with the same epoch structure (and therefore the
        same RNG streams) as :meth:`fit`, so the returned loss sequence is
        the prefix of a normal training run — the contract the
        golden-trajectory tests and the throughput benchmark rely on.
        """
        self.model.train()
        losses: List[float] = []
        for _ in range(num_steps):
            diagnostics = self._apply_step(self._next_batch())
            losses.append(diagnostics["total"])
        return losses

    def fit(self, epochs: Optional[int] = None, eval_every: int = 0,
            verbose: bool = False, checkpoint_dir: Optional[str] = None,
            checkpoint_every: int = 1,
            resume_from: Optional[str] = None) -> TrainResult:
        """Train for ``epochs`` epochs (defaults to the config value).

        When ``eval_every`` > 0 and an evaluator is attached, validation MRR
        is computed every ``eval_every`` epochs and the best-scoring model
        state is restored at the end (paper-style model selection).

        ``resume_from`` restores a checkpoint (model, optimizer, every RNG
        stream) before training, making the run a *bit-exact* continuation
        of the saved one; epoch numbering continues from the checkpoint.
        With ``checkpoint_dir`` set, the trainer saves ``<dir>/last`` every
        ``checkpoint_every`` epochs and ``<dir>/best`` whenever validation
        MRR improves, so a crash loses at most ``checkpoint_every`` epochs
        and the best model survives the end-of-fit state restore.
        """
        if resume_from is not None:
            self.restore_checkpoint(resume_from)
        epochs = epochs if epochs is not None else self.config.epochs
        result = TrainResult()
        best_state = None
        start = self._epochs_done
        for epoch in range(start + 1, start + epochs + 1):
            loss, term_means = self.train_epoch()
            log = EpochLog(epoch=epoch, loss=loss, term_means=term_means)
            if eval_every and self.evaluator is not None and epoch % eval_every == 0:
                log.validation_mrr = self.validation_mrr()
                if (result.best_validation_mrr is None
                        or log.validation_mrr > result.best_validation_mrr):
                    result.best_validation_mrr = log.validation_mrr
                    result.best_epoch = epoch
                    best_state = self.model.state_dict()
                    if checkpoint_dir is not None:
                        self.save_checkpoint(os.path.join(checkpoint_dir, "best"),
                                             metrics=self._fit_metrics(log, result))
            result.history.append(log)
            if checkpoint_dir is not None and (epoch - start) % max(1, checkpoint_every) == 0:
                self.save_checkpoint(os.path.join(checkpoint_dir, "last"),
                                     metrics=self._fit_metrics(log, result))
            if verbose:
                extra = (f", val MRR {log.validation_mrr:.4f}"
                         if log.validation_mrr is not None else "")
                print(f"[CDRIB] epoch {epoch:3d} loss {loss:.4f}{extra}")
        if best_state is not None:
            self.model.load_state_dict(best_state)
            self._trajectory_intact = False
        self.model.refresh_eval_cache()
        return result

    @staticmethod
    def _fit_metrics(log: EpochLog, result: TrainResult) -> Dict[str, object]:
        return {
            "epoch": log.epoch,
            "loss": log.loss,
            "validation_mrr": log.validation_mrr,
            "best_validation_mrr": result.best_validation_mrr,
            "best_epoch": result.best_epoch,
        }

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.io)
    # ------------------------------------------------------------------ #
    CHECKPOINT_KIND = "cdrib-trainer"

    def _batch_rng_states(self) -> Dict[str, dict]:
        """Current states of the three batch-drawing generators.

        ``sampler_x`` is shared by the ``in_x`` / ``cross_y_to_x`` pools and
        ``sampler_y`` by the other two, so these three streams (plus the
        model's own generator) fully determine every future batch.
        """
        return {
            "trainer": copy.deepcopy(self._rng.bit_generator.state),
            "sampler_x": self._pools["in_x"].sampler.get_state(),
            "sampler_y": self._pools["in_y"].sampler.get_state(),
        }

    def _restore_batch_rng_states(self, states: Dict[str, dict]) -> None:
        self._rng.bit_generator.state = copy.deepcopy(states["trainer"])
        self._pools["in_x"].sampler.set_state(states["sampler_x"])
        self._pools["in_y"].sampler.set_state(states["sampler_y"])

    def _domain_manifest(self) -> Dict[str, Dict[str, object]]:
        out = {}
        for slot, domain in (("x", self.scenario.domain_x),
                             ("y", self.scenario.domain_y)):
            out[slot] = {"name": domain.name,
                         "num_users": int(domain.num_users),
                         "num_items": int(domain.num_items)}
        return out

    def save_checkpoint(self, path: str,
                        metrics: Optional[Dict[str, object]] = None,
                        provenance: Optional[Dict[str, str]] = None) -> str:
        """Write a resumable checkpoint directory (payload.npz + manifest).

        The payload holds the model parameters, the Adam moments and step
        count, the trainer's step/epoch counters and the bit-generator
        states of every RNG stream involved in training (model noise /
        dropout, trainer picks, both negative samplers).  The fast engines
        presample whole epochs, so a *mid-epoch* save records the batch-RNG
        states as of the epoch's start plus the number of steps already
        consumed; :meth:`restore_checkpoint` replays those steps, leaving
        every stream exactly where an uninterrupted run would have it.
        Resume is therefore bit-exact for all engines, at any step.
        """
        params = list(self.model.named_parameters())
        arrays: Dict[str, np.ndarray] = {
            f"model/{name}": param.data.copy() for name, param in params
        }
        optim_state = self.optimizer.state_dict()
        arrays["optim/step"] = np.int64(optim_state["step_count"])
        for (name, _), m, v in zip(params, optim_state["m"], optim_state["v"]):
            arrays[f"optim/m/{name}"] = m
            arrays[f"optim/v/{name}"] = v

        if self._pending_batches:
            batch_states = self._batch_rng_snapshot
            consumed = self._steps_into_epoch
        else:
            batch_states = self._batch_rng_states()
            consumed = 0
        arrays["trainer/global_step"] = np.int64(self._global_step)
        arrays["trainer/epochs_done"] = np.int64(self._epochs_done)
        arrays["trainer/steps_into_epoch"] = np.int64(consumed)

        rng_states = dict(batch_states)
        rng_states["model"] = copy.deepcopy(self.model._rng.bit_generator.state)

        manifest: Dict[str, object] = {
            "model": {"class": type(self.model).__name__,
                      "config": asdict(self.config)},
            "domains": self._domain_manifest(),
            "engine": self.engine,
            "metrics": metrics or {},
            # After fit()'s best-model rollback the saved parameters no
            # longer match the optimizer/RNG trajectory: such artifacts
            # still serve, but restore_checkpoint refuses to resume them.
            "resumable": self._trajectory_intact,
        }
        provenance = provenance if provenance is not None else self.provenance
        if provenance:
            manifest["provenance"] = dict(provenance)
        return save_checkpoint(path, arrays, manifest=manifest,
                               rng_states=rng_states, kind=self.CHECKPOINT_KIND)

    def restore_checkpoint(self, path: str) -> "CDRIBTrainer":
        """Restore a checkpoint written by :meth:`save_checkpoint`.

        The trainer must already be built on the *same scenario and config*
        (domain shapes are validated against the manifest; parameter shapes
        against the payload).  Any engine can restore any checkpoint: the
        engines draw identical batch streams, so the replay of a mid-epoch
        save positions the generators correctly on every path.
        """
        checkpoint = load_checkpoint(path, expect_kind=self.CHECKPOINT_KIND)
        if not checkpoint.manifest.get("resumable", True):
            raise CheckpointError(
                f"checkpoint {path!r} is publish-only: it was saved after a "
                f"best-model rollback, so its parameters do not match its "
                f"optimizer/RNG trajectory.  Serve it, or resume from a "
                f"'last' checkpoint written during fit()"
            )
        recorded = checkpoint.manifest.get("domains", {})
        current = self._domain_manifest()
        if recorded != current:
            raise CheckpointError(
                f"checkpoint {path!r} was trained on domains {recorded}, "
                f"this trainer's scenario has {current}"
            )
        recorded_config = checkpoint.manifest.get("model", {}).get("config")
        if recorded_config is not None:
            current_config = asdict(self.config)
            if recorded_config != current_config:
                differing = sorted(
                    key for key in set(recorded_config) | set(current_config)
                    if recorded_config.get(key) != current_config.get(key)
                )
                raise CheckpointError(
                    f"checkpoint {path!r} was trained with a different config "
                    f"(fields {differing}); bit-exact resume requires the "
                    f"identical configuration (train longer via fit(epochs=...))"
                )

        self.model.load_state_dict(checkpoint.namespace("model"))
        params = list(self.model.named_parameters())
        moments_m = checkpoint.namespace("optim/m")
        moments_v = checkpoint.namespace("optim/v")
        missing = [name for name, _ in params
                   if name not in moments_m or name not in moments_v]
        if missing:
            raise CheckpointError(
                f"checkpoint {path!r} lacks optimizer moments for {missing}"
            )
        self.optimizer.load_state_dict({
            "num_parameters": len(params),
            "step_count": checkpoint.scalar("optim/step"),
            "m": [moments_m[name] for name, _ in params],
            "v": [moments_v[name] for name, _ in params],
        })

        states = checkpoint.rng_states
        self.model._rng.bit_generator.state = copy.deepcopy(states["model"])
        self._restore_batch_rng_states(states)
        self.model.refresh_eval_cache()

        self._pending_batches = []
        self._batch_rng_snapshot = None
        self._steps_into_epoch = 0
        self._global_step = checkpoint.scalar("trainer/global_step", 0)
        self._epochs_done = checkpoint.scalar("trainer/epochs_done", 0)
        consumed = checkpoint.scalar("trainer/steps_into_epoch", 0)
        if consumed >= self.steps_per_epoch() and consumed > 0:
            raise CheckpointError(
                f"checkpoint {path!r} consumed {consumed} steps of a "
                f"{self.steps_per_epoch()}-step epoch; scenario mismatch?"
            )
        # Fast-forward the already-consumed prefix of the saved epoch through
        # this engine's own batch path: the fast engines re-presample from the
        # restored pre-epoch states and drop the prefix, the reference engine
        # replays the lazy per-step draws.  Either way every generator ends up
        # exactly where the uninterrupted run left it.
        for _ in range(consumed):
            self._next_batch()
        self._trajectory_intact = True  # full state restored -> consistent again
        return self

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validation_mrr(self) -> float:
        """Mean validation MRR over both transfer directions."""
        if self.evaluator is None:
            raise ValueError("no evaluator attached to the trainer")
        self.model.refresh_eval_cache()
        scores = []
        for split in self.scenario.directions:
            scorer = self.make_scorer(split.source, split.target)
            result = self.evaluator.evaluate_direction(
                scorer, split.source, split.target, split_name="validation"
            )
            scores.append(result.metrics.mrr)
        return float(np.mean(scores)) if scores else 0.0

    def make_scorer(self, source: str, target: str):
        """Return the pairwise scorer callable for a transfer direction."""
        def scorer(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return self.model.cold_start_scores(source, target, users, items)

        return scorer
