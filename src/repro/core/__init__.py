"""CDRIB: the paper's primary contribution."""

from .cdrib import CDRIB, CDRIBConfig, DomainLatents
from .regularizers import (
    ContrastiveDiscriminator,
    contrastive_term,
    interaction_score,
    minimality_term,
    reconstruction_term,
)
from .trainer import CDRIBTrainer, EpochLog, TrainResult
from .variants import ABLATION_VARIANTS, make_ablation_config
from .vbge import VBGE, GaussianLatent, PropagationBlock

__all__ = [
    "CDRIB",
    "CDRIBConfig",
    "DomainLatents",
    "CDRIBTrainer",
    "TrainResult",
    "EpochLog",
    "VBGE",
    "GaussianLatent",
    "PropagationBlock",
    "ContrastiveDiscriminator",
    "minimality_term",
    "reconstruction_term",
    "contrastive_term",
    "interaction_score",
    "ABLATION_VARIANTS",
    "make_ablation_config",
]
