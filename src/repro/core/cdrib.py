"""The CDRIB model (Section III, Fig. 2).

CDRIB learns user/item representations of *both* domains jointly:

* an embedding layer provides initial representations per domain
  (Section III-A),
* one :class:`~repro.core.vbge.VBGE` per domain turns the bipartite
  interaction graph into Gaussian latent variables (Section III-B),
* the in-domain and cross-domain information bottleneck regularizers plus
  the contrastive information regularizer couple the two domains
  (Section III-C), optimised through their tractable bounds
  (Section III-D, Eq. 16).

At inference time a cold-start user observed only in the source domain is
encoded by the source-domain VBGE and scored directly against target-domain
item representations — no mapping function is needed, which is the core
departure from the EMCDR paradigm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad, ops
from ..data.scenario import CDRScenario
from ..nn import Embedding, Module
from .regularizers import (
    ContrastiveDiscriminator,
    contrastive_term,
    interaction_score,
    minimality_term,
    reconstruction_term,
)
from .vbge import VBGE, GaussianLatent


@dataclass
class CDRIBConfig:
    """Hyperparameters of CDRIB (defaults follow Section IV-B3 at small scale)."""

    embedding_dim: int = 64
    num_layers: int = 2
    dropout: float = 0.1
    beta1: float = 1.0
    beta2: float = 1.0
    learning_rate: float = 0.02
    weight_decay: float = 1e-4
    batch_size: int = 256
    num_negatives: int = 4
    epochs: int = 60
    negative_slope: float = 0.1
    contrastive_weight: float = 0.2
    seed: int = 0
    # Ablation switches (Table VII and the design-choice ablations).
    use_in_domain_ib: bool = True
    use_contrastive: bool = True
    use_cross_domain_ib: bool = True
    deterministic_encoder: bool = False
    use_discriminator: bool = True

    def variant(self, **overrides) -> "CDRIBConfig":
        """Return a copy with some fields replaced (ablation helper)."""
        params = {**self.__dict__, **overrides}
        return CDRIBConfig(**params)


@dataclass
class DomainLatents:
    """Latent variables of every user and item of one domain."""

    users: GaussianLatent
    items: GaussianLatent


class CDRIB(Module):
    """Cross-Domain Recommendation via variational Information Bottleneck."""

    def __init__(self, scenario: CDRScenario, config: Optional[CDRIBConfig] = None):
        super().__init__()
        self.config = config if config is not None else CDRIBConfig()
        self.scenario = scenario
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)

        dx, dy = scenario.domain_x, scenario.domain_y
        self.user_embedding_x = Embedding(dx.num_users, cfg.embedding_dim, rng=self._rng)
        self.item_embedding_x = Embedding(dx.num_items, cfg.embedding_dim, rng=self._rng)
        self.user_embedding_y = Embedding(dy.num_users, cfg.embedding_dim, rng=self._rng)
        self.item_embedding_y = Embedding(dy.num_items, cfg.embedding_dim, rng=self._rng)

        self.vbge_x = VBGE(cfg.embedding_dim, cfg.num_layers, cfg.dropout,
                           cfg.negative_slope, cfg.deterministic_encoder, rng=self._rng)
        self.vbge_y = VBGE(cfg.embedding_dim, cfg.num_layers, cfg.dropout,
                           cfg.negative_slope, cfg.deterministic_encoder, rng=self._rng)

        if cfg.use_contrastive and cfg.use_discriminator:
            self.discriminator = ContrastiveDiscriminator(cfg.embedding_dim, rng=self._rng)
        else:
            self.discriminator = None

        self._eval_cache: Optional[Dict[str, DomainLatents]] = None

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode_domains(self) -> Dict[str, DomainLatents]:
        """Run both VBGEs over the full training graphs."""
        users_x, items_x = self.vbge_x.encode(
            self.user_embedding_x.all(), self.item_embedding_x.all(),
            self.scenario.domain_x.graph,
        )
        users_y, items_y = self.vbge_y.encode(
            self.user_embedding_y.all(), self.item_embedding_y.all(),
            self.scenario.domain_y.graph,
        )
        return {
            self.scenario.domain_x.name: DomainLatents(users_x, items_x),
            self.scenario.domain_y.name: DomainLatents(users_y, items_y),
        }

    def forward(self) -> Dict[str, DomainLatents]:
        return self.encode_domains()

    # ------------------------------------------------------------------ #
    # Training loss (Eq. 16)
    # ------------------------------------------------------------------ #
    def training_loss(self, batches: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]]
                      ) -> Tuple[Tensor, Dict[str, float]]:
        """Compute the full CDRIB objective on one step's mini-batches.

        Parameters
        ----------
        batches:
            Dictionary with optional keys ``"in_x"``, ``"in_y"`` (in-domain
            edges of each domain), ``"cross_x_to_y"`` (edges in Y whose user
            is an overlapping user, with the user column already mapped to
            domain-X indices), ``"cross_y_to_x"`` (symmetric) — each a tuple
            ``(users, pos_items, neg_items)`` — and ``"overlap"`` with the
            (idx_x, idx_y) pairs used for the contrastive regularizer.

        Returns
        -------
        (total loss tensor, per-term float diagnostics)
        """
        cfg = self.config
        latents = self.encode_domains()
        name_x = self.scenario.domain_x.name
        name_y = self.scenario.domain_y.name
        lx, ly = latents[name_x], latents[name_y]

        terms: Dict[str, Tensor] = {}

        # --- Minimality (Eq. 11): KL of every posterior against N(0, I). ---
        # The KL is normalised per latent dimension so that the Lagrangian
        # multipliers beta explore the same {0.5 ... 2.0} range as the paper
        # regardless of the embedding size used in an experiment.
        kl_scale = 1.0 / cfg.embedding_dim
        kl_x = ops.add(minimality_term(lx.users.mu, lx.users.sigma),
                       minimality_term(lx.items.mu, lx.items.sigma))
        kl_y = ops.add(minimality_term(ly.users.mu, ly.users.sigma),
                       minimality_term(ly.items.mu, ly.items.sigma))
        terms["minimality"] = ops.mul(
            ops.add(ops.mul(kl_x, cfg.beta1), ops.mul(kl_y, cfg.beta2)), kl_scale
        )

        # --- In-domain reconstruction (Eq. 8). ---
        if cfg.use_in_domain_ib:
            if "in_x" in batches:
                users, pos, neg = batches["in_x"]
                terms["in_domain_x"] = reconstruction_term(
                    lx.users.z[users], lx.items.z[pos], lx.items.z[neg.reshape(-1)]
                )
            if "in_y" in batches:
                users, pos, neg = batches["in_y"]
                terms["in_domain_y"] = reconstruction_term(
                    ly.users.z[users], ly.items.z[pos], ly.items.z[neg.reshape(-1)]
                )

        # --- Cross-domain reconstruction (Eq. 7). ---
        if cfg.use_cross_domain_ib:
            if "cross_x_to_y" in batches:
                users_x_idx, pos, neg = batches["cross_x_to_y"]
                terms["cross_o2y"] = reconstruction_term(
                    lx.users.z[users_x_idx], ly.items.z[pos], ly.items.z[neg.reshape(-1)]
                )
            if "cross_y_to_x" in batches:
                users_y_idx, pos, neg = batches["cross_y_to_x"]
                terms["cross_o2x"] = reconstruction_term(
                    ly.users.z[users_y_idx], lx.items.z[pos], lx.items.z[neg.reshape(-1)]
                )

        # --- Contrastive information regularizer (Eq. 14). ---
        # The term is down-weighted by ``contrastive_weight``: at the small
        # scales used here the discriminator otherwise dominates the
        # overlapping users' gradients and drags the cold-start ranking down
        # (the paper's GPU-scale setting is less sensitive to this).
        if cfg.use_contrastive and "overlap" in batches:
            pairs = batches["overlap"]
            if pairs.shape[0] >= 2:
                overlap_x = lx.users.z[pairs[:, 0]]
                overlap_y = ly.users.z[pairs[:, 1]]
                if self.discriminator is not None:
                    contrast = contrastive_term(
                        self.discriminator, overlap_x, overlap_y, self._rng
                    )
                else:
                    contrast = self._inner_product_contrast(overlap_x, overlap_y)
                terms["contrastive"] = ops.mul(contrast, cfg.contrastive_weight)

        total: Optional[Tensor] = None
        for value in terms.values():
            total = value if total is None else ops.add(total, value)
        if total is None:
            raise ValueError("training_loss received no batches")
        diagnostics = {key: float(value.data) for key, value in terms.items()}
        diagnostics["total"] = float(total.data)
        return total, diagnostics

    def _inner_product_contrast(self, overlap_x: Tensor, overlap_y: Tensor) -> Tensor:
        """Discriminator-free contrastive variant (ablation): dot-product InfoNCE-style BCE."""
        count = overlap_x.shape[0]
        permutation = self._rng.permutation(count)
        pos_logits = interaction_score(overlap_x, overlap_y)
        neg_logits = interaction_score(overlap_x, overlap_y[permutation])
        pos_loss = ops.binary_cross_entropy_with_logits(pos_logits, np.ones(count))
        neg_loss = ops.binary_cross_entropy_with_logits(neg_logits, np.zeros(count))
        return ops.add(pos_loss, neg_loss)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _domain_parts(self, domain: str):
        """Return (vbge, user_embedding, item_embedding, graph) for a domain."""
        if domain == self.scenario.domain_x.name:
            return (self.vbge_x, self.user_embedding_x, self.item_embedding_x,
                    self.scenario.domain_x.graph)
        if domain == self.scenario.domain_y.name:
            return (self.vbge_y, self.user_embedding_y, self.item_embedding_y,
                    self.scenario.domain_y.graph)
        raise KeyError(f"unknown domain {domain!r}")

    @no_grad()
    def encode_users_batch(self, domain: str,
                           user_indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Posterior-mean latents for a batch of users of one domain.

        This is the serving entry point: one vectorized no-grad VBGE pass per
        call, independent of the training state (dropout and sampling are
        bypassed exactly as in eval mode).  The computation runs on raw numpy
        arrays; the ``no_grad`` guard additionally ensures nothing under this
        call can record an autograd graph.  Returns an array of shape
        (batch, dim) aligned with ``user_indices`` (or all users when None).
        """
        vbge, user_emb, _, graph = self._domain_parts(domain)
        mu, _ = vbge.encode_users_batch(user_emb.weight.data, graph, user_indices)
        return mu

    @no_grad()
    def encode_items(self, domain: str) -> np.ndarray:
        """Posterior-mean latents of every item of one domain.

        Computed once per checkpoint by the serving :class:`~repro.serve.ItemIndex`;
        shape (num_items, dim).
        """
        vbge, _, item_emb, graph = self._domain_parts(domain)
        mu, _ = vbge.encode_items(item_emb.weight.data, graph)
        return mu

    def refresh_eval_cache(self) -> None:
        """Recompute the deterministic latent variables used for scoring."""
        was_training = self.training
        self.eval()
        with no_grad():
            self._eval_cache = self.encode_domains()
        if was_training:
            self.train()

    def cold_start_scores(self, source: str, target: str,
                          source_users: np.ndarray, target_items: np.ndarray) -> np.ndarray:
        """Score (source-domain user, target-domain item) pairs.

        Both index arrays must have equal length; the returned array contains
        the inner-product scores used for ranking (monotone in the sigmoid
        probability, so the ranking metrics are unaffected by skipping the
        sigmoid).
        """
        if self._eval_cache is None:
            self.refresh_eval_cache()
        source_latents = self._eval_cache[source]
        target_latents = self._eval_cache[target]
        user_repr = source_latents.users.deterministic().data[np.asarray(source_users)]
        item_repr = target_latents.items.deterministic().data[np.asarray(target_items)]
        return np.sum(user_repr * item_repr, axis=-1)

    def in_domain_scores(self, domain: str, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score (user, item) pairs inside a single domain (used by diagnostics)."""
        return self.cold_start_scores(domain, domain, users, items)
