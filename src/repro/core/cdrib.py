"""The CDRIB model (Section III, Fig. 2).

CDRIB learns user/item representations of *both* domains jointly:

* an embedding layer provides initial representations per domain
  (Section III-A),
* one :class:`~repro.core.vbge.VBGE` per domain turns the bipartite
  interaction graph into Gaussian latent variables (Section III-B),
* the in-domain and cross-domain information bottleneck regularizers plus
  the contrastive information regularizer couple the two domains
  (Section III-C), optimised through their tractable bounds
  (Section III-D, Eq. 16).

At inference time a cold-start user observed only in the source domain is
encoded by the source-domain VBGE and scored directly against target-domain
item representations — no mapping function is needed, which is the core
departure from the EMCDR paradigm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad, ops
from ..data.scenario import CDRScenario
from ..nn import Embedding, Module
from .regularizers import (
    ContrastiveDiscriminator,
    contrastive_term,
    fused_contrastive_term,
    fused_minimality_total,
    fused_reconstruction_group,
    interaction_score,
    minimality_term,
    reconstruction_term,
)
from .vbge import VBGE, GaussianLatent


@dataclass
class CDRIBConfig:
    """Hyperparameters of CDRIB (defaults follow Section IV-B3 at small scale)."""

    embedding_dim: int = 64
    num_layers: int = 2
    dropout: float = 0.1
    beta1: float = 1.0
    beta2: float = 1.0
    learning_rate: float = 0.02
    weight_decay: float = 1e-4
    batch_size: int = 256
    num_negatives: int = 4
    epochs: int = 60
    negative_slope: float = 0.1
    contrastive_weight: float = 0.2
    seed: int = 0
    # Ablation switches (Table VII and the design-choice ablations).
    use_in_domain_ib: bool = True
    use_contrastive: bool = True
    use_cross_domain_ib: bool = True
    deterministic_encoder: bool = False
    use_discriminator: bool = True

    def variant(self, **overrides) -> "CDRIBConfig":
        """Return a copy with some fields replaced (ablation helper)."""
        params = {**self.__dict__, **overrides}
        return CDRIBConfig(**params)


@dataclass
class DomainLatents:
    """Latent variables of every user and item of one domain."""

    users: GaussianLatent
    items: GaussianLatent


def _touched(index_arrays) -> Optional[np.ndarray]:
    """Sorted unique union of the given index arrays (None entries skipped)."""
    parts = [np.asarray(a).reshape(-1) for a in index_arrays if a is not None]
    if not parts:
        return None
    return np.unique(np.concatenate(parts))


def _local_indices(touched_rows: np.ndarray, index: np.ndarray) -> np.ndarray:
    """Map global node indices to positions within the sorted touched set."""
    return np.searchsorted(touched_rows, np.asarray(index))


def _sliced_z(latent: GaussianLatent, touched_rows: Optional[np.ndarray]
              ) -> Optional[Tensor]:
    """Materialise ``z`` for the touched rows only (subgraph training).

    Elementwise, ``(mu + sigma * noise)[rows] == mu[rows] + sigma[rows] *
    noise[rows]`` — so the sliced sample is bitwise-equal to slicing the full
    sample, while gradient buffers stay (touched, F)-sized.
    """
    if touched_rows is None or touched_rows.size == 0:
        return None
    if latent.z is not None:  # eval mode / deterministic encoder: z is mu
        return ops.gather_rows(latent.z, touched_rows)
    mu_rows = ops.gather_rows(latent.mu, touched_rows)
    sigma_rows = ops.gather_rows(latent.sigma, touched_rows)
    return ops.gaussian_reparameterize(
        mu_rows, sigma_rows, noise=latent.noise[touched_rows]
    )


class CDRIB(Module):
    """Cross-Domain Recommendation via variational Information Bottleneck."""

    def __init__(self, scenario: CDRScenario, config: Optional[CDRIBConfig] = None):
        super().__init__()
        self.config = config if config is not None else CDRIBConfig()
        self.scenario = scenario
        cfg = self.config
        self._rng = np.random.default_rng(cfg.seed)

        dx, dy = scenario.domain_x, scenario.domain_y
        self.user_embedding_x = Embedding(dx.num_users, cfg.embedding_dim, rng=self._rng)
        self.item_embedding_x = Embedding(dx.num_items, cfg.embedding_dim, rng=self._rng)
        self.user_embedding_y = Embedding(dy.num_users, cfg.embedding_dim, rng=self._rng)
        self.item_embedding_y = Embedding(dy.num_items, cfg.embedding_dim, rng=self._rng)

        self.vbge_x = VBGE(cfg.embedding_dim, cfg.num_layers, cfg.dropout,
                           cfg.negative_slope, cfg.deterministic_encoder, rng=self._rng)
        self.vbge_y = VBGE(cfg.embedding_dim, cfg.num_layers, cfg.dropout,
                           cfg.negative_slope, cfg.deterministic_encoder, rng=self._rng)

        if cfg.use_contrastive and cfg.use_discriminator:
            self.discriminator = ContrastiveDiscriminator(cfg.embedding_dim, rng=self._rng)
        else:
            self.discriminator = None

        self._eval_cache: Optional[Dict[str, DomainLatents]] = None

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode_domains(self, fused: bool = True,
                       defer_sample: bool = False) -> Dict[str, DomainLatents]:
        """Run both VBGEs over the full training graphs."""
        users_x, items_x = self.vbge_x.encode(
            self.user_embedding_x.all(), self.item_embedding_x.all(),
            self.scenario.domain_x.graph, fused=fused, defer_sample=defer_sample,
        )
        users_y, items_y = self.vbge_y.encode(
            self.user_embedding_y.all(), self.item_embedding_y.all(),
            self.scenario.domain_y.graph, fused=fused, defer_sample=defer_sample,
        )
        return {
            self.scenario.domain_x.name: DomainLatents(users_x, items_x),
            self.scenario.domain_y.name: DomainLatents(users_y, items_y),
        }

    def forward(self) -> Dict[str, DomainLatents]:
        return self.encode_domains()

    # ------------------------------------------------------------------ #
    # Training loss (Eq. 16)
    # ------------------------------------------------------------------ #
    def training_loss(self, batches: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]],
                      fused: bool = True, subgraph: bool = False
                      ) -> Tuple[Tensor, Dict[str, float]]:
        """Compute the full CDRIB objective on one step's mini-batches.

        Parameters
        ----------
        batches:
            Dictionary with optional keys ``"in_x"``, ``"in_y"`` (in-domain
            edges of each domain), ``"cross_x_to_y"`` (edges in Y whose user
            is an overlapping user, with the user column already mapped to
            domain-X indices), ``"cross_y_to_x"`` (symmetric) — each a tuple
            ``(users, pos_items, neg_items)`` — and ``"overlap"`` with the
            (idx_x, idx_y) pairs used for the contrastive regularizer.
        fused:
            Use the fused propagation/head/loss kernels (default).  The
            reference op-by-op pipeline (``fused=False``) produces the same
            losses and gradients; the golden-trajectory tests pin the two
            paths against each other.
        subgraph:
            Mini-batch subgraph mode (requires ``fused``): the latent sample
            ``z`` and every reconstruction/contrastive buffer are restricted
            to the users/items touched by this step's batches and negatives.
            The propagation trunk and the Gaussian heads still span the full
            graph because the minimality term (Eq. 11) averages the KL over
            *all* nodes — only the sampling/reconstruction branch shrinks.
            Losses are identical to the full path (same RNG stream; ``z``
            rows are computed elementwise from the same mu/sigma/noise).

        Returns
        -------
        (total loss tensor, per-term float diagnostics)
        """
        cfg = self.config
        latents = self.encode_domains(fused=fused, defer_sample=fused and subgraph)
        name_x = self.scenario.domain_x.name
        name_y = self.scenario.domain_y.name
        lx, ly = latents[name_x], latents[name_y]

        terms: Dict[str, Tensor] = {}

        # --- Minimality (Eq. 11): KL of every posterior against N(0, I). ---
        # The KL is normalised per latent dimension so that the Lagrangian
        # multipliers beta explore the same {0.5 ... 2.0} range as the paper
        # regardless of the embedding size used in an experiment.
        kl_scale = 1.0 / cfg.embedding_dim
        if fused:
            minimality = fused_minimality_total(
                lx, ly, cfg.beta1, cfg.beta2, kl_scale
            )
            interaction, diagnostics, contrast = self._fused_interaction_terms(
                batches, lx, ly, subgraph
            )
            total = minimality
            if interaction is not None:
                total = ops.add(total, interaction)
            if contrast is not None:
                total = ops.add(total, contrast)
            diagnostics = {"minimality": float(minimality.data), **diagnostics}
            if contrast is not None:
                diagnostics["contrastive"] = float(contrast.data)
            diagnostics["total"] = float(total.data)
            return total, diagnostics

        kl_x = ops.add(minimality_term(lx.users.mu, lx.users.sigma),
                       minimality_term(lx.items.mu, lx.items.sigma))
        kl_y = ops.add(minimality_term(ly.users.mu, ly.users.sigma),
                       minimality_term(ly.items.mu, ly.items.sigma))
        terms["minimality"] = ops.mul(
            ops.add(ops.mul(kl_x, cfg.beta1), ops.mul(kl_y, cfg.beta2)), kl_scale
        )
        self._reference_interaction_terms(terms, batches, lx, ly)

        total: Optional[Tensor] = None
        for value in terms.values():
            total = value if total is None else ops.add(total, value)
        if total is None:
            raise ValueError("training_loss received no batches")
        diagnostics = {key: float(value.data) for key, value in terms.items()}
        diagnostics["total"] = float(total.data)
        return total, diagnostics

    def _reference_interaction_terms(self, terms, batches, lx, ly) -> None:
        """Seed op-by-op reconstruction + contrastive terms (faithfulness path)."""
        cfg = self.config

        # --- In-domain reconstruction (Eq. 8). ---
        if cfg.use_in_domain_ib:
            if "in_x" in batches:
                users, pos, neg = batches["in_x"]
                terms["in_domain_x"] = reconstruction_term(
                    lx.users.z[users], lx.items.z[pos], lx.items.z[neg.reshape(-1)]
                )
            if "in_y" in batches:
                users, pos, neg = batches["in_y"]
                terms["in_domain_y"] = reconstruction_term(
                    ly.users.z[users], ly.items.z[pos], ly.items.z[neg.reshape(-1)]
                )

        # --- Cross-domain reconstruction (Eq. 7). ---
        if cfg.use_cross_domain_ib:
            if "cross_x_to_y" in batches:
                users_x_idx, pos, neg = batches["cross_x_to_y"]
                terms["cross_o2y"] = reconstruction_term(
                    lx.users.z[users_x_idx], ly.items.z[pos], ly.items.z[neg.reshape(-1)]
                )
            if "cross_y_to_x" in batches:
                users_y_idx, pos, neg = batches["cross_y_to_x"]
                terms["cross_o2x"] = reconstruction_term(
                    ly.users.z[users_y_idx], lx.items.z[pos], lx.items.z[neg.reshape(-1)]
                )

        # --- Contrastive information regularizer (Eq. 14). ---
        # The term is down-weighted by ``contrastive_weight``: at the small
        # scales used here the discriminator otherwise dominates the
        # overlapping users' gradients and drags the cold-start ranking down
        # (the paper's GPU-scale setting is less sensitive to this).
        if cfg.use_contrastive and "overlap" in batches:
            pairs = batches["overlap"]
            if pairs.shape[0] >= 2:
                overlap_x = lx.users.z[pairs[:, 0]]
                overlap_y = ly.users.z[pairs[:, 1]]
                terms["contrastive"] = ops.mul(
                    self._contrast(overlap_x, overlap_y), cfg.contrastive_weight
                )

    def _fused_interaction_terms(self, batches, lx, ly, subgraph: bool):
        """Fused reconstruction + contrastive terms (training fast path).

        Returns ``(interaction_node, per_term_diagnostics, contrastive_node)``
        where the interaction node covers every active Eq. 7/8 term in one
        fused graph node (see :func:`fused_reconstruction_group`).  In
        subgraph mode each side's ``z`` is materialised only for the rows
        touched by this step (batch users, positives, sampled negatives,
        overlap pairs); the fused nodes then work with local indices so every
        scatter buffer is (touched, F) instead of (N, F).
        """
        cfg = self.config
        in_x = batches.get("in_x") if cfg.use_in_domain_ib else None
        in_y = batches.get("in_y") if cfg.use_in_domain_ib else None
        cross_xy = batches.get("cross_x_to_y") if cfg.use_cross_domain_ib else None
        cross_yx = batches.get("cross_y_to_x") if cfg.use_cross_domain_ib else None
        pairs = batches.get("overlap") if cfg.use_contrastive else None
        if pairs is not None and pairs.shape[0] < 2:
            pairs = None

        if subgraph:
            touched_ux = _touched(
                [in_x[0] if in_x else None,
                 cross_xy[0] if cross_xy else None,
                 pairs[:, 0] if pairs is not None else None])
            touched_uy = _touched(
                [in_y[0] if in_y else None,
                 cross_yx[0] if cross_yx else None,
                 pairs[:, 1] if pairs is not None else None])
            touched_ix = _touched(
                [in_x[1] if in_x else None, in_x[2] if in_x else None,
                 cross_yx[1] if cross_yx else None,
                 cross_yx[2] if cross_yx else None])
            touched_iy = _touched(
                [in_y[1] if in_y else None, in_y[2] if in_y else None,
                 cross_xy[1] if cross_xy else None,
                 cross_xy[2] if cross_xy else None])
            z_ux = _sliced_z(lx.users, touched_ux)
            z_uy = _sliced_z(ly.users, touched_uy)
            z_ix = _sliced_z(lx.items, touched_ix)
            z_iy = _sliced_z(ly.items, touched_iy)
            loc = _local_indices
        else:
            touched_ux = touched_uy = touched_ix = touched_iy = None
            z_ux, z_uy = lx.users.z, ly.users.z
            z_ix, z_iy = lx.items.z, ly.items.z

            def loc(_touched_rows, index):
                return index

        specs = []
        if in_x:
            users, pos, neg = in_x
            specs.append(("in_domain_x", z_ux, z_ix, loc(touched_ux, users),
                          loc(touched_ix, pos), loc(touched_ix, neg.reshape(-1))))
        if in_y:
            users, pos, neg = in_y
            specs.append(("in_domain_y", z_uy, z_iy, loc(touched_uy, users),
                          loc(touched_iy, pos), loc(touched_iy, neg.reshape(-1))))
        if cross_xy:
            users_x_idx, pos, neg = cross_xy
            specs.append(("cross_o2y", z_ux, z_iy, loc(touched_ux, users_x_idx),
                          loc(touched_iy, pos), loc(touched_iy, neg.reshape(-1))))
        if cross_yx:
            users_y_idx, pos, neg = cross_yx
            specs.append(("cross_o2x", z_uy, z_ix, loc(touched_uy, users_y_idx),
                          loc(touched_ix, pos), loc(touched_ix, neg.reshape(-1))))
        if specs:
            interaction, diagnostics = fused_reconstruction_group(specs)
        else:
            interaction, diagnostics = None, {}
        contrast = None
        if pairs is not None:
            overlap_x = ops.gather_rows(z_ux, loc(touched_ux, pairs[:, 0]))
            overlap_y = ops.gather_rows(z_uy, loc(touched_uy, pairs[:, 1]))
            contrast = ops.mul(
                self._contrast(overlap_x, overlap_y, fused=True),
                cfg.contrastive_weight,
            )
        return interaction, diagnostics, contrast

    def _contrast(self, overlap_x: Tensor, overlap_y: Tensor,
                  fused: bool = False) -> Tensor:
        """Contrastive term through the discriminator (or the ablation variant)."""
        if self.discriminator is not None:
            term = fused_contrastive_term if fused else contrastive_term
            return term(self.discriminator, overlap_x, overlap_y, self._rng)
        return self._inner_product_contrast(overlap_x, overlap_y)

    def _inner_product_contrast(self, overlap_x: Tensor, overlap_y: Tensor) -> Tensor:
        """Discriminator-free contrastive variant (ablation): dot-product InfoNCE-style BCE."""
        count = overlap_x.shape[0]
        permutation = self._rng.permutation(count)
        pos_logits = interaction_score(overlap_x, overlap_y)
        neg_logits = interaction_score(overlap_x, overlap_y[permutation])
        pos_loss = ops.binary_cross_entropy_with_logits(pos_logits, np.ones(count))
        neg_loss = ops.binary_cross_entropy_with_logits(neg_logits, np.zeros(count))
        return ops.add(pos_loss, neg_loss)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def _domain_parts(self, domain: str):
        """Return (vbge, user_embedding, item_embedding, graph) for a domain."""
        if domain == self.scenario.domain_x.name:
            return (self.vbge_x, self.user_embedding_x, self.item_embedding_x,
                    self.scenario.domain_x.graph)
        if domain == self.scenario.domain_y.name:
            return (self.vbge_y, self.user_embedding_y, self.item_embedding_y,
                    self.scenario.domain_y.graph)
        raise KeyError(f"unknown domain {domain!r}")

    @no_grad()
    def encode_users_batch(self, domain: str,
                           user_indices: Optional[np.ndarray] = None) -> np.ndarray:
        """Posterior-mean latents for a batch of users of one domain.

        This is the serving entry point: one vectorized no-grad VBGE pass per
        call, independent of the training state (dropout and sampling are
        bypassed exactly as in eval mode).  The computation runs on raw numpy
        arrays; the ``no_grad`` guard additionally ensures nothing under this
        call can record an autograd graph.  Returns an array of shape
        (batch, dim) aligned with ``user_indices`` (or all users when None).
        """
        vbge, user_emb, _, graph = self._domain_parts(domain)
        mu, _ = vbge.encode_users_batch(user_emb.weight.data, graph, user_indices)
        return mu

    @no_grad()
    def encode_items(self, domain: str) -> np.ndarray:
        """Posterior-mean latents of every item of one domain.

        Computed once per checkpoint by the serving :class:`~repro.serve.ItemIndex`;
        shape (num_items, dim).
        """
        vbge, _, item_emb, graph = self._domain_parts(domain)
        mu, _ = vbge.encode_items(item_emb.weight.data, graph)
        return mu

    def refresh_eval_cache(self) -> None:
        """Recompute the deterministic latent variables used for scoring."""
        was_training = self.training
        self.eval()
        with no_grad():
            self._eval_cache = self.encode_domains()
        if was_training:
            self.train()

    def cold_start_scores(self, source: str, target: str,
                          source_users: np.ndarray, target_items: np.ndarray) -> np.ndarray:
        """Score (source-domain user, target-domain item) pairs.

        Both index arrays must have equal length; the returned array contains
        the inner-product scores used for ranking (monotone in the sigmoid
        probability, so the ranking metrics are unaffected by skipping the
        sigmoid).
        """
        if self._eval_cache is None:
            self.refresh_eval_cache()
        source_latents = self._eval_cache[source]
        target_latents = self._eval_cache[target]
        user_repr = source_latents.users.deterministic().data[np.asarray(source_users)]
        item_repr = target_latents.items.deterministic().data[np.asarray(target_items)]
        return np.sum(user_repr * item_repr, axis=-1)

    def in_domain_scores(self, domain: str, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Score (user, item) pairs inside a single domain (used by diagnostics)."""
        return self.cold_start_scores(domain, domain, users, items)
