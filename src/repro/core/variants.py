"""Ablation variants of CDRIB (Table VII and design-choice ablations).

The paper studies two degenerate versions:

* ``w/o Con`` — drop the contrastive information regularizer;
* ``w/o In-IB&Con`` — additionally drop the in-domain IB regularizer,
  keeping only the cross-domain IB regularizer (which is what preserves the
  ability to recommend across domains at all).

Two further variants exercise design choices called out in DESIGN.md:

* ``deterministic`` — no reparameterised sampling (the encoder becomes a
  plain graph encoder, isolating the contribution of the variational part);
* ``dot_contrast`` — replace the MLP discriminator with a plain
  inner-product contrastive score.
"""

from __future__ import annotations

from typing import Dict

from .cdrib import CDRIBConfig

ABLATION_VARIANTS = ("full", "wo_con", "wo_inib_con", "deterministic", "dot_contrast")


def make_ablation_config(base: CDRIBConfig, variant: str) -> CDRIBConfig:
    """Return the config for one named ablation variant of CDRIB."""
    if variant == "full":
        return base.variant()
    if variant == "wo_con":
        return base.variant(use_contrastive=False)
    if variant == "wo_inib_con":
        return base.variant(use_contrastive=False, use_in_domain_ib=False)
    if variant == "deterministic":
        return base.variant(deterministic_encoder=True)
    if variant == "dot_contrast":
        return base.variant(use_discriminator=False)
    raise ValueError(f"unknown variant {variant!r}; choose from {ABLATION_VARIANTS}")


def variant_display_name(variant: str) -> str:
    """Human-readable names matching the paper's Table VII column headers."""
    names: Dict[str, str] = {
        "full": "CDRIB",
        "wo_con": "w/o Con",
        "wo_inib_con": "w/o In-IB&Con",
        "deterministic": "w/o Variational",
        "dot_contrast": "w/o Discriminator",
    }
    return names.get(variant, variant)
