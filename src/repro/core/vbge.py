"""Variational Bipartite Graph Encoder (VBGE, Section III-B).

The encoder follows the paper's two-step scheme:

1. *Interim step* (Eq. 2): user embeddings are pushed to their item
   neighbours through the row-normalised transposed adjacency, producing
   interim representations that live on item nodes but only carry
   homogeneous (user-side) information.
2. *Variational step* (Eq. 3): the interim representations are pulled back
   through the row-normalised adjacency, concatenated with the original
   embeddings and projected to the mean and standard deviation of a diagonal
   Gaussian; Eq. 4 samples latent variables with the reparameterisation
   trick.

Items are encoded by the mirrored computation.  Stacking ``num_layers``
propagation blocks and concatenating their outputs (as the paper does,
following NGCF/LightGCN practice) yields the multi-layer variant analysed in
Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..autograd import Tensor, ops, sparse_matmul, sparse_propagate, sparse_propagate_grad
from ..graph import BipartiteGraph
from ..nn import Dropout, Linear, Module


def _as_ndarray(features) -> np.ndarray:
    """Accept either a Tensor or an ndarray and return the raw array."""
    if isinstance(features, Tensor):
        return features.data
    return np.asarray(features, dtype=np.float64)


@dataclass
class GaussianLatent:
    """Mean / standard deviation / sample triple for one node set.

    When sampling is *deferred* (mini-batch subgraph training), ``z`` is
    ``None`` and ``noise`` holds the full pre-drawn reparameterisation noise;
    the trainer materialises ``mu + sigma * noise`` only for the rows a step
    actually touches.  The noise is always drawn full-shape so the RNG stream
    matches the eager path exactly.
    """

    mu: Tensor
    sigma: Tensor
    z: Optional[Tensor]
    noise: Optional[np.ndarray] = None

    def deterministic(self) -> Tensor:
        """Representation to use at inference time (the posterior mean)."""
        return self.mu


class PropagationBlock(Module):
    """One two-step even-hop propagation block (Eq. 2 and the message part of Eq. 3)."""

    def __init__(self, dim: int, negative_slope: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.to_neighbor = Linear(dim, dim, bias=False, rng=rng)
        self.from_neighbor = Linear(dim, dim, bias=False, rng=rng)
        self.negative_slope = negative_slope

    def forward(self, features: Tensor, push, pull,
                push_t=None, pull_t=None) -> Tensor:
        """Propagate ``features`` out through ``push`` and back through ``pull``.

        ``push`` has shape (n_other, n_self) and ``pull`` (n_self, n_other);
        for users these are Norm(A^T) and Norm(A) respectively.  When the
        cached CSR transposes ``push_t`` / ``pull_t`` are supplied the block
        runs as one fused :func:`sparse_propagate_grad` node (same values and
        gradients, a fraction of the bookkeeping); otherwise the op-by-op
        reference pipeline is used.
        """
        if push_t is not None and pull_t is not None:
            return sparse_propagate_grad(
                push, pull, features,
                self.to_neighbor.weight, self.from_neighbor.weight,
                self.negative_slope, push_t=push_t, pull_t=pull_t,
            )
        interim = ops.leaky_relu(
            sparse_matmul(push, self.to_neighbor(features)), self.negative_slope
        )
        returned = ops.leaky_relu(
            sparse_matmul(pull, self.from_neighbor(interim)), self.negative_slope
        )
        return returned

    def infer(self, features: np.ndarray, push, pull,
              pull_rows: Optional[np.ndarray] = None) -> np.ndarray:
        """No-grad propagation on raw numpy arrays (serving fast path).

        Performs the same operations as :meth:`forward` in the same order;
        ``pull_rows`` optionally restricts the pull step to a batch of nodes
        (exact up to BLAS kernel selection for the smaller products).
        """
        return sparse_propagate(
            push, pull, features,
            self.to_neighbor.weight.data, self.from_neighbor.weight.data,
            self.negative_slope, pull_rows=pull_rows,
        )


class GaussianHead(Module):
    """Project concatenated propagation outputs + base embedding to (mu, sigma).

    The sigma branch is shifted by ``sigma_bias`` before the softplus so the
    posterior starts narrow (sigma ~ 0.1); without this the sampling noise of
    a freshly initialised encoder swamps the inner-product score function and
    slows training dramatically at the small scales used in the benchmarks.
    The KL minimality term is free to widen the posterior during training.
    """

    def __init__(self, in_dim: int, out_dim: int, negative_slope: float = 0.1,
                 sigma_bias: float = -2.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.mu_layer = Linear(in_dim, out_dim, rng=rng)
        self.sigma_layer = Linear(in_dim, out_dim, rng=rng)
        self.negative_slope = negative_slope
        self.sigma_bias = sigma_bias

    def forward(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        mu = ops.leaky_relu(self.mu_layer(features), self.negative_slope)
        sigma = ops.softplus(ops.add(self.sigma_layer(features), self.sigma_bias))
        # Clamp the standard deviation away from zero for numerical stability
        # of the KL term; the offset is tiny and does not bias training.
        sigma = ops.add(sigma, 1e-4)
        return mu, sigma

    def forward_fused(self, features: Tensor) -> Tuple[Tensor, Tensor]:
        """Grad-aware fused (mu, sigma): two nodes instead of ~eight.

        Bitwise-equal to :meth:`forward` — the fused kernels perform the same
        numpy operations in the same order (see
        :func:`repro.autograd.ops.fused_linear_leaky_relu`).
        """
        mu = ops.fused_linear_leaky_relu(
            features, self.mu_layer.weight, self.mu_layer.bias, self.negative_slope
        )
        sigma = ops.fused_linear_softplus(
            features, self.sigma_layer.weight, self.sigma_layer.bias,
            pre_shift=self.sigma_bias, post_shift=1e-4,
        )
        return mu, sigma

    def infer(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """No-grad (mu, sigma) on raw numpy arrays, matching :meth:`forward`."""
        pre_mu = features @ self.mu_layer.weight.data + self.mu_layer.bias.data
        mu = pre_mu * np.where(pre_mu > 0, 1.0, self.negative_slope)
        pre_sigma = (features @ self.sigma_layer.weight.data
                     + self.sigma_layer.bias.data + self.sigma_bias)
        sigma = np.logaddexp(0.0, pre_sigma) + 1e-4
        return mu, sigma


class VBGE(Module):
    """Variational bipartite graph encoder for one domain.

    Parameters
    ----------
    dim:
        Embedding dimension F.
    num_layers:
        Number of propagation blocks; their outputs are concatenated before
        the Gaussian heads (paper default is analysed in Fig. 6).
    dropout:
        Dropout applied to the input embeddings during training.
    negative_slope:
        LeakyReLU slope (paper fixes 0.1).
    deterministic:
        When True, ``z`` equals ``mu`` (no sampling); used by the
        deterministic-encoder ablation.
    """

    def __init__(self, dim: int, num_layers: int = 2, dropout: float = 0.2,
                 negative_slope: float = 0.1, deterministic: bool = False,
                 rng: Optional[np.random.Generator] = None, seed: int = 0):
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be at least 1")
        self.dim = dim
        self.num_layers = num_layers
        self.deterministic = deterministic
        self._rng = rng if rng is not None else np.random.default_rng(seed)

        self.user_dropout = Dropout(dropout, rng=self._rng)
        self.item_dropout = Dropout(dropout, rng=self._rng)
        self.user_blocks: List[PropagationBlock] = []
        self.item_blocks: List[PropagationBlock] = []
        for layer in range(num_layers):
            user_block = PropagationBlock(dim, negative_slope, rng=self._rng)
            item_block = PropagationBlock(dim, negative_slope, rng=self._rng)
            self.register_module(f"user_block_{layer}", user_block)
            self.register_module(f"item_block_{layer}", item_block)
            self.user_blocks.append(user_block)
            self.item_blocks.append(item_block)

        head_in = dim * (num_layers + 1)  # concatenated layer outputs + base embedding
        self.user_head = GaussianHead(head_in, dim, negative_slope, rng=self._rng)
        self.item_head = GaussianHead(head_in, dim, negative_slope, rng=self._rng)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self, user_embeddings: Tensor, item_embeddings: Tensor,
               graph: BipartiteGraph, fused: bool = True,
               defer_sample: bool = False) -> Tuple[GaussianLatent, GaussianLatent]:
        """Encode every user and item of the domain.

        Returns a pair of :class:`GaussianLatent` objects (users, items).

        Parameters
        ----------
        fused:
            Run each propagation block and Gaussian head as fused autograd
            nodes with the graph's cached CSR transposes (default).  The
            reference op-by-op pipeline (``fused=False``) computes identical
            values and gradients and is kept for the faithfulness tests.
        defer_sample:
            Draw the reparameterisation noise but leave ``z`` unmaterialised
            (see :class:`GaussianLatent`); used by mini-batch subgraph
            training.  The RNG stream is identical either way.
        """
        norm_i2u = graph.norm_item_to_user()   # (|U|, |V|)  — Norm(A)
        norm_u2i = graph.norm_user_to_item()   # (|V|, |U|)  — Norm(A^T)
        if fused:
            norm_i2u_t = graph.norm_item_to_user_t()
            norm_u2i_t = graph.norm_user_to_item_t()
        else:
            norm_i2u_t = norm_u2i_t = None

        users = self.user_dropout(user_embeddings)
        items = self.item_dropout(item_embeddings)

        user_outputs = [users]
        hidden = users
        for block in self.user_blocks:
            hidden = block(hidden, push=norm_u2i, pull=norm_i2u,
                           push_t=norm_u2i_t, pull_t=norm_i2u_t)
            user_outputs.append(hidden)

        item_outputs = [items]
        hidden = items
        for block in self.item_blocks:
            hidden = block(hidden, push=norm_i2u, pull=norm_u2i,
                           push_t=norm_i2u_t, pull_t=norm_u2i_t)
            item_outputs.append(hidden)

        user_features = ops.concat(user_outputs, axis=-1)
        item_features = ops.concat(item_outputs, axis=-1)
        if fused:
            user_mu, user_sigma = self.user_head.forward_fused(user_features)
            item_mu, item_sigma = self.item_head.forward_fused(item_features)
        else:
            user_mu, user_sigma = self.user_head(user_features)
            item_mu, item_sigma = self.item_head(item_features)

        user_latent = self._sample(user_mu, user_sigma, defer=defer_sample)
        item_latent = self._sample(item_mu, item_sigma, defer=defer_sample)
        return user_latent, item_latent

    def encode_users_subgraph(self, user_embeddings: Tensor,
                              graph: BipartiteGraph,
                              user_indices: np.ndarray) -> Tuple[Tensor, Tensor]:
        """Gradient-capable row-sliced (mu, sigma) for a batch of users.

        The differentiable counterpart of :meth:`encode_users_batch`: the
        final pull step and the Gaussian head run only on ``user_indices``
        (via the ``pull_rows`` slicing of :func:`sparse_propagate_grad`)
        while earlier hops span the full graph, which is required for
        exactness.  Gradients scatter back through the sliced adjacency into
        the full embedding table.  Useful for workloads whose objective only
        involves batch rows (e.g. head fine-tuning); the full CDRIB objective
        also needs the all-rows KL term, so the trainer uses :meth:`encode`.
        """
        index = np.asarray(user_indices, dtype=np.int64)
        norm_i2u = graph.norm_item_to_user()
        norm_u2i = graph.norm_user_to_item()
        norm_u2i_t = graph.norm_user_to_item_t()
        norm_i2u_t = graph.norm_item_to_user_t()

        users = self.user_dropout(user_embeddings)
        outputs = [users[index]]
        hidden = users
        for layer, block in enumerate(self.user_blocks):
            is_last = layer == len(self.user_blocks) - 1
            if is_last:
                outputs.append(sparse_propagate_grad(
                    norm_u2i, norm_i2u, hidden,
                    block.to_neighbor.weight, block.from_neighbor.weight,
                    block.negative_slope, push_t=norm_u2i_t,
                    pull_rows=index,
                ))
            else:
                hidden = block(hidden, push=norm_u2i, pull=norm_i2u,
                               push_t=norm_u2i_t, pull_t=norm_i2u_t)
                outputs.append(hidden[index])
        return self.user_head.forward_fused(ops.concat(outputs, axis=-1))

    # ------------------------------------------------------------------ #
    # Inference fast paths (serving)
    # ------------------------------------------------------------------ #
    def encode_users_batch(self, user_embeddings, graph: BipartiteGraph,
                           user_indices: Optional[np.ndarray] = None
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Encode a batch of users in one vectorized no-grad pass.

        Unlike :meth:`encode` this skips dropout, sampling, the item-side
        Gaussian head and all autograd bookkeeping, and it restricts the final
        pull step plus the user head to ``user_indices`` — the interim
        propagation still covers the full graph, which is required for
        exactness.  The result equals the eval-mode ``encode`` output on the
        selected rows (to float precision: restricting the batch shrinks the
        GEMM shapes, where BLAS kernel selection may differ in the last ulp).
        (The two-step even-hop propagation means user latents
        depend only on the user embedding table, so no item table is needed.)

        Parameters
        ----------
        user_embeddings:
            Full user embedding table (Tensor or ndarray).
        graph:
            The domain's training interaction graph.
        user_indices:
            Users to encode; ``None`` encodes every user.

        Returns
        -------
        ``(mu, sigma)`` arrays of shape (batch, dim) — the posterior means are
        the representations to score with at inference time.
        """
        users = _as_ndarray(user_embeddings)
        norm_i2u = graph.norm_item_to_user()
        norm_u2i = graph.norm_user_to_item()
        index = (None if user_indices is None
                 else np.asarray(user_indices, dtype=np.int64))

        outputs = [users if index is None else users[index]]
        hidden = users
        for layer, block in enumerate(self.user_blocks):
            is_last = layer == len(self.user_blocks) - 1
            if is_last and index is not None:
                # Only the batch rows of the final layer are ever consumed, so
                # the last pull can run on the restricted adjacency.
                outputs.append(block.infer(hidden, push=norm_u2i, pull=norm_i2u,
                                           pull_rows=index))
            else:
                hidden = block.infer(hidden, push=norm_u2i, pull=norm_i2u)
                outputs.append(hidden if index is None else hidden[index])
        return self.user_head.infer(np.concatenate(outputs, axis=-1))

    def encode_items(self, item_embeddings,
                     graph: BipartiteGraph) -> Tuple[np.ndarray, np.ndarray]:
        """Encode every item of the domain in one no-grad pass.

        The mirrored computation of :meth:`encode_users_batch`, used to build
        the serving :class:`~repro.serve.ItemIndex` once per checkpoint.
        Returns ``(mu, sigma)`` arrays of shape (num_items, dim).
        """
        items = _as_ndarray(item_embeddings)
        norm_i2u = graph.norm_item_to_user()
        norm_u2i = graph.norm_user_to_item()

        outputs = [items]
        hidden = items
        for block in self.item_blocks:
            hidden = block.infer(hidden, push=norm_i2u, pull=norm_u2i)
            outputs.append(hidden)
        return self.item_head.infer(np.concatenate(outputs, axis=-1))

    def _sample(self, mu: Tensor, sigma: Tensor,
                defer: bool = False) -> GaussianLatent:
        if self.deterministic or not self.training:
            return GaussianLatent(mu=mu, sigma=sigma, z=mu)
        if defer:
            # Same full-shape draw as gaussian_reparameterize (identical RNG
            # stream); z is materialised later only for touched rows.
            noise = self._rng.standard_normal(mu.data.shape)
            return GaussianLatent(mu=mu, sigma=sigma, z=None, noise=noise)
        z = ops.gaussian_reparameterize(mu, sigma, rng=self._rng)
        return GaussianLatent(mu=mu, sigma=sigma, z=z)
