"""Tractable objective terms of CDRIB (Section III-C / III-D).

Three groups of terms:

* **Minimality** (Eq. 11): KL divergence between each approximate posterior
  and the standard-normal prior; penalises domain-specific information kept
  in the latent variables.
* **Reconstruction** (Eq. 13): negative log-likelihood of observed user-item
  interactions under the inner-product score function, estimated with
  negative sampling.  Used for both the in-domain (Eq. 8) and the
  cross-domain (Eq. 7) information bottleneck regularizers — the only
  difference is *which* user representations are paired with the items.
* **Contrastive** (Eq. 14-15): an MLP discriminator scores aligned
  overlapping-user representation pairs against shuffled negatives, lower
  bounding the cross-domain user-user mutual information.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, ops
from ..nn import MLP, Module


def minimality_term(latent_mu: Tensor, latent_sigma: Tensor) -> Tensor:
    """KL( q(Z|·) || N(0, I) ) averaged over nodes — one minimality term of Eq. 11."""
    return ops.gaussian_kl(latent_mu, latent_sigma, reduce="mean")


def interaction_score(user_repr: Tensor, item_repr: Tensor) -> Tensor:
    """Plausibility logits s(z_u, z_v) as row-wise inner products.

    The paper applies a sigmoid on top; we keep logits and use the
    numerically stable BCE-with-logits formulation for training, and apply
    the sigmoid only when a probability is explicitly needed.
    """
    return ops.dot_rows(user_repr, item_repr)


def reconstruction_term(user_repr: Tensor, pos_item_repr: Tensor,
                        neg_item_repr: Tensor) -> Tensor:
    """Negative-sampling estimate of the reconstruction term (Eq. 13).

    ``neg_item_repr`` may contain several negatives per positive, flattened
    to shape (batch * num_negatives, F); the corresponding user rows must be
    repeated by the caller.
    Returns the *loss* (the negated lower bound), to be minimised.
    """
    pos_logits = interaction_score(user_repr, pos_item_repr)
    pos_loss = ops.binary_cross_entropy_with_logits(
        pos_logits, np.ones(pos_logits.shape), reduce="mean"
    )
    if neg_item_repr is None:
        return pos_loss
    repeat = neg_item_repr.shape[0] // user_repr.shape[0]
    if repeat * user_repr.shape[0] != neg_item_repr.shape[0]:
        raise ValueError(
            "neg_item_repr rows must be a multiple of user_repr rows "
            f"({neg_item_repr.shape[0]} vs {user_repr.shape[0]})"
        )
    if repeat > 1:
        index = np.repeat(np.arange(user_repr.shape[0]), repeat)
        neg_users = user_repr[index]
    else:
        neg_users = user_repr
    neg_logits = interaction_score(neg_users, neg_item_repr)
    neg_loss = ops.binary_cross_entropy_with_logits(
        neg_logits, np.zeros(neg_logits.shape), reduce="mean"
    )
    return ops.add(pos_loss, neg_loss)


class ContrastiveDiscriminator(Module):
    """The discriminator D of Eq. 15: a three-layer MLP over concatenated pairs."""

    def __init__(self, dim: int, hidden_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = hidden_dim if hidden_dim is not None else dim
        self.mlp = MLP([2 * dim, hidden, hidden // 2 or 1, 1], activation="relu", rng=rng)

    def forward(self, repr_x: Tensor, repr_y: Tensor) -> Tensor:
        """Return similarity logits for row-aligned pairs (z^xo_ui, z^yo_ui)."""
        pair = ops.concat([repr_x, repr_y], axis=-1)
        logits = self.mlp(pair)
        return ops.reshape(logits, (logits.shape[0],))


def contrastive_term(discriminator: ContrastiveDiscriminator,
                     overlap_x: Tensor, overlap_y: Tensor,
                     rng: np.random.Generator) -> Tensor:
    """Contrastive information regularizer loss (the negated bound of Eq. 14).

    Positive pairs align the same overlapping user across domains; negative
    pairs are built by pairing each X-side representation with a *different*
    user's Y-side representation (a derangement-style shuffle).
    """
    count = overlap_x.shape[0]
    if count < 2:
        # A single overlapping user cannot form a negative pair; the
        # regularizer degenerates to zero.
        return Tensor(0.0)
    permutation = _derangement(count, rng)
    pos_logits = discriminator(overlap_x, overlap_y)
    neg_logits = discriminator(overlap_x, overlap_y[permutation])
    pos_loss = ops.binary_cross_entropy_with_logits(
        pos_logits, np.ones(count), reduce="mean"
    )
    neg_loss = ops.binary_cross_entropy_with_logits(
        neg_logits, np.zeros(count), reduce="mean"
    )
    return ops.add(pos_loss, neg_loss)


def _derangement(count: int, rng: np.random.Generator) -> np.ndarray:
    """Random permutation of ``range(count)`` with no fixed points."""
    permutation = rng.permutation(count)
    for position in range(count):
        if permutation[position] == position:
            swap_with = (position + 1) % count
            permutation[position], permutation[swap_with] = (
                permutation[swap_with], permutation[position]
            )
    return permutation
