"""Tractable objective terms of CDRIB (Section III-C / III-D).

Three groups of terms:

* **Minimality** (Eq. 11): KL divergence between each approximate posterior
  and the standard-normal prior; penalises domain-specific information kept
  in the latent variables.
* **Reconstruction** (Eq. 13): negative log-likelihood of observed user-item
  interactions under the inner-product score function, estimated with
  negative sampling.  Used for both the in-domain (Eq. 8) and the
  cross-domain (Eq. 7) information bottleneck regularizers — the only
  difference is *which* user representations are paired with the items.
* **Contrastive** (Eq. 14-15): an MLP discriminator scores aligned
  overlapping-user representation pairs against shuffled negatives, lower
  bounding the cross-domain user-user mutual information.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..nn import MLP, Activation, Linear, Module


def minimality_term(latent_mu: Tensor, latent_sigma: Tensor) -> Tensor:
    """KL( q(Z|·) || N(0, I) ) averaged over nodes — one minimality term of Eq. 11."""
    return ops.gaussian_kl(latent_mu, latent_sigma, reduce="mean")


def fused_minimality_term(latent_mu: Tensor, latent_sigma: Tensor) -> Tensor:
    """Single-node version of :func:`minimality_term` (training fast path).

    Forward evaluates the same expression chain as :func:`ops.gaussian_kl`
    with ``reduce="mean"`` — same operations, same order, bitwise-equal
    values — and the backward closure replays the composed pipeline's exact
    vector-Jacobian products, collapsing ~10 graph nodes into one.
    """
    mu, sigma = latent_mu, latent_sigma
    out, rows, shifted_var = _kl_mean_forward(mu.data, sigma.data)

    def backward(g):
        return _kl_mean_backward(float(np.asarray(g)), rows, mu.data,
                                 sigma.data, shifted_var)

    return ops._make(np.asarray(out), (mu, sigma), backward)


def _kl_mean_forward(mu: np.ndarray, sigma: np.ndarray):
    """Forward pieces of the mean KL: (value, rows, shifted variance)."""
    var = sigma * sigma
    shifted_var = var + 1e-12
    per_dim = (mu * mu - 1.0) + (var - np.log(shifted_var))
    per_row = per_dim.sum(axis=-1) * 0.5
    rows = per_row.shape[0] if per_row.shape else 1
    return per_row.mean(), rows, shifted_var


def _kl_mean_backward(upstream: float, rows: int, mu: np.ndarray,
                      sigma: np.ndarray, shifted_var: np.ndarray):
    """(d/dmu, d/dsigma) of the mean KL, matching the op chain bitwise."""
    g_per_dim = (upstream / rows) * 0.5
    half_mu = g_per_dim * mu
    g_var = g_per_dim - g_per_dim / shifted_var
    half_sigma = g_var * sigma
    return half_mu + half_mu, half_sigma + half_sigma


def fused_minimality_total(latents_x, latents_y, beta1: float, beta2: float,
                           kl_scale: float) -> Tensor:
    """The whole minimality term of Eq. 16 as one graph node.

    ``(KL_x_users + KL_x_items) * beta1 + (KL_y_users + KL_y_items) * beta2``
    scaled by ``kl_scale``, with parents (mu, sigma) of all four posteriors.
    Expression order matches the composed pipeline bitwise; the backward
    closure replays each per-posterior KL chain with the appropriately
    scaled upstream gradient.
    """
    pairs = (latents_x.users, latents_x.items, latents_y.users, latents_y.items)
    forwards = [_kl_mean_forward(p.mu.data, p.sigma.data) for p in pairs]
    kl_x = forwards[0][0] + forwards[1][0]
    kl_y = forwards[2][0] + forwards[3][0]
    out = (kl_x * beta1 + kl_y * beta2) * kl_scale

    def backward(g):
        scaled = float(np.asarray(g)) * kl_scale
        upstreams = (scaled * beta1, scaled * beta1,
                     scaled * beta2, scaled * beta2)
        grads = []
        for (value, rows, shifted_var), latent, upstream in zip(
                forwards, pairs, upstreams):
            d_mu, d_sigma = _kl_mean_backward(
                upstream, rows, latent.mu.data, latent.sigma.data, shifted_var
            )
            grads.extend((d_mu, d_sigma))
        return tuple(grads)

    parents = tuple(t for p in pairs for t in (p.mu, p.sigma))
    return ops._make(np.asarray(out), parents, backward)


def interaction_score(user_repr: Tensor, item_repr: Tensor) -> Tensor:
    """Plausibility logits s(z_u, z_v) as row-wise inner products.

    The paper applies a sigmoid on top; we keep logits and use the
    numerically stable BCE-with-logits formulation for training, and apply
    the sigmoid only when a probability is explicitly needed.
    """
    return ops.dot_rows(user_repr, item_repr)


def reconstruction_term(user_repr: Tensor, pos_item_repr: Tensor,
                        neg_item_repr: Tensor) -> Tensor:
    """Negative-sampling estimate of the reconstruction term (Eq. 13).

    ``neg_item_repr`` may contain several negatives per positive, flattened
    to shape (batch * num_negatives, F); the corresponding user rows must be
    repeated by the caller.
    Returns the *loss* (the negated lower bound), to be minimised.
    """
    pos_logits = interaction_score(user_repr, pos_item_repr)
    pos_loss = ops.binary_cross_entropy_with_logits(
        pos_logits, np.ones(pos_logits.shape), reduce="mean"
    )
    if neg_item_repr is None:
        return pos_loss
    repeat = neg_item_repr.shape[0] // user_repr.shape[0]
    if repeat * user_repr.shape[0] != neg_item_repr.shape[0]:
        raise ValueError(
            "neg_item_repr rows must be a multiple of user_repr rows "
            f"({neg_item_repr.shape[0]} vs {user_repr.shape[0]})"
        )
    if repeat > 1:
        index = np.repeat(np.arange(user_repr.shape[0]), repeat)
        neg_users = user_repr[index]
    else:
        neg_users = user_repr
    neg_logits = interaction_score(neg_users, neg_item_repr)
    neg_loss = ops.binary_cross_entropy_with_logits(
        neg_logits, np.zeros(neg_logits.shape), reduce="mean"
    )
    return ops.add(pos_loss, neg_loss)


def fused_reconstruction_group(specs) -> Tuple[Tensor, Dict[str, float]]:
    """Every reconstruction term of one training step as a single graph node.

    ``specs`` is a list of ``(name, user_z, item_z, users, pos_items,
    neg_items)`` tuples — one per active Eq. 7/8 term; each behaves like
    ``reconstruction_term(user_z[users], item_z[pos], item_z[neg])``.  The
    row gathers, inner-product logits, stable BCE terms and their mean
    reductions run in one forward pass, and the backward merges the
    scatters: each ``z`` tensor receives *one* combined bincount scatter-add
    for all terms touching it, with the negatives' user-side contributions
    folded per batch row first.  Returns the summed loss tensor plus
    per-term float values for the trainer's diagnostics.
    """
    prepared = []
    term_values: Dict[str, float] = {}
    total = None
    for name, user_z, item_z, users, pos_items, neg_items in specs:
        users = np.asarray(users, dtype=np.int64)
        pos_items = np.asarray(pos_items, dtype=np.int64)
        neg_items = np.asarray(neg_items, dtype=np.int64).reshape(-1)
        batch = users.shape[0]
        if batch == 0:
            raise ValueError(f"reconstruction term {name!r} received an empty batch")
        repeat = neg_items.shape[0] // batch
        if repeat * batch != neg_items.shape[0]:
            raise ValueError(
                f"neg_items rows of term {name!r} must be a multiple of the "
                f"batch ({neg_items.shape[0]} vs {batch})"
            )
        rep_users = np.repeat(users, repeat)
        user_rows = user_z.data[users]
        pos_rows = item_z.data[pos_items]
        neg_user_rows = user_z.data[rep_users]
        neg_rows = item_z.data[neg_items]
        pos_logits = (user_rows * pos_rows).sum(axis=-1)
        neg_logits = (neg_user_rows * neg_rows).sum(axis=-1)
        value = _bce_pair_forward(pos_logits, neg_logits)
        term_values[name] = float(value)
        total = value if total is None else total + value
        prepared.append((user_z, item_z, users, pos_items, neg_items, batch,
                         repeat, user_rows, pos_rows, neg_user_rows, neg_rows,
                         pos_logits, neg_logits))

    parents = []
    for entry in prepared:
        for tensor in entry[:2]:
            if not any(tensor is seen for seen in parents):
                parents.append(tensor)

    def backward(g):
        g = float(np.asarray(g))
        pending: Dict[int, list] = {id(t): [] for t in parents}
        for (user_z, item_z, users, pos_items, neg_items, batch, repeat,
             user_rows, pos_rows, neg_user_rows, neg_rows,
             pos_logits, neg_logits) in prepared:
            d_pos = _bce_grad(pos_logits, True, g)[:, None]
            d_neg = _bce_grad(neg_logits, False, g)[:, None]
            weighted_neg = d_neg * neg_rows
            user_contrib = (d_pos * pos_rows
                            + weighted_neg.reshape(batch, repeat, -1).sum(axis=1))
            pending[id(user_z)].append((users, user_contrib))
            pending[id(item_z)].append((pos_items, d_pos * user_rows))
            pending[id(item_z)].append((neg_items, d_neg * neg_user_rows))
        grads = []
        for tensor in parents:
            chunks = pending[id(tensor)]
            if len(chunks) == 1:
                index, values = chunks[0]
            else:
                index = np.concatenate([c[0] for c in chunks])
                values = np.concatenate([c[1] for c in chunks])
            grads.append(ops.scatter_add_rows(tensor.data.shape[0], index, values))
        return tuple(grads)

    return ops._make(np.asarray(total), tuple(parents), backward), term_values


def _bce_pair_forward(pos_logits: np.ndarray, neg_logits: np.ndarray) -> float:
    """mean BCE(pos, target=1) + mean BCE(neg, target=0), stable form.

    Identical expression chain to the composed
    ``binary_cross_entropy_with_logits`` ops:
    ``max(x, 0) - x*t + log(1 + exp(-|x|))`` averaged per group.
    """
    pos_losses = (np.maximum(pos_logits, 0.0) - pos_logits
                  + np.logaddexp(0.0, -np.abs(pos_logits)))
    neg_losses = np.maximum(neg_logits, 0.0) + np.logaddexp(0.0, -np.abs(neg_logits))
    return pos_losses.mean() + neg_losses.mean()


def _bce_grad(logits: np.ndarray, targets_one: bool, upstream: float) -> np.ndarray:
    """d(mean stable-BCE)/d(logits) for all-ones or all-zeros targets."""
    sig_neg = _stable_sigmoid_grad(logits)
    grad = (logits >= 0).astype(np.float64) - sig_neg * np.sign(logits)
    if targets_one:
        grad = grad - 1.0
    return grad * (upstream / logits.shape[0])


def _stable_sigmoid_grad(x: np.ndarray) -> np.ndarray:
    """sigmoid(-|x|) without overflow (softplus'(-|x|) of the BCE backward)."""
    z = np.exp(-np.abs(x))
    return z / (1.0 + z)


def fused_bce_pair(pos_logits: Tensor, neg_logits: Tensor) -> Tensor:
    """``mean BCE(pos, 1) + mean BCE(neg, 0)`` as one graph node.

    The contrastive regularizer's loss head: both stable BCE terms, their
    mean reductions and the final add collapse into a single node over the
    two logit tensors.
    """
    out = _bce_pair_forward(pos_logits.data, neg_logits.data)

    def backward(g):
        g = float(np.asarray(g))
        return (_bce_grad(pos_logits.data, True, g),
                _bce_grad(neg_logits.data, False, g))

    return ops._make(np.asarray(out), (pos_logits, neg_logits), backward)


def _fused_discriminator_logits(discriminator: "ContrastiveDiscriminator",
                                repr_x: Tensor, repr_y: Tensor,
                                permutation: Optional[np.ndarray]) -> Optional[Tensor]:
    """Whole discriminator pass (concat + MLP + reshape) as one graph node.

    ``permutation`` optionally re-pairs the Y-side rows (the negative pairs
    of Eq. 14).  The forward replays the exact op-by-op expressions (affine
    then ``pre * (pre > 0)`` ReLU masks), the backward the exact chain of
    products, so values and gradients match the composed pipeline to fp
    accumulation order.  Returns None when the MLP contains layers the fused
    kernel does not know (the caller then falls back to the op-by-op path).
    """
    layers = list(discriminator.mlp.net)
    for layer in layers:
        if isinstance(layer, Linear):
            continue
        if isinstance(layer, Activation) and layer.name == "relu":
            continue
        return None

    y_rows = repr_y.data if permutation is None else repr_y.data[permutation]
    pair = np.concatenate([repr_x.data, y_rows], axis=-1)
    hidden = pair
    pre_masks = []       # ReLU masks, in application order
    linear_inputs = []   # input to each Linear, in application order
    for layer in layers:
        if isinstance(layer, Linear):
            linear_inputs.append(hidden)
            hidden = hidden @ layer.weight.data
            if layer.bias is not None:
                hidden = hidden + layer.bias.data
        else:
            mask = hidden > 0
            pre_masks.append(mask)
            hidden = hidden * mask
    logits = hidden.reshape(hidden.shape[0])

    parents = [repr_x, repr_y]
    for layer in layers:
        if isinstance(layer, Linear):
            parents.append(layer.weight)
            if layer.bias is not None:
                parents.append(layer.bias)

    def backward(g):
        grad = np.asarray(g).reshape(-1, 1)
        param_grads = []
        mask_pos = len(pre_masks)
        linear_pos = len(linear_inputs)
        for layer in reversed(layers):
            if isinstance(layer, Linear):
                linear_pos -= 1
                taken = linear_inputs[linear_pos]
                if layer.bias is not None:
                    param_grads.append(grad.sum(axis=0))
                param_grads.append(taken.T @ grad)
                grad = grad @ layer.weight.data.T
            else:
                mask_pos -= 1
                grad = grad * pre_masks[mask_pos]
        dim = repr_x.data.shape[1]
        grad_x = grad[:, :dim]
        grad_y_rows = grad[:, dim:]
        if permutation is None:
            grad_y = grad_y_rows
        else:
            grad_y = ops.scatter_add_rows(repr_y.data.shape[0], permutation,
                                          grad_y_rows)
        return (grad_x, grad_y, *reversed(param_grads))

    return ops._make(logits, tuple(parents), backward)


def fused_contrastive_term(discriminator: "ContrastiveDiscriminator",
                           overlap_x: Tensor, overlap_y: Tensor,
                           rng: np.random.Generator) -> Tensor:
    """Fused-loss version of :func:`contrastive_term` (training fast path).

    Each discriminator pass (pair concat + three-layer MLP) runs as one
    fused node, and the twin BCE heads collapse into another; unknown MLP
    layouts fall back to the op-by-op pipeline.  Consumes the RNG
    identically to the reference (one derangement draw).
    """
    count = overlap_x.shape[0]
    if count < 2:
        return Tensor(0.0)
    permutation = _derangement(count, rng)
    pos_logits = _fused_discriminator_logits(discriminator, overlap_x, overlap_y, None)
    if pos_logits is None:
        pos_logits = discriminator(overlap_x, overlap_y)
        neg_logits = discriminator(overlap_x, ops.gather_rows(overlap_y, permutation))
    else:
        neg_logits = _fused_discriminator_logits(
            discriminator, overlap_x, overlap_y, permutation
        )
    return fused_bce_pair(pos_logits, neg_logits)


class ContrastiveDiscriminator(Module):
    """The discriminator D of Eq. 15: a three-layer MLP over concatenated pairs."""

    def __init__(self, dim: int, hidden_dim: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        hidden = hidden_dim if hidden_dim is not None else dim
        self.mlp = MLP([2 * dim, hidden, hidden // 2 or 1, 1], activation="relu", rng=rng)

    def forward(self, repr_x: Tensor, repr_y: Tensor) -> Tensor:
        """Return similarity logits for row-aligned pairs (z^xo_ui, z^yo_ui)."""
        pair = ops.concat([repr_x, repr_y], axis=-1)
        logits = self.mlp(pair)
        return ops.reshape(logits, (logits.shape[0],))


def contrastive_term(discriminator: ContrastiveDiscriminator,
                     overlap_x: Tensor, overlap_y: Tensor,
                     rng: np.random.Generator) -> Tensor:
    """Contrastive information regularizer loss (the negated bound of Eq. 14).

    Positive pairs align the same overlapping user across domains; negative
    pairs are built by pairing each X-side representation with a *different*
    user's Y-side representation (a derangement-style shuffle).
    """
    count = overlap_x.shape[0]
    if count < 2:
        # A single overlapping user cannot form a negative pair; the
        # regularizer degenerates to zero.
        return Tensor(0.0)
    permutation = _derangement(count, rng)
    pos_logits = discriminator(overlap_x, overlap_y)
    neg_logits = discriminator(overlap_x, overlap_y[permutation])
    pos_loss = ops.binary_cross_entropy_with_logits(
        pos_logits, np.ones(count), reduce="mean"
    )
    neg_loss = ops.binary_cross_entropy_with_logits(
        neg_logits, np.zeros(count), reduce="mean"
    )
    return ops.add(pos_loss, neg_loss)


def _derangement(count: int, rng: np.random.Generator) -> np.ndarray:
    """Random permutation of ``range(count)`` with no fixed points."""
    permutation = rng.permutation(count)
    for position in range(count):
        if permutation[position] == position:
            swap_with = (position + 1) % count
            permutation[position], permutation[swap_with] = (
                permutation[swap_with], permutation[position]
            )
    return permutation
