"""Matrix-factorisation recommenders: BPRMF and CML.

Both models learn one embedding per user and item of a single bipartite
graph; they differ in the interaction score and the pairwise loss:

* **BPRMF** (Rendle et al., 2009) scores with the inner product and uses the
  Bayesian personalised ranking loss ``-log sigmoid(s_pos - s_neg)``.
* **CML** (Hsieh et al., 2017) embeds users and items in a metric space,
  scores with the *negative squared Euclidean distance* and uses a hinge
  loss with margin.

They serve three roles in the reproduction: single-domain baselines on the
merged view (Table III-VI rows ``BPRMF`` / ``CML``), the pre-training stage
of the EMCDR family, and sanity baselines in the test-suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, ops
from ..graph import BipartiteGraph
from ..nn import Embedding, Module
from ..optim import Adam
from .base import BaselineConfig, BaselineRecommender, EdgeSampler, MergedScorerMixin


class FactorizationModel(Module):
    """Embedding model trained with a pairwise ranking loss on one graph."""

    def __init__(self, num_users: int, num_items: int, config: BaselineConfig,
                 loss: str = "bpr"):
        super().__init__()
        if loss not in ("bpr", "cml"):
            raise ValueError(f"unknown loss {loss!r}; expected 'bpr' or 'cml'")
        self.config = config
        self.loss = loss
        rng = np.random.default_rng(config.seed)
        self.user_embedding = Embedding(num_users, config.embedding_dim, rng=rng)
        self.item_embedding = Embedding(num_items, config.embedding_dim, rng=rng)

    # ------------------------------------------------------------------ #
    # Scores and losses
    # ------------------------------------------------------------------ #
    def pair_scores(self, users: Tensor, items: Tensor) -> Tensor:
        if self.loss == "bpr":
            return ops.dot_rows(users, items)
        difference = ops.sub(users, items)
        return ops.neg(ops.sum(ops.mul(difference, difference), axis=-1))

    def batch_loss(self, users: np.ndarray, positives: np.ndarray,
                   negatives: np.ndarray) -> Tensor:
        """Pairwise loss over one (user, positive, negatives) batch."""
        num_negatives = negatives.shape[1]
        repeated_users = np.repeat(users, num_negatives)
        repeated_pos = np.repeat(positives, num_negatives)
        flat_negatives = negatives.reshape(-1)

        user_vectors = self.user_embedding(repeated_users)
        pos_vectors = self.item_embedding(repeated_pos)
        neg_vectors = self.item_embedding(flat_negatives)

        pos_scores = self.pair_scores(user_vectors, pos_vectors)
        neg_scores = self.pair_scores(user_vectors, neg_vectors)
        if self.loss == "bpr":
            return ops.neg(ops.mean(ops.log_sigmoid(ops.sub(pos_scores, neg_scores))))
        # CML hinge: max(0, margin - s_pos + s_neg) with s = -distance^2.
        hinge = ops.maximum(
            ops.add(ops.sub(neg_scores, pos_scores), self.config.margin), 0.0
        )
        return ops.mean(hinge)

    # ------------------------------------------------------------------ #
    # Training / inference
    # ------------------------------------------------------------------ #
    def fit(self, graph: BipartiteGraph, epochs: Optional[int] = None,
            verbose: bool = False) -> "FactorizationModel":
        cfg = self.config
        epochs = epochs if epochs is not None else cfg.epochs
        optimizer = Adam(self.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        sampler = EdgeSampler(graph, cfg.batch_size, cfg.num_negatives, seed=cfg.seed)
        self.train()
        for epoch in range(epochs):
            losses = []
            for _ in range(sampler.steps_per_epoch()):
                batch = sampler.sample()
                if batch is None:
                    break
                optimizer.zero_grad()
                loss = self.batch_loss(*batch)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            if verbose and losses:
                print(f"[{self.loss}] epoch {epoch + 1} loss {np.mean(losses):.4f}")
        self.eval()
        return self

    def user_vectors(self) -> np.ndarray:
        return self.user_embedding.weight.data

    def item_vectors(self) -> np.ndarray:
        return self.item_embedding.weight.data

    def score(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Pairwise scores from the learned embeddings (numpy, no graph)."""
        user_vec = self.user_vectors()[np.asarray(users)]
        item_vec = self.item_vectors()[np.asarray(items)]
        if self.loss == "bpr":
            return np.sum(user_vec * item_vec, axis=-1)
        return -np.sum((user_vec - item_vec) ** 2, axis=-1)


class SingleDomainMF(MergedScorerMixin, BaselineRecommender):
    """BPRMF / CML trained on the merged single-domain view of a scenario."""

    def __init__(self, config: Optional[BaselineConfig] = None, loss: str = "bpr"):
        self.config = config if config is not None else BaselineConfig()
        self.loss = loss
        self.name = "BPRMF" if loss == "bpr" else "CML"
        self.model: Optional[FactorizationModel] = None

    def fit(self, scenario) -> "SingleDomainMF":
        merged = self._prepare_merged(scenario)
        self.model = FactorizationModel(
            merged.graph.num_users, merged.graph.num_items, self.config, loss=self.loss
        )
        self.model.fit(merged.graph)
        return self

    def scorer(self, source: str, target: str):
        if self.model is None:
            raise RuntimeError("call fit() before scorer()")
        return self.make_merged_scorer(self.model.score, source, target)
