"""Baseline recommenders compared against CDRIB in the paper's evaluation."""

from .base import BaselineConfig, BaselineRecommender, EdgeSampler
from .deep import CoNet, STAR
from .emcdr import EMCDR, SSCDR, TMCDR
from .gnn import NGCF, PPGN, GraphPropagationEncoder
from .mf import FactorizationModel, SingleDomainMF
from .registry import (
    ALL_BASELINES,
    BASELINE_FACTORIES,
    CROSS_DOMAIN_BASELINES,
    EMCDR_FAMILY_BASELINES,
    SINGLE_DOMAIN_BASELINES,
    make_baseline,
)
from .savae import SAVAE
from .vbge_single import VBGERecommender

__all__ = [
    "BaselineConfig",
    "BaselineRecommender",
    "EdgeSampler",
    "FactorizationModel",
    "SingleDomainMF",
    "NGCF",
    "PPGN",
    "GraphPropagationEncoder",
    "VBGERecommender",
    "EMCDR",
    "SSCDR",
    "TMCDR",
    "SAVAE",
    "CoNet",
    "STAR",
    "make_baseline",
    "BASELINE_FACTORIES",
    "ALL_BASELINES",
    "SINGLE_DOMAIN_BASELINES",
    "CROSS_DOMAIN_BASELINES",
    "EMCDR_FAMILY_BASELINES",
]
