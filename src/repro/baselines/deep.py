"""Deep cross-domain baselines that transfer through shared network structure.

* **CoNet** (Hu et al., 2018): two feed-forward towers (one per domain) over
  a user embedding shared across domains, with cross-connection matrices
  that transfer hidden activations between the towers.  Knowledge reaches a
  cold-start user through the shared user embedding and the cross
  connections.
* **STAR** (Sheng et al., 2021): a star-topology network where each domain's
  effective weights are the elementwise product of domain-specific weights
  and globally shared weights, so every domain update also shapes the shared
  centre.

Both baselines were designed for *overlapping-user* transfer; the paper
applies them to the cold-start setting anyway and observes they behave
roughly like single-domain models, which is also what this reproduction
shows.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..autograd import Tensor, ops
from ..data.scenario import CDRScenario
from ..nn import Embedding, Linear, Module, Parameter, init
from ..optim import Adam
from .base import BaselineConfig, BaselineRecommender, EdgeSampler


class _SharedUserSpace:
    """Helper building a user index shared across both domains of a scenario."""

    def __init__(self, scenario: CDRScenario):
        self.index: Dict[object, int] = {}
        self.per_domain: Dict[str, np.ndarray] = {}
        for domain in (scenario.domain_x, scenario.domain_y):
            mapping = np.zeros(domain.num_users, dtype=np.int64)
            for key, idx in domain.user_index.items():
                if key not in self.index:
                    self.index[key] = len(self.index)
                mapping[idx] = self.index[key]
            self.per_domain[domain.name] = mapping

    @property
    def num_users(self) -> int:
        return len(self.index)

    def map_users(self, domain_name: str, users: np.ndarray) -> np.ndarray:
        return self.per_domain[domain_name][np.asarray(users)]


class CoNet(BaselineRecommender):
    """Collaborative cross networks with cross-connected hidden layers."""

    name = "CoNet"

    def __init__(self, config: Optional[BaselineConfig] = None):
        self.config = config if config is not None else BaselineConfig()
        self._model: Optional[Module] = None
        self._shared: Optional[_SharedUserSpace] = None
        self._scenario: Optional[CDRScenario] = None

    def fit(self, scenario: CDRScenario) -> "CoNet":
        cfg = self.config
        self._scenario = scenario
        shared = _SharedUserSpace(scenario)
        self._shared = shared
        rng = np.random.default_rng(cfg.seed)
        dim = cfg.embedding_dim

        model = Module()
        model.users = Embedding(shared.num_users, dim, rng=rng)
        names = [scenario.domain_x.name, scenario.domain_y.name]
        for domain in (scenario.domain_x, scenario.domain_y):
            model.register_module(f"items_{domain.name}",
                                  Embedding(domain.num_items, dim, rng=rng))
            model.register_module(f"tower1_{domain.name}", Linear(2 * dim, dim, rng=rng))
            model.register_module(f"tower2_{domain.name}", Linear(dim, dim // 2, rng=rng))
            model.register_module(f"out_{domain.name}", Linear(dim // 2, 1, rng=rng))
        # Cross-connection matrices transfer the first hidden layer between towers.
        model.cross_x_to_y = Linear(dim, dim, bias=False, rng=rng)
        model.cross_y_to_x = Linear(dim, dim, bias=False, rng=rng)
        self._model = model

        optimizer = Adam(model.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        samplers = {
            domain.name: EdgeSampler(domain.graph, cfg.batch_size, cfg.num_negatives,
                                     seed=cfg.seed + offset)
            for offset, domain in enumerate((scenario.domain_x, scenario.domain_y))
        }
        steps = max(s.steps_per_epoch() for s in samplers.values())
        for _ in range(cfg.epochs):
            for _ in range(steps):
                optimizer.zero_grad()
                total = None
                for name in names:
                    batch = samplers[name].sample()
                    if batch is None:
                        continue
                    users, positives, negatives = batch
                    num_neg = negatives.shape[1]
                    all_users = np.concatenate([users, np.repeat(users, num_neg)])
                    all_items = np.concatenate([positives, negatives.reshape(-1)])
                    labels = np.concatenate([np.ones(len(users)),
                                             np.zeros(len(users) * num_neg)])
                    logits = self._forward(name, all_users, all_items, other=_other(names, name))
                    loss = ops.binary_cross_entropy_with_logits(logits, labels)
                    total = loss if total is None else ops.add(total, loss)
                if total is None:
                    continue
                total.backward()
                optimizer.step()
        model.eval()
        return self

    def _forward(self, domain_name: str, users: np.ndarray, items: np.ndarray,
                 other: str) -> Tensor:
        """Score (user, item) pairs in one domain with cross-connected towers."""
        model = self._model
        shared_users = self._shared.map_users(domain_name, users)
        user_vec = model.users(shared_users)
        item_vec = getattr(model, f"items_{domain_name}")(items)
        pair = ops.concat([user_vec, item_vec], axis=-1)
        hidden_self = ops.relu(getattr(model, f"tower1_{domain_name}")(pair))
        # The cross connection injects the *other* tower's view of the same
        # user (its first-layer transform of the user embedding alone).
        cross = (model.cross_y_to_x if other == self._scenario.domain_y.name
                 else model.cross_x_to_y)
        hidden_other = ops.relu(cross(user_vec))
        hidden = ops.add(hidden_self, hidden_other)
        hidden = ops.relu(getattr(model, f"tower2_{domain_name}")(hidden))
        logits = getattr(model, f"out_{domain_name}")(hidden)
        return ops.reshape(logits, (logits.shape[0],))

    def scorer(self, source: str, target: str):
        if self._model is None:
            raise RuntimeError("call fit() before scorer()")
        names = [self._scenario.domain_x.name, self._scenario.domain_y.name]

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            # The cold-start user is identified by their shared embedding, so
            # we can run the *target* tower on them directly even though the
            # index we receive lives in the source domain.
            shared_users = self._shared.map_users(source, users)
            model = self._model
            user_vec = model.users(shared_users)
            item_vec = getattr(model, f"items_{target}")(np.asarray(items))
            pair = ops.concat([user_vec, item_vec], axis=-1)
            hidden_self = ops.relu(getattr(model, f"tower1_{target}")(pair))
            cross = (model.cross_y_to_x if source == self._scenario.domain_y.name
                     else model.cross_x_to_y)
            hidden = ops.add(hidden_self, ops.relu(cross(user_vec)))
            hidden = ops.relu(getattr(model, f"tower2_{target}")(hidden))
            logits = getattr(model, f"out_{target}")(hidden)
            return logits.data.reshape(-1)

        return score


class StarLinear(Module):
    """Linear layer whose weight is the elementwise product of shared and domain weights."""

    def __init__(self, in_features: int, out_features: int, shared_weight: Parameter,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.shared_weight = shared_weight
        self.domain_weight = Parameter(np.ones((in_features, out_features)),
                                       name="domain_weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        weight = ops.mul(self.shared_weight, self.domain_weight)
        return ops.add(ops.matmul(x, weight), self.bias)


class STAR(BaselineRecommender):
    """Star-topology adaptive recommender (shared-centre + per-domain weights)."""

    name = "STAR"

    def __init__(self, config: Optional[BaselineConfig] = None):
        self.config = config if config is not None else BaselineConfig()
        self._model: Optional[Module] = None
        self._shared: Optional[_SharedUserSpace] = None
        self._scenario: Optional[CDRScenario] = None

    def fit(self, scenario: CDRScenario) -> "STAR":
        cfg = self.config
        self._scenario = scenario
        shared = _SharedUserSpace(scenario)
        self._shared = shared
        rng = np.random.default_rng(cfg.seed)
        dim = cfg.embedding_dim

        model = Module()
        model.users = Embedding(shared.num_users, dim, rng=rng)
        model.shared_weight_1 = Parameter(init.xavier_uniform((2 * dim, dim), rng=rng),
                                          name="shared_weight_1")
        model.shared_weight_2 = Parameter(init.xavier_uniform((dim, 1), rng=rng),
                                          name="shared_weight_2")
        for domain in (scenario.domain_x, scenario.domain_y):
            model.register_module(f"items_{domain.name}",
                                  Embedding(domain.num_items, dim, rng=rng))
            model.register_module(f"star1_{domain.name}",
                                  StarLinear(2 * dim, dim, model.shared_weight_1, rng=rng))
            model.register_module(f"star2_{domain.name}",
                                  StarLinear(dim, 1, model.shared_weight_2, rng=rng))
        self._model = model

        optimizer = Adam(model.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        samplers = {
            domain.name: EdgeSampler(domain.graph, cfg.batch_size, cfg.num_negatives,
                                     seed=cfg.seed + offset)
            for offset, domain in enumerate((scenario.domain_x, scenario.domain_y))
        }
        steps = max(s.steps_per_epoch() for s in samplers.values())
        for _ in range(cfg.epochs):
            for _ in range(steps):
                optimizer.zero_grad()
                total = None
                for domain in (scenario.domain_x, scenario.domain_y):
                    batch = samplers[domain.name].sample()
                    if batch is None:
                        continue
                    users, positives, negatives = batch
                    num_neg = negatives.shape[1]
                    all_users = np.concatenate([users, np.repeat(users, num_neg)])
                    all_items = np.concatenate([positives, negatives.reshape(-1)])
                    labels = np.concatenate([np.ones(len(users)),
                                             np.zeros(len(users) * num_neg)])
                    logits = self._forward(domain.name, domain.name, all_users, all_items)
                    loss = ops.binary_cross_entropy_with_logits(logits, labels)
                    total = loss if total is None else ops.add(total, loss)
                if total is None:
                    continue
                total.backward()
                optimizer.step()
        model.eval()
        return self

    def _forward(self, user_domain: str, item_domain: str, users: np.ndarray,
                 items: np.ndarray) -> Tensor:
        model = self._model
        shared_users = self._shared.map_users(user_domain, users)
        user_vec = model.users(shared_users)
        item_vec = getattr(model, f"items_{item_domain}")(np.asarray(items))
        pair = ops.concat([user_vec, item_vec], axis=-1)
        hidden = ops.relu(getattr(model, f"star1_{item_domain}")(pair))
        logits = getattr(model, f"star2_{item_domain}")(hidden)
        return ops.reshape(logits, (logits.shape[0],))

    def scorer(self, source: str, target: str):
        if self._model is None:
            raise RuntimeError("call fit() before scorer()")

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            logits = self._forward(source, target, np.asarray(users), np.asarray(items))
            return logits.data.reshape(-1)

        return score


def _other(names, name):
    return names[1] if name == names[0] else names[0]
