"""The Embedding-and-Mapping (EMCDR) family of cold-start CDR baselines.

These methods follow the two-stage pipeline criticised by the paper
(Fig. 1b):

1. **Pre-train** user/item representations *independently* per domain with a
   CF model (CML, BPRMF or NGCF-style graph propagation).
2. **Map**: learn a function that transfers overlapping users' source-domain
   representations onto their target-domain representations, then apply it
   to cold-start users.

Variants implemented here:

* :class:`EMCDR` — the original MLP mapping trained with MSE between mapped
  source embeddings and the pre-trained target embeddings of overlapping
  users (Man et al., 2017).  The pre-training model is pluggable,
  reproducing the paper's ``EMCDR(CML)`` / ``EMCDR(BPRMF)`` /
  ``EMCDR(NGCF)`` rows.
* :class:`SSCDR` — CML pre-training plus a metric-learning mapping: the
  mapped user must be close to the target items they interacted with and
  far from sampled negatives (Kang et al., 2019, simplified to its
  supervised part).
* :class:`TMCDR` — BPRMF pre-training plus a Reptile-style meta-learned
  mapping: each overlapping user is a task, the mapping is adapted on half
  of the user's target interactions and the meta-parameters move toward the
  adapted weights (Zhu et al., 2021, transfer-meta framework).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd import Tensor, ops
from ..data.sampling import NegativeSampler
from ..data.scenario import CDRScenario, Domain
from ..nn import MLP, Module
from ..optim import Adam, SGD
from .base import BaselineConfig, BaselineRecommender
from .gnn import GraphPropagationEncoder
from .mf import FactorizationModel


class _PretrainedDomain:
    """Frozen per-domain user/item vectors produced by a pre-training model."""

    def __init__(self, user_vectors: np.ndarray, item_vectors: np.ndarray, metric: str):
        self.user_vectors = user_vectors
        self.item_vectors = item_vectors
        self.metric = metric

    def score(self, user_vectors: np.ndarray, items: np.ndarray) -> np.ndarray:
        item_vectors = self.item_vectors[np.asarray(items)]
        if self.metric == "distance":
            return -np.sum((user_vectors - item_vectors) ** 2, axis=-1)
        return np.sum(user_vectors * item_vectors, axis=-1)


def pretrain_domain(domain: Domain, config: BaselineConfig, method: str) -> _PretrainedDomain:
    """Pre-train one domain with the requested CF model and freeze the output."""
    if method in ("bprmf", "cml"):
        loss = "bpr" if method == "bprmf" else "cml"
        model = FactorizationModel(domain.num_users, domain.num_items, config, loss=loss)
        model.fit(domain.graph)
        metric = "dot" if method == "bprmf" else "distance"
        return _PretrainedDomain(model.user_vectors().copy(),
                                 model.item_vectors().copy(), metric)
    if method == "ngcf":
        encoder = GraphPropagationEncoder(domain.num_users, domain.num_items, config)
        optimizer = Adam(encoder.parameters(), lr=config.learning_rate,
                         weight_decay=config.weight_decay)
        from .base import EdgeSampler
        from .gnn import _bpr_from_joint

        sampler = EdgeSampler(domain.graph, config.batch_size, config.num_negatives,
                              seed=config.seed)
        encoder.train()
        for _ in range(config.epochs):
            for _ in range(sampler.steps_per_epoch()):
                batch = sampler.sample()
                if batch is None:
                    break
                users, positives, negatives = batch
                optimizer.zero_grad()
                representations = encoder.encode(domain.graph)
                loss = _bpr_from_joint(representations, domain.num_users,
                                       users, positives, negatives)
                loss.backward()
                optimizer.step()
        encoder.eval()
        final = encoder.encode(domain.graph).data
        return _PretrainedDomain(final[: domain.num_users].copy(),
                                 final[domain.num_users:].copy(), "dot")
    raise ValueError(f"unknown pre-training method {method!r}")


class _MappingPair:
    """Mapping MLPs for both transfer directions plus the frozen embeddings."""

    def __init__(self, pretrained: Dict[str, _PretrainedDomain],
                 mappings: Dict[Tuple[str, str], MLP]):
        self.pretrained = pretrained
        self.mappings = mappings

    def score(self, source: str, target: str, users: np.ndarray,
              items: np.ndarray) -> np.ndarray:
        mapping = self.mappings[(source, target)]
        source_vectors = self.pretrained[source].user_vectors[np.asarray(users)]
        mapped = mapping(Tensor(source_vectors)).data
        return self.pretrained[target].score(mapped, items)


class EMCDR(BaselineRecommender):
    """EMCDR with a pluggable pre-training model (Man et al., 2017)."""

    def __init__(self, config: Optional[BaselineConfig] = None, pretrain: str = "bprmf"):
        self.config = config if config is not None else BaselineConfig()
        self.pretrain = pretrain
        self.name = f"EMCDR({pretrain.upper()})"
        self._pair: Optional[_MappingPair] = None

    # -- pipeline ------------------------------------------------------- #
    def fit(self, scenario: CDRScenario) -> "EMCDR":
        pretrained = {
            domain.name: pretrain_domain(domain, self.config, self.pretrain)
            for domain in (scenario.domain_x, scenario.domain_y)
        }
        mappings = {}
        for source, target, source_column, target_column in _direction_specs(scenario):
            mappings[(source, target)] = self._train_mapping(
                pretrained[source], pretrained[target],
                scenario.overlap_pairs[:, source_column],
                scenario.overlap_pairs[:, target_column],
                target_name=target, scenario=scenario,
            )
        self._pair = _MappingPair(pretrained, mappings)
        return self

    def _train_mapping(self, source: _PretrainedDomain, target: _PretrainedDomain,
                       source_users: np.ndarray, target_users: np.ndarray,
                       target_name: str = "", scenario: Optional[CDRScenario] = None) -> MLP:
        cfg = self.config
        dim = cfg.embedding_dim
        source_dim = source.user_vectors.shape[1]
        target_dim = target.user_vectors.shape[1]
        mapping = MLP([source_dim, cfg.mapping_hidden_factor * dim, target_dim],
                      activation="tanh",
                      rng=np.random.default_rng(cfg.seed + 7))
        optimizer = Adam(mapping.parameters(), lr=cfg.learning_rate)
        inputs = source.user_vectors[source_users]
        targets = target.user_vectors[target_users]
        for _ in range(cfg.mapping_epochs):
            optimizer.zero_grad()
            predicted = mapping(Tensor(inputs))
            loss = ops.mse_loss(predicted, targets)
            loss.backward()
            optimizer.step()
        mapping.eval()
        return mapping

    def scorer(self, source: str, target: str):
        if self._pair is None:
            raise RuntimeError("call fit() before scorer()")

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return self._pair.score(source, target, users, items)

        return score


class SSCDR(EMCDR):
    """SSCDR: CML pre-training + metric-learning mapping (Kang et al., 2019)."""

    def __init__(self, config: Optional[BaselineConfig] = None):
        super().__init__(config, pretrain="cml")
        self.name = "SSCDR"
        self._scenario: Optional[CDRScenario] = None

    def fit(self, scenario: CDRScenario) -> "SSCDR":
        self._scenario = scenario
        return super().fit(scenario)

    def _train_mapping(self, source: _PretrainedDomain, target: _PretrainedDomain,
                       source_users: np.ndarray, target_users: np.ndarray,
                       target_name: str = "", scenario: Optional[CDRScenario] = None) -> MLP:
        cfg = self.config
        scenario = scenario if scenario is not None else self._scenario
        target_domain = scenario.domain(target_name)
        sampler = NegativeSampler(target_domain.graph, seed=cfg.seed + 23)
        mapping = MLP([source.user_vectors.shape[1],
                       cfg.mapping_hidden_factor * cfg.embedding_dim,
                       target.user_vectors.shape[1]],
                      activation="tanh",
                      rng=np.random.default_rng(cfg.seed + 9))
        optimizer = Adam(mapping.parameters(), lr=cfg.learning_rate)
        rng = np.random.default_rng(cfg.seed + 31)
        for _ in range(cfg.mapping_epochs):
            optimizer.zero_grad()
            loss_terms = []
            for source_user, target_user in zip(source_users, target_users):
                positives = target_domain.graph.items_of_user(int(target_user))
                if positives.size == 0:
                    continue
                positive = int(rng.choice(positives))
                negative = int(sampler.sample_for_user(int(target_user), 1)[0])
                mapped = mapping(Tensor(source.user_vectors[int(source_user)][None, :]))
                pos_vec = Tensor(target.item_vectors[positive][None, :])
                neg_vec = Tensor(target.item_vectors[negative][None, :])
                pos_dist = ops.sum(ops.mul(ops.sub(mapped, pos_vec),
                                           ops.sub(mapped, pos_vec)))
                neg_dist = ops.sum(ops.mul(ops.sub(mapped, neg_vec),
                                           ops.sub(mapped, neg_vec)))
                loss_terms.append(ops.maximum(
                    ops.add(ops.sub(pos_dist, neg_dist), cfg.margin), 0.0
                ))
            if not loss_terms:
                break
            total = loss_terms[0]
            for term in loss_terms[1:]:
                total = ops.add(total, term)
            loss = ops.div(total, float(len(loss_terms)))
            loss.backward()
            optimizer.step()
        mapping.eval()
        return mapping


class TMCDR(EMCDR):
    """TMCDR: BPRMF pre-training + Reptile-style meta-learned mapping."""

    def __init__(self, config: Optional[BaselineConfig] = None):
        super().__init__(config, pretrain="bprmf")
        self.name = "TMCDR"
        self._scenario: Optional[CDRScenario] = None

    def fit(self, scenario: CDRScenario) -> "TMCDR":
        self._scenario = scenario
        return super().fit(scenario)

    def _train_mapping(self, source: _PretrainedDomain, target: _PretrainedDomain,
                       source_users: np.ndarray, target_users: np.ndarray,
                       target_name: str = "", scenario: Optional[CDRScenario] = None) -> MLP:
        cfg = self.config
        scenario = scenario if scenario is not None else self._scenario
        target_domain = scenario.domain(target_name)
        sampler = NegativeSampler(target_domain.graph, seed=cfg.seed + 41)
        rng = np.random.default_rng(cfg.seed + 13)
        mapping = MLP([source.user_vectors.shape[1],
                       cfg.mapping_hidden_factor * cfg.embedding_dim,
                       target.user_vectors.shape[1]],
                      activation="tanh", rng=np.random.default_rng(cfg.seed + 11))

        def task_loss(model: MLP, user_row: int, target_user: int) -> Optional[Tensor]:
            positives = target_domain.graph.items_of_user(int(target_user))
            if positives.size == 0:
                return None
            positive = int(rng.choice(positives))
            negative = int(sampler.sample_for_user(int(target_user), 1)[0])
            mapped = model(Tensor(source.user_vectors[user_row][None, :]))
            pos_score = ops.dot_rows(mapped, Tensor(target.item_vectors[positive][None, :]))
            neg_score = ops.dot_rows(mapped, Tensor(target.item_vectors[negative][None, :]))
            return ops.neg(ops.mean(ops.log_sigmoid(ops.sub(pos_score, neg_score))))

        meta_lr = cfg.learning_rate
        for _ in range(cfg.mapping_epochs):
            # Sample one task (overlapping user) per meta-step.
            pick = int(rng.integers(0, len(source_users)))
            snapshot = mapping.state_dict()
            inner = SGD(mapping.parameters(), lr=cfg.meta_inner_lr)
            for _ in range(cfg.meta_inner_steps):
                inner.zero_grad()
                loss = task_loss(mapping, int(source_users[pick]), int(target_users[pick]))
                if loss is None:
                    break
                loss.backward()
                inner.step()
            adapted = mapping.state_dict()
            # Reptile meta-update: move the meta-parameters toward the adapted ones.
            merged = {
                key: snapshot[key] + meta_lr * (adapted[key] - snapshot[key])
                for key in snapshot
            }
            mapping.load_state_dict(merged)
        mapping.eval()
        return mapping


def _direction_specs(scenario: CDRScenario):
    """Yield (source, target, source_column, target_column) for both directions."""
    name_x = scenario.domain_x.name
    name_y = scenario.domain_y.name
    yield name_x, name_y, 0, 1
    yield name_y, name_x, 1, 0
