"""Registry of every baseline compared in Tables III-VI.

The registry maps the display names used in the paper's result tables to
factory callables, so experiment runners and benches can instantiate any
subset by name.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .base import BaselineConfig, BaselineRecommender
from .deep import CoNet, STAR
from .emcdr import EMCDR, SSCDR, TMCDR
from .gnn import NGCF, PPGN
from .mf import SingleDomainMF
from .savae import SAVAE
from .vbge_single import VBGERecommender

BaselineFactory = Callable[[BaselineConfig], BaselineRecommender]

BASELINE_FACTORIES: Dict[str, BaselineFactory] = {
    # Single-domain CF on the merged interaction set.
    "CML": lambda cfg: SingleDomainMF(cfg, loss="cml"),
    "BPRMF": lambda cfg: SingleDomainMF(cfg, loss="bpr"),
    "NGCF": lambda cfg: NGCF(cfg),
    "VBGE": lambda cfg: VBGERecommender(cfg),
    # Cross-domain models without an explicit cold-start mechanism.
    "CoNet": lambda cfg: CoNet(cfg),
    "STAR": lambda cfg: STAR(cfg),
    "PPGN": lambda cfg: PPGN(cfg),
    # EMCDR-family cold-start models.
    "EMCDR(CML)": lambda cfg: EMCDR(cfg, pretrain="cml"),
    "EMCDR(BPRMF)": lambda cfg: EMCDR(cfg, pretrain="bprmf"),
    "EMCDR(NGCF)": lambda cfg: EMCDR(cfg, pretrain="ngcf"),
    "SSCDR": lambda cfg: SSCDR(cfg),
    "TMCDR": lambda cfg: TMCDR(cfg),
    "SA-VAE": lambda cfg: SAVAE(cfg),
}

SINGLE_DOMAIN_BASELINES: List[str] = ["CML", "BPRMF", "NGCF", "VBGE"]
CROSS_DOMAIN_BASELINES: List[str] = ["CoNet", "STAR", "PPGN"]
EMCDR_FAMILY_BASELINES: List[str] = [
    "EMCDR(CML)", "EMCDR(BPRMF)", "EMCDR(NGCF)", "SSCDR", "TMCDR", "SA-VAE",
]
ALL_BASELINES: List[str] = (
    SINGLE_DOMAIN_BASELINES + CROSS_DOMAIN_BASELINES + EMCDR_FAMILY_BASELINES
)


def make_baseline(name: str, config: Optional[BaselineConfig] = None) -> BaselineRecommender:
    """Instantiate a baseline by its paper display name."""
    if name not in BASELINE_FACTORIES:
        raise KeyError(f"unknown baseline {name!r}; available: {sorted(BASELINE_FACTORIES)}")
    return BASELINE_FACTORIES[name](config if config is not None else BaselineConfig())
