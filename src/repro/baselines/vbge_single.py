"""VBGE as a single-domain baseline (the paper's ``VBGE`` row).

The paper describes this baseline as "a degenerate version of CDRIB, which
replaces all regularizers with the VGAE loss function" — i.e. the same
variational bipartite graph encoder trained only with an in-domain
reconstruction + KL objective on the merged single-domain interaction set.
It isolates the contribution of the encoder from the contribution of the
cross-domain information bottleneck regularizers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import no_grad, ops
from ..core.regularizers import minimality_term, reconstruction_term
from ..core.vbge import VBGE
from ..nn import Embedding, Module
from ..optim import Adam
from .base import BaselineConfig, BaselineRecommender, EdgeSampler, MergedScorerMixin


class VBGERecommender(MergedScorerMixin, BaselineRecommender):
    """Single-domain recommender built from one VBGE + VGAE-style loss."""

    name = "VBGE"

    def __init__(self, config: Optional[BaselineConfig] = None, beta: float = 1.0):
        self.config = config if config is not None else BaselineConfig()
        self.beta = beta
        self._user_repr: Optional[np.ndarray] = None
        self._item_repr: Optional[np.ndarray] = None

    def fit(self, scenario) -> "VBGERecommender":
        cfg = self.config
        merged = self._prepare_merged(scenario)
        graph = merged.graph
        rng = np.random.default_rng(cfg.seed)

        container = Module()
        container.user_embedding = Embedding(graph.num_users, cfg.embedding_dim, rng=rng)
        container.item_embedding = Embedding(graph.num_items, cfg.embedding_dim, rng=rng)
        container.encoder = VBGE(cfg.embedding_dim, cfg.num_layers, cfg.dropout, rng=rng)

        optimizer = Adam(container.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        sampler = EdgeSampler(graph, cfg.batch_size, cfg.num_negatives, seed=cfg.seed)
        container.train()
        kl_scale = self.beta / cfg.embedding_dim
        for _ in range(cfg.epochs):
            for _ in range(sampler.steps_per_epoch()):
                batch = sampler.sample()
                if batch is None:
                    break
                users, positives, negatives = batch
                optimizer.zero_grad()
                user_latent, item_latent = container.encoder.encode(
                    container.user_embedding.all(), container.item_embedding.all(), graph
                )
                recon = reconstruction_term(
                    user_latent.z[users], item_latent.z[positives],
                    item_latent.z[negatives.reshape(-1)],
                )
                kl = ops.add(minimality_term(user_latent.mu, user_latent.sigma),
                             minimality_term(item_latent.mu, item_latent.sigma))
                loss = ops.add(recon, ops.mul(kl, kl_scale))
                loss.backward()
                optimizer.step()

        container.eval()
        with no_grad():
            user_latent, item_latent = container.encoder.encode(
                container.user_embedding.all(), container.item_embedding.all(), graph
            )
        self._user_repr = user_latent.mu.data
        self._item_repr = item_latent.mu.data
        return self

    def scorer(self, source: str, target: str):
        if self._user_repr is None:
            raise RuntimeError("call fit() before scorer()")

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return np.sum(self._user_repr[users] * self._item_repr[items], axis=-1)

        return self.make_merged_scorer(score, source, target)
