"""Shared infrastructure for the baseline recommenders (Section IV-B2).

Every baseline implements the :class:`BaselineRecommender` interface so the
experiment runners and the leave-one-out evaluator can treat CDRIB, its
variants and all thirteen baselines uniformly:

* ``fit(scenario)`` trains the model on a :class:`CDRScenario`;
* ``scorer(source, target)`` returns a pairwise scoring callable for one
  transfer direction (cold-start users indexed in the source domain, items
  indexed in the target domain).

Single-domain models are trained on the merged view of both domains (the
paper merges all interactions into one domain for this model family); the
:class:`MergedScorerMixin` handles the index translation from per-domain
indices to the merged index space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..data.sampling import NegativeSampler
from ..data.scenario import CDRScenario, MergedView, build_merged_view
from ..eval.protocol import Scorer
from ..graph import BipartiteGraph
from ..nn import Module


@dataclass
class BaselineConfig:
    """Hyperparameters shared by the baseline recommenders."""

    embedding_dim: int = 64
    learning_rate: float = 0.02
    weight_decay: float = 1e-5
    batch_size: int = 256
    num_negatives: int = 4
    epochs: int = 40
    num_layers: int = 2
    dropout: float = 0.1
    margin: float = 1.0          # CML / SSCDR hinge margin
    mapping_epochs: int = 60     # EMCDR-family mapping-function training
    mapping_hidden_factor: int = 2
    meta_inner_steps: int = 3    # TMCDR
    meta_inner_lr: float = 0.05
    seed: int = 0

    def variant(self, **overrides) -> "BaselineConfig":
        params = {**self.__dict__, **overrides}
        return BaselineConfig(**params)


class BaselineRecommender:
    """Interface every baseline implements."""

    name: str = "baseline"

    def fit(self, scenario: CDRScenario) -> "BaselineRecommender":
        raise NotImplementedError

    def scorer(self, source: str, target: str) -> Scorer:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Persistence (shared Module path, repro.io)
    # ------------------------------------------------------------------ #
    def _state_modules(self) -> Dict[str, Module]:
        """Directly attached :class:`~repro.nn.Module` components, by name.

        The generic save/load path covers every learnable tensor reachable
        as a direct ``Module`` attribute of the recommender (sorted by
        attribute name, so the layout is deterministic).  Baselines that hide
        modules inside helper objects override this to expose them.
        """
        modules: Dict[str, Module] = {}
        for attr in sorted(vars(self)):
            value = getattr(self, attr)
            if isinstance(value, Module):
                modules[attr] = value
        return modules

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Every component module's parameters under ``<attr>.<param>`` keys."""
        state: Dict[str, np.ndarray] = {}
        for attr, module in self._state_modules().items():
            for key, value in module.state_dict().items():
                state[f"{attr}.{key}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Restore parameters produced by :meth:`state_dict`.

        The recommender must already be structured like the one that saved
        (same config, fitted on the same scenario) — persistence restores
        learned values, not architecture.
        """
        modules = self._state_modules()
        if not modules:
            raise ValueError(
                f"{type(self).__name__} exposes no modules to load into; "
                f"fit() it on the matching scenario first"
            )
        consumed = set()
        for attr, module in modules.items():
            prefix = attr + "."
            part = {key[len(prefix):]: value for key, value in state.items()
                    if key.startswith(prefix)}
            consumed.update(prefix + key for key in part)
            module.load_state_dict(part, strict=strict)
        unexpected = set(state) - consumed
        if strict and unexpected:
            raise KeyError(f"unexpected baseline state entries: {sorted(unexpected)}")

    def save(self, path: str) -> str:
        """Persist the fitted state as a checkpoint directory (``repro.io``)."""
        from ..io import save_checkpoint

        arrays = {f"model/{key}": value.copy()
                  for key, value in self.state_dict().items()}
        return save_checkpoint(path, arrays, manifest={
            "model": {"class": type(self).__name__, "name": self.name},
        }, kind="baseline")

    def load(self, path: str) -> "BaselineRecommender":
        """Load a checkpoint written by :meth:`save` (checksum-verified)."""
        from ..io import load_checkpoint

        checkpoint = load_checkpoint(path, expect_kind="baseline")
        self.load_state_dict(checkpoint.namespace("model"))
        return self


class EdgeSampler:
    """Sample (user, positive, negatives) training triples from one graph."""

    def __init__(self, graph: BipartiteGraph, batch_size: int, num_negatives: int,
                 seed: int = 0):
        self.graph = graph
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self._rng = np.random.default_rng(seed)
        self._neg = NegativeSampler(graph, seed=seed + 1)

    def steps_per_epoch(self) -> int:
        return max(1, int(np.ceil(self.graph.num_edges / self.batch_size)))

    def sample(self) -> Optional[tuple]:
        edges = self.graph.edges
        if edges.shape[0] == 0:
            return None
        size = min(self.batch_size, edges.shape[0])
        picks = self._rng.choice(edges.shape[0], size=size, replace=False)
        batch = edges[picks]
        users, positives = batch[:, 0], batch[:, 1]
        negatives = self._neg.sample_batch(users, self.num_negatives)
        return users, positives, negatives


class MergedScorerMixin:
    """Index translation for models trained on the merged single-domain view."""

    def _prepare_merged(self, scenario: CDRScenario) -> MergedView:
        self._scenario = scenario
        self._merged = build_merged_view(scenario)
        self._user_maps: Dict[str, np.ndarray] = {}
        for domain in (scenario.domain_x, scenario.domain_y):
            mapping = np.full(domain.num_users, -1, dtype=np.int64)
            for key, idx in domain.user_index.items():
                merged_idx = self._merged.user_index.get(key)
                if merged_idx is not None:
                    mapping[idx] = merged_idx
            self._user_maps[domain.name] = mapping
        return self._merged

    def _merged_users(self, domain_name: str, users: np.ndarray) -> np.ndarray:
        return self._user_maps[domain_name][np.asarray(users)]

    def _merged_items(self, domain_name: str, items: np.ndarray) -> np.ndarray:
        offset = (self._merged.item_offset_y
                  if domain_name == self._scenario.domain_y.name
                  else self._merged.item_offset_x)
        return offset + np.asarray(items)

    def make_merged_scorer(self, score_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
                           source: str, target: str) -> Scorer:
        """Wrap a merged-index scoring function into a per-domain scorer."""
        def scorer(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            merged_users = self._merged_users(source, users)
            merged_items = self._merged_items(target, items)
            return score_fn(merged_users, merged_items)

        return scorer
