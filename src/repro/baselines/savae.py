"""SA-VAE: source-aligned variational EMCDR baseline (Salah et al., 2021).

SA-VAE keeps the embedding-and-mapping pipeline but makes both stages
variational: each domain is modelled by a variational auto-encoder over its
interaction graph, and the mapping aligns the *posterior means* of
overlapping users across domains.  In this reproduction both per-domain
encoders reuse the :class:`~repro.core.vbge.VBGE` module (trained with a
plain VGAE objective, no cross-domain terms), which keeps the comparison
with CDRIB architecture-controlled: the only difference is *how* the two
domains are coupled.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..autograd import Tensor, no_grad, ops
from ..core.regularizers import minimality_term, reconstruction_term
from ..core.vbge import VBGE
from ..data.scenario import CDRScenario, Domain
from ..nn import MLP, Embedding, Module
from ..optim import Adam
from .base import BaselineConfig, BaselineRecommender, EdgeSampler


class _DomainVAE:
    """One per-domain variational encoder trained with the VGAE objective."""

    def __init__(self, domain: Domain, config: BaselineConfig, beta: float = 1.0):
        self.domain = domain
        self.config = config
        self.beta = beta
        rng = np.random.default_rng(config.seed)
        self.container = Module()
        self.container.user_embedding = Embedding(domain.num_users, config.embedding_dim, rng=rng)
        self.container.item_embedding = Embedding(domain.num_items, config.embedding_dim, rng=rng)
        self.container.encoder = VBGE(config.embedding_dim, config.num_layers,
                                      config.dropout, rng=rng)
        self.user_mu: Optional[np.ndarray] = None
        self.item_mu: Optional[np.ndarray] = None

    def fit(self) -> "_DomainVAE":
        cfg = self.config
        graph = self.domain.graph
        optimizer = Adam(self.container.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        sampler = EdgeSampler(graph, cfg.batch_size, cfg.num_negatives, seed=cfg.seed)
        kl_scale = self.beta / cfg.embedding_dim
        self.container.train()
        for _ in range(cfg.epochs):
            for _ in range(sampler.steps_per_epoch()):
                batch = sampler.sample()
                if batch is None:
                    break
                users, positives, negatives = batch
                optimizer.zero_grad()
                user_latent, item_latent = self.container.encoder.encode(
                    self.container.user_embedding.all(),
                    self.container.item_embedding.all(), graph,
                )
                recon = reconstruction_term(
                    user_latent.z[users], item_latent.z[positives],
                    item_latent.z[negatives.reshape(-1)],
                )
                kl = ops.add(minimality_term(user_latent.mu, user_latent.sigma),
                             minimality_term(item_latent.mu, item_latent.sigma))
                loss = ops.add(recon, ops.mul(kl, kl_scale))
                loss.backward()
                optimizer.step()
        self.container.eval()
        with no_grad():
            user_latent, item_latent = self.container.encoder.encode(
                self.container.user_embedding.all(),
                self.container.item_embedding.all(), graph,
            )
        self.user_mu = user_latent.mu.data
        self.item_mu = item_latent.mu.data
        return self


class SAVAE(BaselineRecommender):
    """Source-aligned VAE: per-domain VAEs + MLP alignment of posterior means."""

    name = "SA-VAE"

    def __init__(self, config: Optional[BaselineConfig] = None):
        self.config = config if config is not None else BaselineConfig()
        self._vaes: Dict[str, _DomainVAE] = {}
        self._mappings: Dict[Tuple[str, str], MLP] = {}

    def fit(self, scenario: CDRScenario) -> "SAVAE":
        cfg = self.config
        self._vaes = {
            domain.name: _DomainVAE(domain, cfg).fit()
            for domain in (scenario.domain_x, scenario.domain_y)
        }
        name_x, name_y = scenario.domain_x.name, scenario.domain_y.name
        pairs = scenario.overlap_pairs
        self._mappings[(name_x, name_y)] = self._align(
            self._vaes[name_x].user_mu[pairs[:, 0]],
            self._vaes[name_y].user_mu[pairs[:, 1]],
        )
        self._mappings[(name_y, name_x)] = self._align(
            self._vaes[name_y].user_mu[pairs[:, 1]],
            self._vaes[name_x].user_mu[pairs[:, 0]],
        )
        return self

    def _align(self, source_mu: np.ndarray, target_mu: np.ndarray) -> MLP:
        cfg = self.config
        mapping = MLP([source_mu.shape[1], cfg.mapping_hidden_factor * cfg.embedding_dim,
                       target_mu.shape[1]], activation="tanh",
                      rng=np.random.default_rng(cfg.seed + 17))
        optimizer = Adam(mapping.parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.mapping_epochs):
            optimizer.zero_grad()
            loss = ops.mse_loss(mapping(Tensor(source_mu)), target_mu)
            loss.backward()
            optimizer.step()
        mapping.eval()
        return mapping

    def scorer(self, source: str, target: str):
        if not self._vaes:
            raise RuntimeError("call fit() before scorer()")
        mapping = self._mappings[(source, target)]
        source_mu = self._vaes[source].user_mu
        target_items = self._vaes[target].item_mu

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            mapped = mapping(Tensor(source_mu[np.asarray(users)])).data
            return np.sum(mapped * target_items[np.asarray(items)], axis=-1)

        return score
