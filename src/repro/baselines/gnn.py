"""Graph-neural-network recommenders: NGCF (single-domain) and PPGN (cross-domain).

* **NGCF** (Wang et al., 2019) propagates user/item embeddings over the
  symmetric-normalised joint adjacency of the bipartite graph and
  concatenates the output of every layer; we keep the propagation but use
  the simplified (LightGCN-style) message without the elementwise
  interaction term, which later work showed performs comparably.  Trained
  with the BPR loss on the merged single-domain view.
* **PPGN** (Zhao et al., 2019) shares a single user embedding table across
  both domains and runs one graph encoder per domain; knowledge transfers
  through the shared user table, so a cold-start user scored in the target
  domain still benefits from the source-domain interactions that shaped
  their shared embedding.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..autograd import Tensor, ops, sparse_matmul
from ..data.scenario import CDRScenario
from ..graph import BipartiteGraph
from ..nn import Embedding, Linear, Module
from ..optim import Adam
from .base import BaselineConfig, BaselineRecommender, EdgeSampler, MergedScorerMixin


class GraphPropagationEncoder(Module):
    """Multi-layer GCN propagation over the joint (user + item) adjacency."""

    def __init__(self, num_users: int, num_items: int, config: BaselineConfig,
                 use_weights: bool = True):
        super().__init__()
        self.config = config
        self.num_users = num_users
        self.num_items = num_items
        rng = np.random.default_rng(config.seed)
        self.embedding = Embedding(num_users + num_items, config.embedding_dim, rng=rng)
        self.use_weights = use_weights
        self.layer_weights: List[Linear] = []
        if use_weights:
            for layer in range(config.num_layers):
                weight = Linear(config.embedding_dim, config.embedding_dim, bias=False, rng=rng)
                self.register_module(f"layer_weight_{layer}", weight)
                self.layer_weights.append(weight)

    def encode(self, graph: BipartiteGraph) -> Tensor:
        """Return (num_users + num_items, dim * (layers + 1)) representations."""
        adjacency = graph.joint_normalized_adjacency()
        hidden = self.embedding.all()
        outputs = [hidden]
        for layer in range(self.config.num_layers):
            hidden = sparse_matmul(adjacency, hidden)
            if self.use_weights:
                hidden = ops.leaky_relu(self.layer_weights[layer](hidden), 0.1)
            outputs.append(hidden)
        return ops.concat(outputs, axis=-1)


class NGCF(MergedScorerMixin, BaselineRecommender):
    """NGCF trained on the merged single-domain view."""

    name = "NGCF"

    def __init__(self, config: Optional[BaselineConfig] = None):
        self.config = config if config is not None else BaselineConfig()
        self.encoder: Optional[GraphPropagationEncoder] = None
        self._user_repr: Optional[np.ndarray] = None
        self._item_repr: Optional[np.ndarray] = None

    def fit(self, scenario: CDRScenario) -> "NGCF":
        merged = self._prepare_merged(scenario)
        graph = merged.graph
        cfg = self.config
        self.encoder = GraphPropagationEncoder(graph.num_users, graph.num_items, cfg)
        optimizer = Adam(self.encoder.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        sampler = EdgeSampler(graph, cfg.batch_size, cfg.num_negatives, seed=cfg.seed)
        self.encoder.train()
        for _ in range(cfg.epochs):
            for _ in range(sampler.steps_per_epoch()):
                batch = sampler.sample()
                if batch is None:
                    break
                users, positives, negatives = batch
                optimizer.zero_grad()
                representations = self.encoder.encode(graph)
                loss = _bpr_from_joint(representations, graph.num_users,
                                       users, positives, negatives)
                loss.backward()
                optimizer.step()
        self.encoder.eval()
        final = self.encoder.encode(graph).data
        self._user_repr = final[: graph.num_users]
        self._item_repr = final[graph.num_users:]
        return self

    def scorer(self, source: str, target: str):
        if self._user_repr is None:
            raise RuntimeError("call fit() before scorer()")

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return np.sum(self._user_repr[users] * self._item_repr[items], axis=-1)

        return self.make_merged_scorer(score, source, target)


class PPGN(BaselineRecommender):
    """Preference Propagation GraphNet: shared users, one graph encoder per domain."""

    name = "PPGN"

    def __init__(self, config: Optional[BaselineConfig] = None):
        self.config = config if config is not None else BaselineConfig()
        self._scenario: Optional[CDRScenario] = None
        self._repr: Dict[str, Dict[str, np.ndarray]] = {}

    def fit(self, scenario: CDRScenario) -> "PPGN":
        cfg = self.config
        self._scenario = scenario
        rng = np.random.default_rng(cfg.seed)

        # Shared user embedding indexed by a merged user id.
        merged_index: Dict[object, int] = {}
        per_domain_user_map: Dict[str, np.ndarray] = {}
        for domain in (scenario.domain_x, scenario.domain_y):
            mapping = np.zeros(domain.num_users, dtype=np.int64)
            for key, idx in domain.user_index.items():
                if key not in merged_index:
                    merged_index[key] = len(merged_index)
                mapping[idx] = merged_index[key]
            per_domain_user_map[domain.name] = mapping
        self._user_map = per_domain_user_map

        shared_users = Embedding(len(merged_index), cfg.embedding_dim, rng=rng)
        item_embeddings = {
            domain.name: Embedding(domain.num_items, cfg.embedding_dim, rng=rng)
            for domain in (scenario.domain_x, scenario.domain_y)
        }
        propagators = {
            domain.name: GraphPropagationEncoder(domain.num_users, domain.num_items, cfg,
                                                 use_weights=False)
            for domain in (scenario.domain_x, scenario.domain_y)
        }

        container = Module()
        container.shared_users = shared_users
        for name, emb in item_embeddings.items():
            container.register_module(f"items_{name}", emb)
        for index, (name, encoder) in enumerate(propagators.items()):
            for layer_index, layer in enumerate(encoder.layer_weights):
                container.register_module(f"prop_{index}_{layer_index}", layer)

        optimizer = Adam(container.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        samplers = {
            domain.name: EdgeSampler(domain.graph, cfg.batch_size, cfg.num_negatives,
                                     seed=cfg.seed + offset)
            for offset, domain in enumerate((scenario.domain_x, scenario.domain_y))
        }

        def encode(domain) -> tuple:
            """Propagate shared user rows + domain item rows over the domain graph."""
            adjacency = domain.graph.joint_normalized_adjacency()
            users = shared_users.all()[per_domain_user_map[domain.name]]
            items = item_embeddings[domain.name].all()
            hidden = ops.concat([users, items], axis=0)
            outputs = [hidden]
            for _ in range(cfg.num_layers):
                hidden = sparse_matmul(adjacency, hidden)
                outputs.append(hidden)
            final = ops.concat(outputs, axis=-1)
            return final, domain.graph.num_users

        steps = max(s.steps_per_epoch() for s in samplers.values())
        for _ in range(cfg.epochs):
            for _ in range(steps):
                optimizer.zero_grad()
                total = None
                for domain in (scenario.domain_x, scenario.domain_y):
                    batch = samplers[domain.name].sample()
                    if batch is None:
                        continue
                    users, positives, negatives = batch
                    representations, num_users = encode(domain)
                    loss = _bpr_from_joint(representations, num_users,
                                           users, positives, negatives)
                    total = loss if total is None else ops.add(total, loss)
                if total is None:
                    continue
                total.backward()
                optimizer.step()

        # Cache final representations for scoring.
        for domain in (scenario.domain_x, scenario.domain_y):
            representations, num_users = encode(domain)
            data = representations.data
            self._repr[domain.name] = {
                "users": data[:num_users],
                "items": data[num_users:],
                "shared_users": shared_users.weight.data,
            }
        self._shared_user_index = merged_index
        return self

    def scorer(self, source: str, target: str):
        if not self._repr:
            raise RuntimeError("call fit() before scorer()")
        scenario = self._scenario
        source_domain = scenario.domain(source)
        reverse_source = {idx: key for key, idx in source_domain.user_index.items()}
        target_items = self._repr[target]["items"]
        source_users = self._repr[source]["users"]
        # A cold-start user has no edges in the target graph, so their
        # propagated target-side representation reduces to the shared
        # embedding; we score with the source-side propagated representation,
        # which is dimension-compatible because both domains concatenate the
        # same number of layers.

        def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
            return np.sum(source_users[users] * target_items[items], axis=-1)

        return score


def _bpr_from_joint(representations: Tensor, num_users: int, users: np.ndarray,
                    positives: np.ndarray, negatives: np.ndarray) -> Tensor:
    """BPR loss where users and items share one stacked representation matrix."""
    num_negatives = negatives.shape[1]
    repeated_users = np.repeat(users, num_negatives)
    repeated_pos = np.repeat(positives, num_negatives)
    flat_negatives = negatives.reshape(-1)
    user_vec = representations[repeated_users]
    pos_vec = representations[num_users + repeated_pos]
    neg_vec = representations[num_users + flat_negatives]
    pos_scores = ops.dot_rows(user_vec, pos_vec)
    neg_scores = ops.dot_rows(user_vec, neg_vec)
    return ops.neg(ops.mean(ops.log_sigmoid(ops.sub(pos_scores, neg_scores))))
