"""Module/Parameter abstractions mirroring the small subset of ``torch.nn``
that the CDRIB models need.

A :class:`Module` owns :class:`Parameter` tensors and child modules;
``parameters()`` walks the tree so optimizers can update every learnable
tensor, and ``train()`` / ``eval()`` toggle stochastic layers (dropout,
reparameterised sampling).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..autograd import Tensor


class Parameter(Tensor):
    """A tensor that is registered as learnable by its owning module."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural building blocks.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for parameter iteration,
    state saving and train/eval mode switching.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, key, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs for this module and children."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        """Yield every learnable parameter in the module tree."""
        for _, param in self.named_parameters():
            yield param

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # Mode / gradient management
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout and sampling)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # State (de)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a copy of all parameter arrays keyed by dotted names."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.copy()

    def save_state(self, path: str, manifest: Optional[Dict[str, object]] = None) -> str:
        """Persist :meth:`state_dict` as a checkpoint directory (``repro.io``).

        The shared save path for every model in the repository — CDRIB and
        all the baselines go through the same versioned npz + manifest
        format; see :mod:`repro.io.checkpoint`.
        """
        from ..io import save_module  # local import: io depends on nn

        return save_module(path, self, manifest=manifest)

    def load_state(self, path: str, strict: bool = True) -> None:
        """Load parameters saved by :meth:`save_state` (checksum-verified)."""
        from ..io import load_module  # local import: io depends on nn

        load_module(path, self, strict=strict)

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
