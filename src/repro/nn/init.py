"""Weight initialisation helpers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], gain: float = 1.0,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _compute_fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return generator.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], gain: float = 1.0,
                  rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    generator = rng if rng is not None else np.random.default_rng()
    fan_in, fan_out = _compute_fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return generator.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.01,
           rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Plain Gaussian initialisation (the usual choice for embedding tables)."""
    generator = rng if rng is not None else np.random.default_rng()
    return generator.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def _compute_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
