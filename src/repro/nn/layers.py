"""Standard neural-network layers built on the autograd substrate."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..autograd import Tensor, ops
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    bias:
        Whether to include the additive bias term.
    rng:
        Generator used for Xavier initialisation (keeps runs reproducible).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng),
                                name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out


class Embedding(Module):
    """Lookup table of dense vectors, one per discrete id.

    The embedding layer of CDRIB (Section III-A) is four such tables, one per
    user/item set per domain.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, std: float = 0.1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=std, rng=rng),
                                name="weight")

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return ops.index_select(self.weight, indices)

    def all(self) -> Tensor:
        """Return the full table as a tensor (used by full-graph encoders)."""
        return self.weight


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.0, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, training=self.training, rng=self._rng)


class Activation(Module):
    """Wrap a functional activation as a module for use in Sequential."""

    _FUNCTIONS: dict = {
        "sigmoid": ops.sigmoid,
        "tanh": ops.tanh,
        "relu": ops.relu,
        "leaky_relu": ops.leaky_relu,
        "softplus": ops.softplus,
        "identity": lambda x: x,
    }

    def __init__(self, name: str = "relu", **kwargs):
        super().__init__()
        if name not in self._FUNCTIONS:
            raise ValueError(f"unknown activation {name!r}; choose from {sorted(self._FUNCTIONS)}")
        self.name = name
        self._kwargs = kwargs

    def forward(self, x: Tensor) -> Tensor:
        return self._FUNCTIONS[self.name](x, **self._kwargs)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self.register_module(f"layer_{index}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self):
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with a configurable hidden activation.

    Used both for the EMCDR mapping function (F -> 2F -> F as in the paper's
    setup) and for the contrastive discriminator D (three-layer MLP,
    Eq. 15).
    """

    def __init__(self, dims: Sequence[int], activation: str = "relu",
                 final_activation: Optional[str] = None, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least an input and an output dimension")
        self.dims = list(dims)
        layers: list = []
        for index in range(len(dims) - 1):
            layers.append(Linear(dims[index], dims[index + 1], rng=rng))
            is_last = index == len(dims) - 2
            if not is_last:
                layers.append(Activation(activation))
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
            elif final_activation is not None:
                layers.append(Activation(final_activation))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
