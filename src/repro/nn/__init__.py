"""Minimal neural-network layer library on top of :mod:`repro.autograd`."""

from . import init
from .layers import MLP, Activation, Dropout, Embedding, Linear, Sequential
from .module import Module, Parameter

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "Activation",
    "Sequential",
    "MLP",
    "init",
]
