"""Leave-one-out evaluation protocol for cold-start cross-domain recommendation.

For every held-out interaction (cold-start user, ground-truth target item)
the protocol samples ``num_negatives`` target-domain items the user never
interacted with, scores the 1 + ``num_negatives`` candidates with the model
under evaluation and records the rank of the ground truth (Section IV-B1;
the paper uses 999 negatives).

Models plug in through a single callable::

    scorer(source_user_indices, target_item_indices) -> scores

where both arrays have equal length (pairwise scoring).  Every model in this
repository — CDRIB, its ablation variants and all baselines — exposes such a
scorer, so the protocol code is shared.

Scoring is *batched*: all candidate lists of a direction are assembled first
(with the same RNG stream as the historical per-record loop, so sampled
negatives are unchanged) and then scored in a small number of large scorer
calls, which is dramatically faster for vectorized scorers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.scenario import CDRScenario, ColdStartUser, DirectionSplit, Domain
from .metrics import RankingMetrics, aggregate_ranks, rank_of_positive

Scorer = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass
class EvaluationRecord:
    """Rank outcome of one held-out interaction (used for grouping / t-tests)."""

    user_key: object
    source_user: int
    target_item: int
    source_degree: int
    rank: int


@dataclass
class DirectionResult:
    """Evaluation outcome for one transfer direction."""

    source: str
    target: str
    split_name: str
    metrics: RankingMetrics
    records: List[EvaluationRecord] = field(default_factory=list)

    def reciprocal_ranks(self) -> np.ndarray:
        """Per-record reciprocal ranks, aligned with ``records`` (t-test input)."""
        return np.array([1.0 / record.rank for record in self.records])


class LeaveOneOutEvaluator:
    """Evaluate scorers on the cold-start users of a scenario."""

    def __init__(self, scenario: CDRScenario, num_negatives: int = 999, seed: int = 0,
                 max_users_per_direction: Optional[int] = None):
        self.scenario = scenario
        self.num_negatives = num_negatives
        self.seed = seed
        self.max_users_per_direction = max_users_per_direction
        # Negative candidates must exclude *all* of the user's target-domain
        # interactions (train + held-out), i.e. the full edge set.
        self._full_item_sets: Dict[str, Dict[object, set]] = {}
        for domain in (scenario.domain_x, scenario.domain_y):
            per_user: Dict[object, set] = {}
            reverse = {idx: key for key, idx in domain.user_index.items()}
            for user_idx, item_idx in domain.all_edges:
                key = reverse[int(user_idx)]
                per_user.setdefault(key, set()).add(int(item_idx))
            self._full_item_sets[domain.name] = per_user

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def evaluate_direction(self, scorer: Scorer, source: str, target: str,
                           split_name: str = "test") -> DirectionResult:
        """Evaluate one transfer direction on its validation or test users."""
        direction = self.scenario.direction(source, target)
        users = self._select_users(direction, split_name)
        target_domain = self.scenario.domain(target)
        rng = np.random.default_rng(self.seed)

        # Candidate lists are assembled in the same order as the historical
        # per-record loop so the RNG stream — and therefore every sampled
        # negative — is unchanged; records are then scored in large batched
        # scorer calls, flushed whenever the buffered pair count reaches
        # ``score_chunk_size`` so peak memory stays bounded at paper scale.
        records: List[EvaluationRecord] = []
        pending_candidates: List[np.ndarray] = []
        pending_meta: List[Tuple[object, int, int, int]] = []
        pending_pairs = 0

        def flush() -> None:
            nonlocal pending_candidates, pending_meta, pending_pairs
            if not pending_meta:
                return
            lengths = np.array([c.shape[0] for c in pending_candidates])
            user_column = np.repeat(
                np.array([meta[1] for meta in pending_meta], dtype=np.int64),
                lengths,
            )
            all_scores = np.asarray(
                scorer(user_column, np.concatenate(pending_candidates)),
                dtype=np.float64,
            )
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            for i, (user_key, source_user, item, degree) in enumerate(pending_meta):
                scores = all_scores[offsets[i]:offsets[i + 1]]
                records.append(EvaluationRecord(
                    user_key=user_key,
                    source_user=source_user,
                    target_item=item,
                    source_degree=degree,
                    rank=rank_of_positive(scores, positive_index=0),
                ))
            pending_candidates, pending_meta, pending_pairs = [], [], 0

        for user in users:
            banned = self._full_item_sets[target].get(user.user_key, set())
            for item in user.target_items:
                negatives = self._sample_negatives(
                    rng, target_domain.num_items, banned, self.num_negatives
                )
                pending_candidates.append(np.concatenate(([int(item)], negatives)))
                pending_meta.append((user.user_key, user.source_user, int(item),
                                     user.source_degree))
                pending_pairs += pending_candidates[-1].shape[0]
                if pending_pairs >= self.score_chunk_size:
                    flush()
        flush()
        metrics = aggregate_ranks([record.rank for record in records])
        return DirectionResult(source=source, target=target, split_name=split_name,
                               metrics=metrics, records=records)

    def evaluate_bidirectional(self, scorers: Dict[str, Scorer],
                               split_name: str = "test") -> Dict[str, DirectionResult]:
        """Evaluate both directions; ``scorers`` is keyed by target-domain name."""
        results = {}
        for split in self.scenario.directions:
            scorer = scorers[split.target]
            results[split.target] = self.evaluate_direction(
                scorer, split.source, split.target, split_name
            )
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    # Buffered (user, item) pairs are scored and released once their count
    # reaches this cap, bounding peak memory at paper scale (999 negatives x
    # thousands of records) without changing any result.  Chunks align with
    # record boundaries, so a record's candidates are never split across
    # scorer calls.
    score_chunk_size: int = 262144

    def _select_users(self, direction: DirectionSplit, split_name: str
                      ) -> Sequence[ColdStartUser]:
        if split_name == "test":
            users = direction.test
        elif split_name in ("valid", "validation"):
            users = direction.validation
        elif split_name == "all":
            users = direction.validation + direction.test
        else:
            raise ValueError(f"unknown split {split_name!r}")
        if self.max_users_per_direction is not None:
            users = users[: self.max_users_per_direction]
        return users

    @staticmethod
    def _sample_negatives(rng: np.random.Generator, num_items: int, banned: set,
                          count: int) -> np.ndarray:
        """Draw ``count`` candidate negatives, always consuming the stream.

        The exhausted-pool branch (``count >= available``) consumes one
        permutation of the complement instead of returning it untouched, so
        the generator advances for *every* record: later records' draws no
        longer depend on whether an earlier record's candidate pool happened
        to be exhausted, and the complement comes back in unbiased draw
        order rather than ascending index order (the rejection path's
        convention).  Note this is a deliberate stream change: small-catalog
        metrics shift relative to releases that skipped the RNG here.
        """
        available = num_items - len(banned)
        if available <= 0:
            raise ValueError("no negative candidates available for evaluation")
        if count >= available:
            complement = np.setdiff1d(
                np.arange(num_items),
                np.fromiter(banned, dtype=np.int64, count=len(banned)),
            )
            return rng.permutation(complement)
        negatives: List[int] = []
        seen = set(banned)
        while len(negatives) < count:
            draws = rng.integers(0, num_items, size=(count - len(negatives)) * 2)
            for item in draws:
                item = int(item)
                if item in seen:
                    continue
                seen.add(item)
                negatives.append(item)
                if len(negatives) == count:
                    break
        return np.asarray(negatives, dtype=np.int64)


def random_scorer(seed: int = 0) -> Scorer:
    """A scorer that ranks candidates randomly — the sanity-check baseline."""
    rng = np.random.default_rng(seed)

    def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return rng.random(len(items))

    return score


def popularity_scorer(domain: Domain) -> Scorer:
    """Score items by their training popularity (a non-personalised baseline)."""
    degrees = domain.graph.item_degrees().astype(np.float64)

    def score(users: np.ndarray, items: np.ndarray) -> np.ndarray:
        return degrees[np.asarray(items)]

    return score
