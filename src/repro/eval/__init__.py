"""Evaluation protocol, ranking metrics and statistical testing."""

from .groups import PAPER_INTERACTION_BUCKETS, GroupResult, group_by_interaction_count
from .metrics import (
    RankingMetrics,
    aggregate_ranks,
    hit_rate_at_k,
    ndcg_at_k,
    rank_of_positive,
    recall_against_exact,
    reciprocal_rank,
)
from .protocol import (
    DirectionResult,
    EvaluationRecord,
    LeaveOneOutEvaluator,
    Scorer,
    popularity_scorer,
    random_scorer,
)
from .significance import SignificanceResult, paired_t_test, paired_t_test_ranks

__all__ = [
    "RankingMetrics",
    "aggregate_ranks",
    "reciprocal_rank",
    "ndcg_at_k",
    "hit_rate_at_k",
    "rank_of_positive",
    "recall_against_exact",
    "LeaveOneOutEvaluator",
    "DirectionResult",
    "EvaluationRecord",
    "Scorer",
    "random_scorer",
    "popularity_scorer",
    "GroupResult",
    "group_by_interaction_count",
    "PAPER_INTERACTION_BUCKETS",
    "SignificanceResult",
    "paired_t_test",
    "paired_t_test_ranks",
]
