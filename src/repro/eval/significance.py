"""Statistical significance testing between two evaluated models.

The paper marks improvements that are significant under a paired t-test at
p < 0.05 against the runner-up.  The natural pairing unit is the per-record
reciprocal rank: both models are evaluated on the identical held-out
records, so their reciprocal-rank vectors are aligned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .protocol import DirectionResult


@dataclass
class SignificanceResult:
    """Outcome of a paired t-test between two models on one direction."""

    t_statistic: float
    p_value: float
    mean_difference: float
    significant: bool

    @property
    def better(self) -> bool:
        """True when the first model is better on average."""
        return self.mean_difference > 0


def paired_t_test_ranks(ranks_a: np.ndarray, ranks_b: np.ndarray,
                        alpha: float = 0.05) -> SignificanceResult:
    """Paired t-test on two aligned per-record reciprocal-rank vectors.

    This is the array-level core of :func:`paired_t_test`, exposed so that
    callers holding archived rank vectors (for example the experiment-suite
    aggregator, whose per-job artifacts store reciprocal ranks as JSON lists)
    can test significance without re-running any evaluation.  Both vectors
    must cover the identical record set in the identical order; a length
    mismatch indicates they do not and raises.
    """
    ranks_a = np.asarray(ranks_a, dtype=np.float64)
    ranks_b = np.asarray(ranks_b, dtype=np.float64)
    if ranks_a.shape != ranks_b.shape:
        raise ValueError(
            "paired t-test requires evaluations over identical record sets "
            f"(got {ranks_a.shape[0]} vs {ranks_b.shape[0]} records)"
        )
    difference = ranks_a - ranks_b
    if np.allclose(difference, 0):
        return SignificanceResult(t_statistic=0.0, p_value=1.0,
                                  mean_difference=0.0, significant=False)
    t_statistic, p_value = stats.ttest_rel(ranks_a, ranks_b)
    return SignificanceResult(
        t_statistic=float(t_statistic),
        p_value=float(p_value),
        mean_difference=float(difference.mean()),
        significant=bool(p_value < alpha),
    )


def paired_t_test(result_a: DirectionResult, result_b: DirectionResult,
                  alpha: float = 0.05) -> SignificanceResult:
    """Paired t-test on per-record reciprocal ranks of two evaluations.

    Both results must come from the same evaluator (same records in the same
    order); a length mismatch indicates they do not and raises.
    """
    return paired_t_test_ranks(result_a.reciprocal_ranks(),
                               result_b.reciprocal_ranks(), alpha=alpha)
