"""Per-group evaluation by source-domain interaction count (Table IX)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .metrics import RankingMetrics, aggregate_ranks
from .protocol import DirectionResult, EvaluationRecord

# The paper buckets cold-start users by how many interactions they have in
# their source domain.
PAPER_INTERACTION_BUCKETS: Tuple[Tuple[int, int], ...] = (
    (5, 10), (11, 20), (21, 30), (31, 40), (41, 50),
)


@dataclass
class GroupResult:
    """Metrics for one interaction-count bucket."""

    low: int
    high: int
    metrics: RankingMetrics

    @property
    def label(self) -> str:
        """The bucket's display label as used in Table IX (e.g. ``"6-10"``)."""
        return f"{self.low}-{self.high}"


def group_by_interaction_count(result: DirectionResult,
                               buckets: Sequence[Tuple[int, int]] = PAPER_INTERACTION_BUCKETS
                               ) -> List[GroupResult]:
    """Bucket a direction's evaluation records by source-domain degree.

    Records whose degree falls outside every bucket (e.g. >50 interactions)
    are ignored, matching the paper's table which only reports the listed
    ranges.
    """
    grouped: Dict[Tuple[int, int], List[EvaluationRecord]] = {b: [] for b in buckets}
    for record in result.records:
        for low, high in buckets:
            if low <= record.source_degree <= high:
                grouped[(low, high)].append(record)
                break
    results = []
    for (low, high), records in grouped.items():
        metrics = aggregate_ranks([record.rank for record in records])
        results.append(GroupResult(low=low, high=high, metrics=metrics))
    return results
