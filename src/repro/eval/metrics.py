"""Ranking metrics: MRR, NDCG@k and HR@k (Section IV-B1).

All metrics operate on the *rank* of the single ground-truth item within its
candidate list (1-based), matching the leave-one-out protocol where every
evaluation record contains exactly one positive among 1000 candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

import numpy as np

DEFAULT_NDCG_CUTOFFS = (5, 10)
DEFAULT_HR_CUTOFFS = (1, 5, 10)


def reciprocal_rank(rank: int) -> float:
    """MRR contribution of one record."""
    if rank < 1:
        raise ValueError("ranks are 1-based and must be >= 1")
    return 1.0 / rank


def ndcg_at_k(rank: int, k: int) -> float:
    """NDCG@k for a single relevant item: 1/log2(rank+1) if rank <= k else 0."""
    if rank < 1:
        raise ValueError("ranks are 1-based and must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    if rank > k:
        return 0.0
    return 1.0 / np.log2(rank + 1)


def hit_rate_at_k(rank: int, k: int) -> float:
    """HR@k for a single relevant item: 1 if the item is ranked within top-k."""
    if rank < 1:
        raise ValueError("ranks are 1-based and must be >= 1")
    if k < 1:
        raise ValueError("k must be >= 1")
    return 1.0 if rank <= k else 0.0


def recall_against_exact(approx_items: np.ndarray,
                         exact_items: np.ndarray) -> float:
    """Mean per-row recall of an approximate top-K against the exact top-K.

    Both arguments are (batch, k) item-id arrays as returned by
    ``TopKIndex.top_k`` — ``exact_items`` from the brute-force backend,
    ``approx_items`` from an approximate one (e.g. IVF).  Row ``i``
    contributes ``|approx_i ∩ exact_i| / |exact_i|``; ``-1`` padding slots
    (rows with fewer than ``k`` candidates) are ignored on both sides, and
    rows whose exact list is entirely padding are skipped.  Returns a float
    in [0, 1]; 1.0 means the approximate index surfaced every exact top-K
    item (recall@k), the quantity gated by
    ``benchmarks/test_ann_retrieval.py``.
    """
    approx = np.atleast_2d(np.asarray(approx_items, dtype=np.int64))
    exact = np.atleast_2d(np.asarray(exact_items, dtype=np.int64))
    if approx.shape[0] != exact.shape[0]:
        raise ValueError(
            f"row mismatch: approx has {approx.shape[0]} rows, "
            f"exact has {exact.shape[0]}")
    recalls = []
    for row in range(exact.shape[0]):
        truth = exact[row][exact[row] >= 0]
        if truth.size == 0:
            continue
        found = approx[row][approx[row] >= 0]
        recalls.append(np.isin(truth, found).mean())
    return float(np.mean(recalls)) if recalls else 0.0


def rank_of_positive(scores: np.ndarray, positive_index: int = 0,
                     tie_break: str = "pessimistic") -> int:
    """Rank (1-based) of ``scores[positive_index]`` within ``scores``.

    ``tie_break`` controls how equal scores are handled: ``"pessimistic"``
    counts ties against the positive (the conservative choice used in most
    published evaluation code), ``"optimistic"`` counts them in its favour.
    """
    positive_score = scores[positive_index]
    others = np.delete(scores, positive_index)
    if tie_break == "pessimistic":
        better = np.sum(others >= positive_score)
    elif tie_break == "optimistic":
        better = np.sum(others > positive_score)
    else:
        raise ValueError(f"unknown tie_break mode {tie_break!r}")
    return int(better) + 1


@dataclass
class RankingMetrics:
    """Aggregated metrics over a set of evaluation records."""

    mrr: float
    ndcg: Dict[int, float]
    hit_rate: Dict[int, float]
    num_records: int

    def as_dict(self, percentage: bool = True) -> Dict[str, float]:
        """Flatten to a {metric_name: value} dict, optionally in percent."""
        scale = 100.0 if percentage else 1.0
        flat = {"MRR": self.mrr * scale}
        for k, value in sorted(self.ndcg.items()):
            flat[f"NDCG@{k}"] = value * scale
        for k, value in sorted(self.hit_rate.items()):
            flat[f"HR@{k}"] = value * scale
        flat["records"] = self.num_records
        return flat


def aggregate_ranks(ranks: Sequence[int],
                    ndcg_cutoffs: Iterable[int] = DEFAULT_NDCG_CUTOFFS,
                    hr_cutoffs: Iterable[int] = DEFAULT_HR_CUTOFFS) -> RankingMetrics:
    """Compute MRR / NDCG@k / HR@k from a list of 1-based ranks."""
    ranks = list(ranks)
    if not ranks:
        return RankingMetrics(mrr=0.0, ndcg={k: 0.0 for k in ndcg_cutoffs},
                              hit_rate={k: 0.0 for k in hr_cutoffs}, num_records=0)
    mrr = float(np.mean([reciprocal_rank(r) for r in ranks]))
    ndcg = {k: float(np.mean([ndcg_at_k(r, k) for r in ranks])) for k in ndcg_cutoffs}
    hit = {k: float(np.mean([hit_rate_at_k(r, k) for r in ranks])) for k in hr_cutoffs}
    return RankingMetrics(mrr=mrr, ndcg=ndcg, hit_rate=hit, num_records=len(ranks))
