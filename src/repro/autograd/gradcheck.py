"""Numerical gradient checking used by the test-suite.

``check_gradients`` compares the analytic gradient produced by the autograd
engine against central finite differences, which is the canonical way to
validate a hand-written backward pass.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of ``fn`` w.r.t. ``inputs[index]``.

    ``fn`` must return a scalar tensor.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(*inputs).item()
        flat[i] = original - eps
        minus = fn(*inputs).item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> bool:
    """Return True when analytic and numerical gradients agree for all inputs.

    Raises ``AssertionError`` with a diagnostic message otherwise, so it can
    be used directly inside tests.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    if output.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    output.backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs diff {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
