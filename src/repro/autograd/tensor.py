"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate of the CDRIB reproduction.  The
original paper relies on PyTorch; since no deep-learning framework is
available in this environment we provide a small but complete autograd
engine: a :class:`Tensor` wrapping an ``numpy.ndarray`` together with the
graph bookkeeping needed to back-propagate gradients through arbitrary
compositions of the operations defined in :mod:`repro.autograd.ops`.

The design follows the familiar define-by-run style: every operation creates
a new :class:`Tensor` that records its parents and a closure computing the
local vector-Jacobian product.  Calling :meth:`Tensor.backward` performs a
topological sort of the recorded graph and accumulates gradients into the
``grad`` attribute of every tensor with ``requires_grad=True``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_DEFAULT_DTYPE = np.float64

# Global switch used by ``no_grad`` to cheaply disable graph construction
# (e.g. during evaluation).
_GRAD_ENABLED = True

# Monotone creation counter: in a define-by-run engine parents are always
# created before their children, so descending creation order *is* a valid
# reverse-topological order — backward() exploits this instead of a DFS sort.
_SEQ_COUNTER = 0


class no_grad:
    """Context manager *and* decorator that disables gradient tracking.

    Mirrors ``torch.no_grad``: any tensor created inside the block does not
    record parents, so evaluation code cannot accidentally keep the whole
    training graph alive.  Applied to a function (``@no_grad()``), the whole
    call runs with gradients disabled — used by the serving fast paths.
    """

    def __call__(self, fn):
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        return wrapper

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether tensors currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting implicitly expands operands; the corresponding
    gradient must therefore be summed over the expanded axes before being
    accumulated into the original operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were of size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _node_seq(node: "Tensor") -> int:
    return node._seq


def _as_array(data: ArrayLike, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


class Tensor:
    """A numpy-backed tensor that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` by default.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    parents:
        Tensors this value was computed from (internal use).
    backward_fn:
        Closure receiving the upstream gradient and returning one gradient
        array (or ``None``) per parent (internal use).
    name:
        Optional human-readable label, useful when debugging graphs.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn",
                 "name", "_seq")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward_fn: Optional[Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]]] = None,
        name: str = "",
    ):
        global _SEQ_COUNTER
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        if _GRAD_ENABLED:
            self._parents = tuple(parents)
            self._backward_fn = backward_fn
        else:
            self._parents = ()
            self._backward_fn = None
        _SEQ_COUNTER += 1
        self._seq = _SEQ_COUNTER
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def needs_grad(self) -> bool:
        """Whether backward must flow through this tensor.

        True for leaf tensors with ``requires_grad`` and for any tensor
        recorded with parents (an interior graph node).  Operations use this
        to skip graph bookkeeping for purely constant subtrees.
        """
        return self.requires_grad or bool(self._parents)

    @property
    def T(self) -> "Tensor":
        from . import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a scalar tensor as a Python float."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a detached copy of this tensor."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd machinery
    # ------------------------------------------------------------------ #
    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1.0`` which is only valid for
            scalar tensors (matching PyTorch's behaviour).
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only supported "
                    f"for scalar tensors, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        order = self._topological_order()
        grads = {id(self): grad.copy()}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node._accumulate_grad(node_grad)
            if node._backward_fn is None or not node._parents:
                continue
            parent_grads = node._backward_fn(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                parent_data = parent.data
                # Fast path: backward closures overwhelmingly return a
                # ready-to-accumulate ndarray of the parent's exact shape
                # and dtype; skip the coercion/unbroadcast machinery then.
                if not (type(pgrad) is np.ndarray
                        and pgrad.shape == parent_data.shape
                        and pgrad.dtype == parent_data.dtype):
                    pgrad = _unbroadcast(
                        np.asarray(pgrad, dtype=parent_data.dtype), parent_data.shape
                    )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> list:
        """Return nodes reachable from ``self`` in reverse topological order.

        Parents are created strictly before their children, so sorting the
        reachable set by descending creation sequence yields children-before-
        parents order without the post-order DFS bookkeeping.
        """
        visited = {id(self)}
        nodes = [self]
        stack = [self]
        while stack:
            node = stack.pop()
            for parent in node._parents:
                key = id(parent)
                if key not in visited:
                    visited.add(key)
                    nodes.append(parent)
                    stack.append(parent)
        nodes.sort(key=_node_seq, reverse=True)
        return nodes

    # ------------------------------------------------------------------ #
    # Operator overloads (implemented in ops.py to avoid circular logic)
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(other, self)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent):
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops

        return ops.index_select(self, index)

    # Convenience wrappers --------------------------------------------------
    def sum(self, axis=None, keepdims=False):
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from . import ops

        return ops.transpose(self, axes)

    def exp(self):
        from . import ops

        return ops.exp(self)

    def log(self):
        from . import ops

        return ops.log(self)

    def sqrt(self):
        from . import ops

        return ops.sqrt(self)

    def sigmoid(self):
        from . import ops

        return ops.sigmoid(self)

    def tanh(self):
        from . import ops

        return ops.tanh(self)

    def clip(self, low, high):
        from . import ops

        return ops.clip(self, low, high)


def as_tensor(value: Union[Tensor, ArrayLike], requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    """Return a tensor of zeros with the given shape."""
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    """Return a tensor of ones with the given shape."""
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
          requires_grad: bool = False) -> Tensor:
    """Return a tensor of normal samples, optionally scaled."""
    generator = rng if rng is not None else np.random.default_rng()
    data = generator.standard_normal(shape) * scale
    return Tensor(data, requires_grad=requires_grad)
