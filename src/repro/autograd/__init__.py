"""Numpy-based reverse-mode autodiff substrate for the CDRIB reproduction."""

from . import ops
from .gradcheck import check_gradients, numerical_gradient
from .sparse import (
    row_normalize,
    sparse_matmul,
    sparse_propagate,
    sparse_propagate_grad,
    symmetric_normalize,
)
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, ones, randn, zeros

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "zeros",
    "ones",
    "randn",
    "ops",
    "sparse_matmul",
    "sparse_propagate",
    "sparse_propagate_grad",
    "row_normalize",
    "symmetric_normalize",
    "check_gradients",
    "numerical_gradient",
]
