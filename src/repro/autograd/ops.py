"""Differentiable operations on :class:`repro.autograd.Tensor`.

Every function takes tensors (or array-likes, which are promoted to constant
tensors) and returns a new tensor wired into the autograd graph.  The
backward closures return one gradient per parent, in the order the parents
were registered; broadcasting is handled centrally by the engine.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

ArrayLike = Union[Tensor, np.ndarray, float, int, Sequence]


def _make(data, parents, backward_fn, requires_grad=None) -> Tensor:
    """Create a result tensor, skipping graph bookkeeping when possible."""
    if requires_grad is None:
        requires_grad = any(p.needs_grad for p in parents)
    if not is_grad_enabled() or not requires_grad:
        return Tensor(data)
    return Tensor(data, parents=parents, backward_fn=backward_fn)


# --------------------------------------------------------------------------- #
# Elementwise arithmetic
# --------------------------------------------------------------------------- #
def add(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise addition with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data + b.data
    return _make(out, (a, b), lambda g: (g, g))


def sub(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise subtraction with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data - b.data
    return _make(out, (a, b), lambda g: (g, -g))


def mul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise multiplication with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data * b.data
    return _make(out, (a, b), lambda g: (g * b.data, g * a.data))


def div(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise division with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data / b.data
    return _make(out, (a, b), lambda g: (g / b.data, -g * a.data / (b.data ** 2)))


def neg(a: ArrayLike) -> Tensor:
    """Elementwise negation."""
    a = as_tensor(a)
    return _make(-a.data, (a,), lambda g: (-g,))


def power(a: ArrayLike, exponent: float) -> Tensor:
    """Raise ``a`` to a constant ``exponent`` elementwise."""
    a = as_tensor(a)
    out = a.data ** exponent
    return _make(out, (a,), lambda g: (g * exponent * a.data ** (exponent - 1),))


def exp(a: ArrayLike) -> Tensor:
    """Elementwise exponential."""
    a = as_tensor(a)
    out = np.exp(a.data)
    return _make(out, (a,), lambda g: (g * out,))


def log(a: ArrayLike, eps: float = 0.0) -> Tensor:
    """Elementwise natural logarithm (optionally of ``a + eps``)."""
    a = as_tensor(a)
    shifted = a.data + eps
    out = np.log(shifted)
    return _make(out, (a,), lambda g: (g / shifted,))


def sqrt(a: ArrayLike) -> Tensor:
    """Elementwise square root."""
    a = as_tensor(a)
    out = np.sqrt(a.data)
    return _make(out, (a,), lambda g: (g * 0.5 / np.maximum(out, 1e-12),))


def abs(a: ArrayLike) -> Tensor:  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value."""
    a = as_tensor(a)
    out = np.abs(a.data)
    return _make(out, (a,), lambda g: (g * np.sign(a.data),))


def clip(a: ArrayLike, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    a = as_tensor(a)
    out = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)
    return _make(out, (a,), lambda g: (g * mask,))


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; ties route the gradient to the first operand."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    mask = a.data >= b.data
    return _make(out, (a, b), lambda g: (g * mask, g * (~mask)))


def minimum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise minimum; ties route the gradient to the first operand."""
    a, b = as_tensor(a), as_tensor(b)
    out = np.minimum(a.data, b.data)
    mask = a.data <= b.data
    return _make(out, (a, b), lambda g: (g * mask, g * (~mask)))


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic sigmoid used by several activations/losses."""
    z = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))


def sigmoid(a: ArrayLike) -> Tensor:
    """Numerically stable logistic sigmoid."""
    a = as_tensor(a)
    out = _stable_sigmoid(a.data)
    return _make(out, (a,), lambda g: (g * out * (1.0 - out),))


def tanh(a: ArrayLike) -> Tensor:
    """Hyperbolic tangent."""
    a = as_tensor(a)
    out = np.tanh(a.data)
    return _make(out, (a,), lambda g: (g * (1.0 - out ** 2),))


def relu(a: ArrayLike) -> Tensor:
    """Rectified linear unit."""
    a = as_tensor(a)
    mask = a.data > 0
    return _make(a.data * mask, (a,), lambda g: (g * mask,))


def leaky_relu(a: ArrayLike, negative_slope: float = 0.1) -> Tensor:
    """LeakyReLU used by the VBGE encoder (paper fixes the slope at 0.1)."""
    a = as_tensor(a)
    mask = a.data > 0
    scale = np.where(mask, 1.0, negative_slope)
    return _make(a.data * scale, (a,), lambda g: (g * scale,))


def softplus(a: ArrayLike) -> Tensor:
    """Numerically stable softplus, used to produce positive std-deviations."""
    a = as_tensor(a)
    out = np.logaddexp(0.0, a.data)
    sig = _stable_sigmoid(a.data)
    return _make(out, (a,), lambda g: (g * sig,))


def log_sigmoid(a: ArrayLike) -> Tensor:
    """log(sigmoid(a)) computed in a numerically stable way."""
    a = as_tensor(a)
    out = -np.logaddexp(0.0, -a.data)
    sig_neg = 1.0 - _stable_sigmoid(a.data)
    return _make(out, (a,), lambda g: (g * sig_neg,))


def softmax(a: ArrayLike, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return _make(out, (a,), backward)


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
def sum(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over the given axis (or all elements)."""
    a = as_tensor(a)
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.data.shape),)

    return _make(out, (a,), backward)


def mean(a: ArrayLike, axis=None, keepdims: bool = False) -> Tensor:
    """Mean over the given axis (or all elements)."""
    a = as_tensor(a)
    out = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.data.shape[ax] for ax in axis]))
    else:
        count = a.data.shape[axis]

    def backward(g):
        g = np.asarray(g)
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.data.shape) / count,)

    return _make(out, (a,), backward)


# --------------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------------- #
def reshape(a: ArrayLike, shape: Tuple[int, ...]) -> Tensor:
    """Reshape without changing data ordering."""
    a = as_tensor(a)
    out = a.data.reshape(shape)
    return _make(out, (a,), lambda g: (np.asarray(g).reshape(a.data.shape),))


def transpose(a: ArrayLike, axes: Optional[Tuple[int, ...]] = None) -> Tensor:
    """Transpose (reverse axes by default)."""
    a = as_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = tuple(np.argsort(axes))
    return _make(out, (a,), lambda g: (np.transpose(np.asarray(g), inverse),))


def concat(tensors: Sequence[ArrayLike], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        g = np.asarray(g)
        grads = []
        for i in range(len(tensors)):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(index)])
        return tuple(grads)

    return _make(out, tuple(tensors), backward)


def stack(tensors: Sequence[ArrayLike], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        g = np.asarray(g)
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return _make(out, tuple(tensors), backward)


def index_select(a: ArrayLike, index) -> Tensor:
    """Advanced row indexing (``a[index]``) with scatter-add backward.

    This is the workhorse behind embedding lookups and the per-batch
    selection of user/item representations.
    """
    a = as_tensor(a)
    out = a.data[index]

    def backward(g):
        grad = np.zeros_like(a.data)
        np.add.at(grad, index, np.asarray(g))
        return (grad,)

    return _make(out, (a,), backward)


_SCATTER_ARANGE: dict = {}


def scatter_add_rows(num_rows: int, index: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Sum ``values`` rows into a (num_rows, F) buffer at ``index`` rows.

    Equivalent to ``np.add.at(zeros, index, values)`` but built on
    ``np.bincount``, which is ~3x faster for the (batch, F) row scatters of
    every training-step backward pass.  Duplicate indices accumulate (in
    bincount's index order, which fp-wise differs from add.at's sequential
    order only at the last ulp).
    """
    values = np.asarray(values)
    feature_dim = values.shape[-1]
    columns = _SCATTER_ARANGE.get(feature_dim)
    if columns is None:
        columns = _SCATTER_ARANGE[feature_dim] = np.arange(feature_dim)
    flat = (np.asarray(index, dtype=np.int64)[:, None] * feature_dim + columns).ravel()
    return np.bincount(
        flat, weights=values.ravel(), minlength=num_rows * feature_dim
    ).reshape(num_rows, feature_dim)


def gather_rows(a: ArrayLike, index: np.ndarray) -> Tensor:
    """Row gather with a :func:`scatter_add_rows` backward (training fast path).

    Same values and gradient totals as :func:`index_select` restricted to 2-D
    row indexing; used by the fused training engine where the add.at scatter
    is the bottleneck.
    """
    a = as_tensor(a)
    index = np.asarray(index, dtype=np.int64)
    out = a.data[index]

    def backward(g):
        return (scatter_add_rows(a.data.shape[0], index, g),)

    return _make(out, (a,), backward)


# --------------------------------------------------------------------------- #
# Linear algebra
# --------------------------------------------------------------------------- #
def matmul(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Matrix product for 2-D operands (the only case the models need)."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data @ b.data

    def backward(g):
        g = np.asarray(g)
        return (g @ b.data.T, a.data.T @ g)

    return _make(out, (a, b), backward)


def dot_rows(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Row-wise inner product: ``(a * b).sum(axis=-1)``.

    Used by the score function s(z_u, z_v) of the recommendation models.
    """
    a, b = as_tensor(a), as_tensor(b)
    out = (a.data * b.data).sum(axis=-1)

    def backward(g):
        g = np.asarray(g)[..., None]
        return (g * b.data, g * a.data)

    return _make(out, (a, b), backward)


# --------------------------------------------------------------------------- #
# Fused affine + activation kernels (training fast path)
# --------------------------------------------------------------------------- #
def fused_linear_leaky_relu(x: ArrayLike, weight: ArrayLike, bias: ArrayLike,
                            negative_slope: float = 0.1) -> Tensor:
    """``leaky_relu(x @ weight + bias)`` as a single graph node.

    Performs the same numpy operations, in the same order, as the composed
    ``leaky_relu(add(matmul(x, w), b))`` pipeline — so forward values and
    gradients are bitwise identical — while recording one node instead of
    three (the training engine's Gaussian-head mu branch).
    """
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    pre = x.data @ weight.data + bias.data
    scale = np.where(pre > 0, 1.0, negative_slope)
    out = pre * scale

    def backward(g):
        g_pre = np.asarray(g) * scale
        return (g_pre @ weight.data.T, x.data.T @ g_pre, g_pre.sum(axis=0))

    return _make(out, (x, weight, bias), backward)


def fused_linear_softplus(x: ArrayLike, weight: ArrayLike, bias: ArrayLike,
                          pre_shift: float = 0.0, post_shift: float = 0.0) -> Tensor:
    """``softplus(x @ weight + bias + pre_shift) + post_shift`` as one node.

    Mirrors the sigma branch of the Gaussian head (shifted softplus plus a
    numerical-stability offset) with a single fused node; operation order
    matches the composed op-by-op pipeline bitwise.
    """
    x, weight, bias = as_tensor(x), as_tensor(weight), as_tensor(bias)
    pre = x.data @ weight.data + bias.data + pre_shift
    out = np.logaddexp(0.0, pre) + post_shift
    sig = _stable_sigmoid(pre)

    def backward(g):
        g_pre = np.asarray(g) * sig
        return (g_pre @ weight.data.T, x.data.T @ g_pre, g_pre.sum(axis=0))

    return _make(out, (x, weight, bias), backward)


# --------------------------------------------------------------------------- #
# Stochastic layers
# --------------------------------------------------------------------------- #
def dropout(a: ArrayLike, rate: float, training: bool = True,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or rate is 0."""
    a = as_tensor(a)
    if not training or rate <= 0.0:
        return _make(a.data, (a,), lambda g: (g,))
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    generator = rng if rng is not None else np.random.default_rng()
    keep = 1.0 - rate
    mask = (generator.random(a.data.shape) < keep) / keep
    return _make(a.data * mask, (a,), lambda g: (g * mask,))


def gaussian_reparameterize(mu: ArrayLike, sigma: ArrayLike,
                            rng: Optional[np.random.Generator] = None,
                            noise: Optional[np.ndarray] = None) -> Tensor:
    """Sample ``z = mu + sigma * eps`` with ``eps ~ N(0, I)`` (Eq. 4).

    The reparameterisation trick keeps the sample differentiable with
    respect to both ``mu`` and ``sigma``.
    """
    mu, sigma = as_tensor(mu), as_tensor(sigma)
    if noise is None:
        generator = rng if rng is not None else np.random.default_rng()
        noise = generator.standard_normal(mu.data.shape)
    out = mu.data + sigma.data * noise
    return _make(out, (mu, sigma), lambda g: (g, np.asarray(g) * noise))


# --------------------------------------------------------------------------- #
# Losses / divergences
# --------------------------------------------------------------------------- #
def gaussian_kl(mu: ArrayLike, sigma: ArrayLike, reduce: str = "mean") -> Tensor:
    """KL( N(mu, diag(sigma^2)) || N(0, I) ) — the minimality term (Eq. 11).

    Parameters
    ----------
    mu, sigma:
        Mean and standard deviation of the approximate posterior; ``sigma``
        must be strictly positive (use :func:`softplus`).
    reduce:
        ``"mean"`` averages over rows, ``"sum"`` sums, ``"none"`` returns the
        per-row KL.
    """
    mu, sigma = as_tensor(mu), as_tensor(sigma)
    var = mul(sigma, sigma)
    per_dim = add(sub(mul(mu, mu), 1.0), sub(var, log(var, eps=1e-12)))
    per_row = mul(sum(per_dim, axis=-1), 0.5)
    if reduce == "mean":
        return mean(per_row)
    if reduce == "sum":
        return sum(per_row)
    if reduce == "none":
        return per_row
    raise ValueError(f"unknown reduce mode: {reduce!r}")


def binary_cross_entropy_with_logits(logits: ArrayLike, targets: ArrayLike,
                                     reduce: str = "mean") -> Tensor:
    """Stable BCE on logits; used for every reconstruction term (Eq. 13)."""
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    # loss = max(x, 0) - x * t + log(1 + exp(-|x|))
    x = logits
    t = targets
    loss = add(sub(maximum(x, 0.0), mul(x, t)), softplus(neg(abs(x))))
    if reduce == "mean":
        return mean(loss)
    if reduce == "sum":
        return sum(loss)
    if reduce == "none":
        return loss
    raise ValueError(f"unknown reduce mode: {reduce!r}")


def mse_loss(prediction: ArrayLike, target: ArrayLike, reduce: str = "mean") -> Tensor:
    """Mean squared error."""
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = sub(prediction, target)
    loss = mul(diff, diff)
    if reduce == "mean":
        return mean(loss)
    if reduce == "sum":
        return sum(loss)
    if reduce == "none":
        return loss
    raise ValueError(f"unknown reduce mode: {reduce!r}")
