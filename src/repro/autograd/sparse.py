"""Sparse-matrix support for the autograd engine.

The bipartite user-item graphs used by the VBGE encoder are stored as
``scipy.sparse`` CSR matrices.  Those matrices are *constants* of the
computation (the adjacency structure is data, not a learnable parameter), so
only the dense operand needs a gradient: for ``y = A @ x`` the backward pass
is ``dL/dx = A.T @ dL/dy``.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor, is_grad_enabled


def _ensure_csr(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=np.float64))


def sparse_matmul(matrix: Union[sp.spmatrix, np.ndarray], dense: Tensor) -> Tensor:
    """Compute ``matrix @ dense`` where ``matrix`` is a constant sparse matrix.

    Parameters
    ----------
    matrix:
        A scipy sparse matrix (or ndarray, converted to CSR) of shape (m, n).
    dense:
        A tensor of shape (n, f) that may require gradients.

    Returns
    -------
    Tensor of shape (m, f) wired into the autograd graph.
    """
    matrix = _ensure_csr(matrix)
    dense = as_tensor(dense)
    if matrix.shape[1] != dense.shape[0]:
        raise ValueError(
            f"sparse_matmul shape mismatch: {matrix.shape} @ {dense.shape}"
        )
    out = matrix @ dense.data
    if not is_grad_enabled() or not (dense.requires_grad or dense._parents):
        return Tensor(out)
    matrix_t = matrix.T.tocsr()

    def backward(grad):
        return (matrix_t @ np.asarray(grad),)

    return Tensor(out, parents=(dense,), backward_fn=backward)


def sparse_propagate(push: Union[sp.spmatrix, np.ndarray],
                     pull: Union[sp.spmatrix, np.ndarray],
                     features: np.ndarray,
                     weight_to: np.ndarray,
                     weight_from: np.ndarray,
                     negative_slope: float = 0.1,
                     pull_rows: Union[np.ndarray, None] = None) -> np.ndarray:
    """Fused no-grad two-step propagation (Eq. 2 + the message part of Eq. 3).

    Computes ``leaky_relu(pull @ (leaky_relu(push @ (features @ W_to)) @ W_from))``
    entirely on raw numpy arrays — no autograd :class:`Tensor` bookkeeping, no
    intermediate graph nodes.  This is the serving hot path: the operations and
    their order are identical to the Tensor-based forward pass of
    ``repro.core.vbge.PropagationBlock``, so the result matches an eval-mode
    forward without the per-op allocation overhead — bitwise when the operand
    shapes match, and to float precision when ``pull_rows`` shrinks the final
    product (BLAS may pick a different kernel for small batches).

    Parameters
    ----------
    push:
        Sparse (n_other, n_self) matrix pushing features to the neighbour side.
    pull:
        Sparse (n_self, n_other) matrix pulling interim messages back.
    features:
        Dense (n_self, f) input features.
    weight_to, weight_from:
        The two linear projections of the propagation block.
    negative_slope:
        LeakyReLU slope (paper fixes 0.1).
    pull_rows:
        Optional row subset of ``pull``: when only a batch of nodes needs the
        propagated output (e.g. a batch of cold-start users), restricting the
        pull step avoids the full (n_self, f) product.  The interim step still
        runs over the full graph, which is required for exactness.

    Returns
    -------
    (n_self, f) array — or (len(pull_rows), f) when ``pull_rows`` is given.
    """
    push = _ensure_csr(push)
    pull = _ensure_csr(pull)
    interim = push @ (np.asarray(features) @ np.asarray(weight_to))
    np.multiply(interim, np.where(interim > 0, 1.0, negative_slope), out=interim)
    if pull_rows is not None:
        pull = pull[np.asarray(pull_rows, dtype=np.int64)]
    returned = pull @ (interim @ np.asarray(weight_from))
    np.multiply(returned, np.where(returned > 0, 1.0, negative_slope), out=returned)
    return returned


def row_normalize(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Return a row-normalised copy of ``matrix`` (the Norm(.) of Eq. 2/3).

    Rows whose sum is zero are left as all-zeros instead of producing NaNs,
    which matters for users/items that end up isolated after filtering.
    """
    matrix = _ensure_csr(matrix).astype(np.float64)
    row_sum = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.zeros_like(row_sum)
    nonzero = row_sum > 0
    inverse[nonzero] = 1.0 / row_sum[nonzero]
    scaling = sp.diags(inverse)
    return (scaling @ matrix).tocsr()


def symmetric_normalize(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Return D^{-1/2} A D^{-1/2} used by GCN-style baselines (NGCF/PPGN)."""
    matrix = _ensure_csr(matrix).astype(np.float64)
    row_sum = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(row_sum)
    nonzero = row_sum > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(row_sum[nonzero])
    scaling = sp.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()
