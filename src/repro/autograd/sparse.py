"""Sparse-matrix support for the autograd engine.

The bipartite user-item graphs used by the VBGE encoder are stored as
``scipy.sparse`` CSR matrices.  Those matrices are *constants* of the
computation (the adjacency structure is data, not a learnable parameter), so
only the dense operand needs a gradient: for ``y = A @ x`` the backward pass
is ``dL/dx = A.T @ dL/dy``.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor, is_grad_enabled

try:  # pragma: no cover - exercised indirectly by every fused propagation
    from scipy.sparse import _sparsetools as _sptools
    _csr_matvecs_kernel = getattr(_sptools, "csr_matvecs", None)
except ImportError:  # very old scipy layouts
    _csr_matvecs_kernel = None


def _csr_dot(matrix: sp.csr_matrix, dense: np.ndarray) -> np.ndarray:
    """``matrix @ dense`` via the raw CSR kernel scipy itself dispatches to.

    ``csr_matrix.__matmul__`` burns ~10us per call on format/validation
    plumbing, which the training loop pays 16 times per step; calling
    ``csr_matvecs`` directly produces bitwise-identical results (it *is*
    scipy's multivector kernel) without the overhead.  Falls back to the
    operator when the private module is unavailable or operands are exotic.
    """
    if (_csr_matvecs_kernel is None or dense.dtype != matrix.dtype
            or not dense.flags.c_contiguous):
        return matrix @ dense
    n_vecs = dense.shape[1]
    out = np.zeros((matrix.shape[0], n_vecs), dtype=dense.dtype)
    _csr_matvecs_kernel(matrix.shape[0], matrix.shape[1], n_vecs,
                        matrix.indptr, matrix.indices, matrix.data,
                        dense.ravel(), out.ravel())
    return out


def _ensure_csr(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Coerce ``matrix`` to CSR, preserving float32/float64 dtypes.

    Non-float inputs (integer/bool adjacency dumps) are promoted to float64,
    but an explicitly float32 operand stays float32 so mixed-precision
    callers are not silently upcast.
    """
    if sp.issparse(matrix):
        csr = matrix.tocsr()
        if csr.dtype not in (np.float32, np.float64):
            csr = csr.astype(np.float64)
        return csr
    array = np.asarray(matrix)
    if array.dtype not in (np.float32, np.float64):
        array = array.astype(np.float64)
    return sp.csr_matrix(array)


def sparse_matmul(matrix: Union[sp.spmatrix, np.ndarray], dense: Tensor) -> Tensor:
    """Compute ``matrix @ dense`` where ``matrix`` is a constant sparse matrix.

    Recording a node transposes ``matrix`` for the backward pass on every
    call; hot paths that need cached transposes use the fused
    :func:`sparse_propagate_grad` block instead.

    Parameters
    ----------
    matrix:
        A scipy sparse matrix (or ndarray, converted to CSR) of shape (m, n).
    dense:
        A tensor of shape (n, f) that may require gradients.

    Returns
    -------
    Tensor of shape (m, f) wired into the autograd graph.
    """
    matrix = _ensure_csr(matrix)
    dense = as_tensor(dense)
    if matrix.shape[1] != dense.shape[0]:
        raise ValueError(
            f"sparse_matmul shape mismatch: {matrix.shape} @ {dense.shape}"
        )
    out = matrix @ dense.data
    if not is_grad_enabled() or not dense.needs_grad:
        return Tensor(out)
    matrix_t = matrix.T.tocsr()

    def backward(grad):
        return (matrix_t @ np.asarray(grad),)

    return Tensor(out, parents=(dense,), backward_fn=backward)


def sparse_propagate_grad(push: Union[sp.spmatrix, np.ndarray],
                          pull: Union[sp.spmatrix, np.ndarray],
                          features: Union[Tensor, np.ndarray],
                          weight_to: Union[Tensor, np.ndarray],
                          weight_from: Union[Tensor, np.ndarray],
                          negative_slope: float = 0.1,
                          push_t: Union[sp.spmatrix, None] = None,
                          pull_t: Union[sp.spmatrix, None] = None,
                          pull_rows: Union[np.ndarray, None] = None) -> Tensor:
    """Gradient-aware fused two-step propagation (training fast path).

    Computes ``leaky_relu(pull @ (leaky_relu(push @ (features @ W_to)) @
    W_from))`` — the same expression, in the same operation order, as the
    op-by-op ``PropagationBlock.forward`` pipeline — while recording a
    *single* autograd node with parents ``(features, weight_to,
    weight_from)``.  The backward pass replays the exact vector-Jacobian
    chain of the unfused pipeline (LeakyReLU masks, cached ``A.T`` CSR
    products, weight grads) without materialising the five intermediate
    graph nodes or their gradient buffers, so multi-layer propagation only
    keeps one dense gradient per block boundary.

    Parameters
    ----------
    push:
        Sparse (n_other, n_self) matrix pushing features to the neighbour side.
    pull:
        Sparse (n_self, n_other) matrix pulling interim messages back.
    features:
        (n_self, f) input features; Tensor inputs may require gradients.
    weight_to, weight_from:
        The two linear projections of the propagation block (Tensor inputs
        may require gradients).
    negative_slope:
        LeakyReLU slope (paper fixes 0.1).
    push_t, pull_t:
        Optional precomputed CSR transposes of ``push`` / ``pull``; computed
        on the fly when omitted.  ``pull_t`` is ignored when ``pull_rows``
        restricts the pull step (the sliced transpose is built instead).
    pull_rows:
        Optional row subset of ``pull``: restricts the final pull step (and
        hence the output and its gradient flow) to a batch of nodes.  The
        interim step still spans the full graph, which is required for
        exactness; the backward pass scatters through the sliced adjacency
        back into full-graph feature gradients.

    Returns
    -------
    (n_self, f) Tensor — or (len(pull_rows), f) when ``pull_rows`` is given —
    wired into the autograd graph.
    """
    push = _ensure_csr(push)
    pull = _ensure_csr(pull)
    feats = as_tensor(features)
    w_to = as_tensor(weight_to)
    w_from = as_tensor(weight_from)
    if push.shape[1] != feats.shape[0]:
        raise ValueError(
            f"sparse_propagate_grad shape mismatch: push {push.shape} "
            f"@ features {feats.shape}"
        )
    if pull.shape[1] != push.shape[0]:
        raise ValueError(
            f"sparse_propagate_grad shape mismatch: pull {pull.shape} "
            f"@ interim ({push.shape[0]}, ...)"
        )

    projected = feats.data @ w_to.data
    interim_pre = _csr_dot(push, projected)
    scale_in = np.where(interim_pre > 0, 1.0, negative_slope)
    interim = interim_pre * scale_in
    messages = interim @ w_from.data
    if pull_rows is not None:
        pull_sel = pull[np.asarray(pull_rows, dtype=np.int64)]
    else:
        pull_sel = pull
    returned_pre = _csr_dot(pull_sel, messages)
    scale_out = np.where(returned_pre > 0, 1.0, negative_slope)
    out = returned_pre * scale_out

    if not is_grad_enabled() or not (
            feats.needs_grad or w_to.needs_grad or w_from.needs_grad):
        return Tensor(out)

    push_back = push.T.tocsr() if push_t is None else _ensure_csr(push_t)
    if pull_rows is not None:
        pull_back = pull_sel.T.tocsr()
    else:
        pull_back = pull.T.tocsr() if pull_t is None else _ensure_csr(pull_t)

    def backward(grad):
        g_returned = np.asarray(grad) * scale_out
        g_messages = _csr_dot(pull_back, g_returned)
        g_interim = (g_messages @ w_from.data.T) * scale_in
        g_w_from = interim.T @ g_messages
        g_projected = _csr_dot(push_back, g_interim)
        g_features = g_projected @ w_to.data.T
        g_w_to = feats.data.T @ g_projected
        return (g_features, g_w_to, g_w_from)

    return Tensor(out, parents=(feats, w_to, w_from), backward_fn=backward)


def sparse_propagate(push: Union[sp.spmatrix, np.ndarray],
                     pull: Union[sp.spmatrix, np.ndarray],
                     features: np.ndarray,
                     weight_to: np.ndarray,
                     weight_from: np.ndarray,
                     negative_slope: float = 0.1,
                     pull_rows: Union[np.ndarray, None] = None) -> np.ndarray:
    """Fused no-grad two-step propagation (Eq. 2 + the message part of Eq. 3).

    Computes ``leaky_relu(pull @ (leaky_relu(push @ (features @ W_to)) @ W_from))``
    entirely on raw numpy arrays — no autograd :class:`Tensor` bookkeeping, no
    intermediate graph nodes.  This is the serving hot path: the operations and
    their order are identical to the Tensor-based forward pass of
    ``repro.core.vbge.PropagationBlock``, so the result matches an eval-mode
    forward without the per-op allocation overhead — bitwise when the operand
    shapes match, and to float precision when ``pull_rows`` shrinks the final
    product (BLAS may pick a different kernel for small batches).

    Parameters
    ----------
    push:
        Sparse (n_other, n_self) matrix pushing features to the neighbour side.
    pull:
        Sparse (n_self, n_other) matrix pulling interim messages back.
    features:
        Dense (n_self, f) input features.
    weight_to, weight_from:
        The two linear projections of the propagation block.
    negative_slope:
        LeakyReLU slope (paper fixes 0.1).
    pull_rows:
        Optional row subset of ``pull``: when only a batch of nodes needs the
        propagated output (e.g. a batch of cold-start users), restricting the
        pull step avoids the full (n_self, f) product.  The interim step still
        runs over the full graph, which is required for exactness.

    Returns
    -------
    (n_self, f) array — or (len(pull_rows), f) when ``pull_rows`` is given.
    """
    push = _ensure_csr(push)
    pull = _ensure_csr(pull)
    interim = push @ (np.asarray(features) @ np.asarray(weight_to))
    np.multiply(interim, np.where(interim > 0, 1.0, negative_slope), out=interim)
    if pull_rows is not None:
        pull = pull[np.asarray(pull_rows, dtype=np.int64)]
    returned = pull @ (interim @ np.asarray(weight_from))
    np.multiply(returned, np.where(returned > 0, 1.0, negative_slope), out=returned)
    return returned


def row_normalize(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Return a row-normalised copy of ``matrix`` (the Norm(.) of Eq. 2/3).

    Rows whose sum is zero are left as all-zeros instead of producing NaNs,
    which matters for users/items that end up isolated after filtering.
    """
    matrix = _ensure_csr(matrix).astype(np.float64)
    row_sum = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.zeros_like(row_sum)
    nonzero = row_sum > 0
    inverse[nonzero] = 1.0 / row_sum[nonzero]
    scaling = sp.diags(inverse)
    return (scaling @ matrix).tocsr()


def symmetric_normalize(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Return D^{-1/2} A D^{-1/2} used by GCN-style baselines (NGCF/PPGN)."""
    matrix = _ensure_csr(matrix).astype(np.float64)
    row_sum = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(row_sum)
    nonzero = row_sum > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(row_sum[nonzero])
    scaling = sp.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()
