"""Sparse-matrix support for the autograd engine.

The bipartite user-item graphs used by the VBGE encoder are stored as
``scipy.sparse`` CSR matrices.  Those matrices are *constants* of the
computation (the adjacency structure is data, not a learnable parameter), so
only the dense operand needs a gradient: for ``y = A @ x`` the backward pass
is ``dL/dx = A.T @ dL/dy``.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor, is_grad_enabled


def _ensure_csr(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=np.float64))


def sparse_matmul(matrix: Union[sp.spmatrix, np.ndarray], dense: Tensor) -> Tensor:
    """Compute ``matrix @ dense`` where ``matrix`` is a constant sparse matrix.

    Parameters
    ----------
    matrix:
        A scipy sparse matrix (or ndarray, converted to CSR) of shape (m, n).
    dense:
        A tensor of shape (n, f) that may require gradients.

    Returns
    -------
    Tensor of shape (m, f) wired into the autograd graph.
    """
    matrix = _ensure_csr(matrix)
    dense = as_tensor(dense)
    if matrix.shape[1] != dense.shape[0]:
        raise ValueError(
            f"sparse_matmul shape mismatch: {matrix.shape} @ {dense.shape}"
        )
    out = matrix @ dense.data
    if not is_grad_enabled() or not (dense.requires_grad or dense._parents):
        return Tensor(out)
    matrix_t = matrix.T.tocsr()

    def backward(grad):
        return (matrix_t @ np.asarray(grad),)

    return Tensor(out, parents=(dense,), backward_fn=backward)


def row_normalize(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Return a row-normalised copy of ``matrix`` (the Norm(.) of Eq. 2/3).

    Rows whose sum is zero are left as all-zeros instead of producing NaNs,
    which matters for users/items that end up isolated after filtering.
    """
    matrix = _ensure_csr(matrix).astype(np.float64)
    row_sum = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.zeros_like(row_sum)
    nonzero = row_sum > 0
    inverse[nonzero] = 1.0 / row_sum[nonzero]
    scaling = sp.diags(inverse)
    return (scaling @ matrix).tocsr()


def symmetric_normalize(matrix: Union[sp.spmatrix, np.ndarray]) -> sp.csr_matrix:
    """Return D^{-1/2} A D^{-1/2} used by GCN-style baselines (NGCF/PPGN)."""
    matrix = _ensure_csr(matrix).astype(np.float64)
    row_sum = np.asarray(matrix.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(row_sum)
    nonzero = row_sum > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(row_sum[nonzero])
    scaling = sp.diags(inv_sqrt)
    return (scaling @ matrix @ scaling).tocsr()
