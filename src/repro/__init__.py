"""repro — reproduction of CDRIB (Cao et al., ICDE 2022).

Cross-Domain Recommendation to Cold-Start Users via Variational Information
Bottleneck, reimplemented from scratch on a numpy autograd substrate.

Public entry points:

* :mod:`repro.core` — the CDRIB model, the VBGE encoder and the trainer.
* :mod:`repro.baselines` — the thirteen comparison methods of the paper.
* :mod:`repro.data` — synthetic cross-domain data, preprocessing, splits.
* :mod:`repro.eval` — leave-one-out protocol, MRR/NDCG/HR, significance.
* :mod:`repro.experiments` — one runner per paper table / figure.
* :mod:`repro.serve` — batched cold-start serving (item index, LRU cache,
  request batching).
* :mod:`repro.io` — versioned checkpoints (npz payload + JSON manifest) for
  the train→publish→serve pipeline.
"""

from . import autograd, baselines, core, data, eval, experiments, graph, io, nn, optim, serve

__version__ = "1.2.0"

__all__ = [
    "autograd",
    "nn",
    "optim",
    "graph",
    "data",
    "core",
    "baselines",
    "eval",
    "experiments",
    "serve",
    "io",
    "__version__",
]
