"""Bipartite interaction-graph utilities."""

from .bipartite import BipartiteGraph

__all__ = ["BipartiteGraph"]
