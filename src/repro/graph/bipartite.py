"""Bipartite user-item interaction graphs.

The VBGE encoder of CDRIB consumes two directed views of the interaction
matrix ``A`` (|U| x |V|):

* ``A`` itself — edges from items to users (Eq. 3 aggregates item-side
  interim representations into user representations), and
* ``A^T`` — edges from users to items (Eq. 2 builds the item-side interim
  representations from user embeddings).

This module wraps interaction edge lists into sparse CSR adjacencies, caches
their row-normalised variants and exposes the degree statistics used by the
data-preprocessing and evaluation code.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..autograd.sparse import row_normalize, symmetric_normalize


class BipartiteGraph:
    """Immutable user-item interaction graph for one domain.

    Parameters
    ----------
    num_users, num_items:
        Size of the two node partitions.
    edges:
        Integer array of shape (n_edges, 2) with columns (user_idx, item_idx).
        Duplicate edges are collapsed.
    """

    def __init__(self, num_users: int, num_items: int, edges: np.ndarray):
        edges = np.asarray(edges, dtype=np.int64)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise ValueError(f"edges must have shape (n, 2), got {edges.shape}")
        if edges.size and (edges[:, 0].max() >= num_users or edges[:, 0].min() < 0):
            raise ValueError("user index out of range")
        if edges.size and (edges[:, 1].max() >= num_items or edges[:, 1].min() < 0):
            raise ValueError("item index out of range")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        # Collapse duplicates while keeping deterministic ordering.
        if edges.size:
            edges = np.unique(edges, axis=0)
        self.edges = edges
        self._adjacency: Optional[sp.csr_matrix] = None
        self._cache: Dict[str, sp.csr_matrix] = {}

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of unique user-item interactions in the graph."""
        return int(self.edges.shape[0])

    @property
    def density(self) -> float:
        """Fraction of observed entries of the |U| x |V| interaction matrix."""
        total = self.num_users * self.num_items
        return self.num_edges / total if total else 0.0

    def user_degrees(self) -> np.ndarray:
        """Number of interactions per user."""
        return np.asarray(self.adjacency().sum(axis=1)).ravel().astype(np.int64)

    def item_degrees(self) -> np.ndarray:
        """Number of interactions per item."""
        return np.asarray(self.adjacency().sum(axis=0)).ravel().astype(np.int64)

    def items_of_user(self, user: int) -> np.ndarray:
        """Return the item indices the user interacted with."""
        adj = self.adjacency()
        start, end = adj.indptr[user], adj.indptr[user + 1]
        return adj.indices[start:end].astype(np.int64)

    def user_item_set(self) -> Dict[int, set]:
        """Map every user to the set of interacted items (for negative sampling)."""
        mapping: Dict[int, set] = {}
        adj = self.adjacency()
        for user in range(self.num_users):
            start, end = adj.indptr[user], adj.indptr[user + 1]
            mapping[user] = set(adj.indices[start:end].tolist())
        return mapping

    # ------------------------------------------------------------------ #
    # Sparse matrices
    # ------------------------------------------------------------------ #
    def adjacency(self) -> sp.csr_matrix:
        """Binary |U| x |V| interaction matrix ``A``."""
        if self._adjacency is None:
            if self.num_edges:
                data = np.ones(self.num_edges, dtype=np.float64)
                self._adjacency = sp.csr_matrix(
                    (data, (self.edges[:, 0], self.edges[:, 1])),
                    shape=(self.num_users, self.num_items),
                )
            else:
                self._adjacency = sp.csr_matrix((self.num_users, self.num_items))
        return self._adjacency

    def adjacency_t(self) -> sp.csr_matrix:
        """Transposed interaction matrix ``A^T`` (|V| x |U|)."""
        return self._cached("adj_t", lambda: self.adjacency().T.tocsr())

    def norm_user_to_item(self) -> sp.csr_matrix:
        """Row-normalised ``A^T``: Norm((A)^T) in Eq. 2."""
        return self._cached("norm_u2i", lambda: row_normalize(self.adjacency_t()))

    def norm_item_to_user(self) -> sp.csr_matrix:
        """Row-normalised ``A``: Norm(A) in Eq. 3."""
        return self._cached("norm_i2u", lambda: row_normalize(self.adjacency()))

    def norm_user_to_item_t(self) -> sp.csr_matrix:
        """Cached CSR transpose of :meth:`norm_user_to_item`.

        The backward pass of every propagation step multiplies by the
        transposed normalised adjacency; caching it here means the training
        loop transposes each (|V| x |U|) matrix once per graph instead of
        once per layer per step.  (Note this is *not* ``norm_item_to_user`` —
        transposing does not commute with row normalisation.)
        """
        return self._cached("norm_u2i_t", lambda: self.norm_user_to_item().T.tocsr())

    def norm_item_to_user_t(self) -> sp.csr_matrix:
        """Cached CSR transpose of :meth:`norm_item_to_user` (see above)."""
        return self._cached("norm_i2u_t", lambda: self.norm_item_to_user().T.tocsr())

    def joint_normalized_adjacency(self, add_self_loops: bool = True) -> sp.csr_matrix:
        """Symmetric-normalised (|U|+|V|) square adjacency for GCN baselines.

        The layout is ``[[0, A], [A^T, 0]]`` with users first, items second,
        which is what NGCF/PPGN-style propagation expects.
        """
        def build():
            adj = self.adjacency()
            upper = sp.hstack([sp.csr_matrix((self.num_users, self.num_users)), adj])
            lower = sp.hstack([adj.T, sp.csr_matrix((self.num_items, self.num_items))])
            joint = sp.vstack([upper, lower]).tocsr()
            if add_self_loops:
                joint = joint + sp.eye(joint.shape[0], format="csr")
            return symmetric_normalize(joint)

        key = f"joint_{add_self_loops}"
        return self._cached(key, build)

    def _cached(self, key: str, builder) -> sp.csr_matrix:
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph_without_users(self, users) -> "BipartiteGraph":
        """Return a copy with every edge of the given users removed.

        The node index space is preserved so representations remain aligned;
        this is how cold-start users are hidden from their target domain.
        """
        users = np.asarray(list(users), dtype=np.int64)
        if users.size == 0:
            return BipartiteGraph(self.num_users, self.num_items, self.edges.copy())
        mask = ~np.isin(self.edges[:, 0], users)
        return BipartiteGraph(self.num_users, self.num_items, self.edges[mask])

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(users={self.num_users}, items={self.num_items}, "
            f"edges={self.num_edges}, density={self.density:.4%})"
        )
