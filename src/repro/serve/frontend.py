"""Concurrent serving front-end: thread-safe tickets over ``RequestBatcher``.

:class:`~repro.serve.RequestBatcher` is deliberately synchronous and
thread-free — that keeps the batching core deterministic and testable.  A
real serving process, however, has many client threads producing requests
concurrently and nobody whose job it is to call ``flush``.
:class:`ServingFrontend` closes that gap:

* ``submit()`` is safe to call from any thread and returns a
  :class:`FrontendTicket` whose ``result()`` blocks until the batch
  containing the request has been served.
* A background *flusher* thread enforces the batcher's ``max_delay`` (no
  request waits longer than the configured age for a batch to fill) and
  additionally flushes as soon as the queue goes *idle* — the closed-loop
  case where every client thread is blocked waiting and no further submits
  will arrive to top the batch up.
* All batcher and server state is touched under one lock, so the core
  stays single-threaded underneath: batches are formed and served exactly
  as the synchronous path would, and served lists are **bit-identical** to
  calling :meth:`~repro.serve.ColdStartServer.recommend` synchronously for
  the same traffic (pinned by ``tests/test_serve_frontend.py``).

The failure semantics follow the batcher's: a poisoned request fails only
its own ticket (``result()`` re-raises the original error); co-batched
traffic is served normally.

Typical use::

    with ServingFrontend(server, max_batch_size=256, max_delay=0.005) as fe:
        ticket = fe.submit(user=4)          # from any thread
        print(ticket.result(timeout=1.0).items)

The load-generation harness (:mod:`repro.experiments.loadgen`) drives this
front-end with N concurrent workers to record latency percentiles and
saturation curves.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from .batching import PendingRequest, RequestBatcher
from .server import ColdStartServer, Recommendation


class FrontendTicket:
    """A thread-safe handle for one request submitted to the front-end.

    Wraps the batcher's :class:`~repro.serve.PendingRequest` with an event
    so a caller on another thread can block until the request's batch has
    been flushed (by the flusher thread, an auto-flush, or an explicit
    :meth:`ServingFrontend.flush`).
    """

    def __init__(self, request: PendingRequest):
        self._request = request
        self._event = threading.Event()

    @property
    def user(self) -> int:
        """The user index this request asked recommendations for."""
        return self._request.user

    @property
    def done(self) -> bool:
        """Whether the request has been resolved (fulfilled or failed)."""
        return self._event.is_set()

    @property
    def failed(self) -> bool:
        """Whether the request's serve raised instead of producing a list."""
        return self._request.failed

    def result(self, timeout: Optional[float] = None) -> Recommendation:
        """Block until the request resolves; return its recommendation.

        Raises :class:`TimeoutError` if ``timeout`` (seconds) elapses first,
        and re-raises the request's own error if its serve failed — exactly
        like :meth:`PendingRequest.result`, but safe to call before the
        flush has happened.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request for user {self.user} not served within "
                f"{timeout!r}s; is the front-end closed or stalled?")
        return self._request.result()


class ServingFrontend:
    """Thread-pool front-end turning concurrent submits into served batches.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.ColdStartServer` that fulfils batches.
    max_batch_size, max_delay:
        Forwarded to the wrapped :class:`~repro.serve.RequestBatcher`:
        auto-flush threshold and the age limit (seconds) for the oldest
        queued request.  ``max_delay`` here defaults to 5 ms rather than
        ``None`` — a concurrent front-end without a deadline would strand
        partial batches forever under light traffic.
    poll_interval:
        How often the flusher thread wakes to check deadlines (seconds);
        defaults to ``max_delay / 4`` clamped to [0.5 ms, 50 ms].  Each
        wake-up also flushes an *idle* queue (no new submits since the
        previous wake-up), which bounds latency well below ``max_delay``
        when every client is blocked waiting on a ticket.
    clock:
        Monotonic time source, injectable for tests (affects the batcher's
        deadline bookkeeping; the flusher thread itself sleeps in real
        time).
    start:
        When False the flusher thread is not started; batches then flush
        only via size auto-flush or explicit :meth:`flush` — useful for
        deterministic single-threaded tests.
    """

    def __init__(self, server: ColdStartServer, max_batch_size: int = 256,
                 max_delay: Optional[float] = 0.005,
                 poll_interval: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 start: bool = True):
        self._batcher = RequestBatcher(server, max_batch_size=max_batch_size,
                                       max_delay=max_delay, clock=clock)
        if poll_interval is None:
            poll_interval = (max_delay / 4.0) if max_delay else 0.002
        self.poll_interval = min(0.05, max(0.0005, float(poll_interval)))
        self._lock = threading.Lock()
        self._outstanding: List[FrontendTicket] = []
        self._submits_seen = 0          # idle detection (see _flusher_tick)
        self._submits_at_last_tick = -1
        self._closed = False
        self._stop = threading.Event()
        self._flusher: Optional[threading.Thread] = None
        if start:
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="serving-frontend-flusher",
                daemon=True)
            self._flusher.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, user: int, k: Optional[int] = None) -> FrontendTicket:
        """Enqueue one request from any thread; returns immediately.

        The returned ticket resolves when its batch is served — by the size
        auto-flush (possibly inside this very call), the background flusher,
        or an explicit :meth:`flush`.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("front-end is closed; no new submits")
            request = self._batcher.submit(user, k)
            ticket = FrontendTicket(request)
            self._outstanding.append(ticket)
            self._submits_seen += 1
            # submit() may have auto-flushed (batch full / deadline passed):
            # resolve every ticket whose request is already done.
            self._resolve_done_locked()
        return ticket

    def flush(self) -> List[Optional[Recommendation]]:
        """Flush the current queue explicitly (thread-safe)."""
        with self._lock:
            results = self._batcher.flush()
            self._resolve_done_locked()
        return results

    # ------------------------------------------------------------------ #
    # Flusher thread
    # ------------------------------------------------------------------ #
    def _flusher_tick(self) -> None:
        """One deadline/idleness check; called under no lock, takes it."""
        with self._lock:
            queued = len(self._batcher)
            if queued and self._submits_at_last_tick == self._submits_seen:
                # No submit arrived for a full poll interval: the queue is
                # idle (e.g. every closed-loop client is blocked on a
                # ticket), so waiting out max_delay only adds latency.
                self._batcher.flush()
            else:
                self._batcher.poll()
            self._submits_at_last_tick = self._submits_seen
            self._resolve_done_locked()

    def _flusher_loop(self) -> None:
        """Background loop enforcing ``max_delay`` and idle flushes."""
        while not self._stop.wait(self.poll_interval):
            self._flusher_tick()

    def _resolve_done_locked(self) -> None:
        """Signal every outstanding ticket whose request has resolved."""
        still_pending = []
        for ticket in self._outstanding:
            if ticket._request.done:
                ticket._event.set()
            else:
                still_pending.append(ticket)
        self._outstanding = still_pending

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of submitted-but-unresolved requests."""
        with self._lock:
            return len(self._outstanding)

    @property
    def server(self) -> ColdStartServer:
        """The wrapped server (stats/cache counters live there)."""
        return self._batcher.server

    @property
    def batches_flushed(self) -> int:
        """Batches served so far (delegates to the wrapped batcher)."""
        return self._batcher.batches_flushed

    def close(self) -> None:
        """Stop the flusher, serve everything still queued, refuse new work.

        Idempotent; every outstanding ticket is resolved before this
        returns, so no caller is left blocking on ``result()``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop.set()
        if self._flusher is not None:
            self._flusher.join()
        with self._lock:
            self._batcher.flush()
            self._resolve_done_locked()

    def __enter__(self) -> "ServingFrontend":
        """Context-manager entry: the front-end itself."""
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        """Context-manager exit: drain the queue and stop the flusher."""
        self.close()

    def __repr__(self) -> str:
        return (f"ServingFrontend(batcher={self._batcher!r}, "
                f"poll_interval={self.poll_interval}, "
                f"closed={self._closed})")
