"""Batched cold-start recommendation server.

The serving hot path of the CDRIB reproduction: a cold-start user observed
only in the source domain is encoded by the source-domain VBGE and scored
directly against the target domain's precomputed :class:`~repro.serve.ItemIndex`
— no mapping function, exactly the paper's inference scheme, but vectorized
over request batches.

Per request batch the server

1. looks each user up in an LRU latent cache,
2. encodes all cache misses in a *single* no-grad VBGE pass
   (``CDRIB.encode_users_batch``),
3. returns top-K items per user via partial sort against the item index.

User latents are bit-identical to the eval-cache path; scores agree with
``CDRIB.cold_start_scores`` up to float rounding (matmul vs. elementwise
reduction order), and served top-K lists are identical to a brute-force
stable full ranking of the catalogue, including score ties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.cdrib import CDRIB
from .cache import LRUCache
from .item_index import ItemIndex


@dataclass
class Recommendation:
    """Top-K recommendation list for one user."""

    user: int
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.items.shape[0])


@dataclass
class ServerStats:
    """Cumulative serving counters (exposed for monitoring/benchmarks).

    Cache hit/miss counts live on the server's :class:`~repro.serve.LRUCache`
    (``server.cache.hits`` / ``server.cache.hit_rate``) — the cache is the
    single source of truth for them.
    """

    requests: int = 0
    users_served: int = 0
    users_encoded: int = 0


class ColdStartServer:
    """Serve top-K target-domain recommendations for source-domain users.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.CDRIB` model (used read-only).
    source, target:
        Transfer direction: users are encoded in ``source``, items come from
        ``target``.
    top_k:
        Default recommendation list length.
    cache_capacity:
        Capacity of the user-latent LRU cache (0 disables caching).
    exclude_seen:
        When True and ``source == target``, items the user interacted with in
        training are removed from the candidates.  (For genuine cold-start
        users the target-domain history is empty by construction, so this
        mainly matters for in-domain serving.)
    """

    def __init__(self, model: CDRIB, source: str, target: str,
                 top_k: int = 10, cache_capacity: int = 10000,
                 exclude_seen: bool = False):
        self.model = model
        self.source = source
        self.target = target
        self.top_k = int(top_k)
        self.exclude_seen = bool(exclude_seen)
        self.index = ItemIndex.build(model, target)
        self.cache = LRUCache(cache_capacity)
        self.stats = ServerStats()
        self._source_graph = model._domain_parts(source)[3]

    # ------------------------------------------------------------------ #
    # Latent management
    # ------------------------------------------------------------------ #
    def user_latents(self, users: Sequence[int]) -> np.ndarray:
        """Latents for ``users``, encoding every cache miss in one batch."""
        users = np.asarray(users, dtype=np.int64)
        if users.size and (users.min() < 0
                           or users.max() >= self._source_graph.num_users):
            raise ValueError(
                f"user index out of range for source domain {self.source!r} "
                f"(num_users={self._source_graph.num_users})"
            )
        latents = np.empty((users.shape[0], self.index.dim), dtype=np.float64)
        miss_positions: List[int] = []
        for position, user in enumerate(users):
            cached = self.cache.get(int(user))
            if cached is None:
                miss_positions.append(position)
            else:
                latents[position] = cached
        if miss_positions:
            miss_users = users[miss_positions]
            # One vectorized VBGE pass covers every miss; duplicate users in
            # one batch are encoded once.
            unique_users, inverse = np.unique(miss_users, return_inverse=True)
            encoded = self.model.encode_users_batch(self.source, unique_users)
            self.stats.users_encoded += int(unique_users.shape[0])
            for offset, position in enumerate(miss_positions):
                latents[position] = encoded[inverse[offset]]
            for row, user in zip(encoded, unique_users):
                # Copy: caching a view would pin the whole batch array in
                # memory for as long as any one of its rows stays cached.
                self.cache.put(int(user), row.copy())
        return latents

    def refresh(self) -> None:
        """Rebuild the item index and drop cached user latents.

        Call after the model checkpoint changes (e.g. between training
        epochs in an online-learning loop).
        """
        self.index = ItemIndex.build(self.model, self.target)
        self.cache.clear()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def recommend(self, users: Sequence[int],
                  k: Optional[int] = None) -> List[Recommendation]:
        """Top-K recommendations for a batch of source-domain users."""
        users = np.asarray(users, dtype=np.int64)
        k = self.top_k if k is None else int(k)
        latents = self.user_latents(users)
        exclude = None
        if self.exclude_seen and self.source == self.target:
            exclude = [self._source_graph.items_of_user(int(u)) for u in users]
        items, scores = self.index.top_k(latents, k, exclude=exclude)
        self.stats.requests += 1
        self.stats.users_served += int(users.shape[0])
        recommendations = []
        for row, user in enumerate(users):
            valid = items[row] >= 0  # drop exclusion padding (see ItemIndex.top_k)
            recommendations.append(Recommendation(
                user=int(user), items=items[row][valid], scores=scores[row][valid]
            ))
        return recommendations

    def recommend_one(self, user: int, k: Optional[int] = None) -> Recommendation:
        """Convenience wrapper for a single user."""
        return self.recommend([user], k=k)[0]

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Pairwise scores compatible with the evaluation ``Scorer`` protocol.

        Allows plugging the server (with its caches) straight into
        :class:`~repro.eval.LeaveOneOutEvaluator`.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        unique_users, inverse = np.unique(users, return_inverse=True)
        latents = self.user_latents(unique_users)[inverse]
        return np.sum(latents * self.index.item_latents[items], axis=-1)

    def __repr__(self) -> str:
        return (f"ColdStartServer({self.source}->{self.target}, "
                f"items={self.index.num_items}, top_k={self.top_k}, "
                f"cache={self.cache!r})")
