"""Batched cold-start recommendation server.

The serving hot path of the CDRIB reproduction: a cold-start user observed
only in the source domain is encoded by the source-domain VBGE and scored
directly against the target domain's precomputed :class:`~repro.serve.ItemIndex`
— no mapping function, exactly the paper's inference scheme, but vectorized
over request batches.

Per request batch the server

1. looks each user up in an LRU latent cache,
2. encodes all cache misses in a *single* no-grad VBGE pass
   (``CDRIB.encode_users_batch``),
3. returns top-K items per user via partial sort against the item index.

User latents are bit-identical to the eval-cache path; scores agree with
``CDRIB.cold_start_scores`` up to float rounding (matmul vs. elementwise
reduction order), and served top-K lists are identical to a brute-force
stable full ranking of the catalogue, including score ties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.cdrib import CDRIB
from .ann import build_index
from .cache import LRUCache
from .item_index import TopKIndex


@dataclass
class Recommendation:
    """Top-K recommendation list for one user."""

    user: int
    items: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return int(self.items.shape[0])


@dataclass
class ServerStats:
    """Cumulative serving counters (exposed for monitoring/benchmarks).

    The contract (pinned by ``tests/test_serve.py``):

    * ``requests`` counts vectorized :meth:`ColdStartServer.recommend`
      calls.  A :class:`~repro.serve.RequestBatcher` flush issues one such
      call *per distinct* ``k`` in the flushed queue, so ``requests`` can
      exceed ``batcher.batches_flushed`` for mixed-``k`` traffic.
    * ``users_served`` counts request slots (duplicates included);
      ``users_encoded`` counts *unique* users that went through the VBGE
      encoder (duplicates within a batch are encoded once).
    * Cache hit/miss counts live on the server's
      :class:`~repro.serve.LRUCache` (``server.cache.hits`` /
      ``server.cache.hit_rate``) — the cache is the single source of truth
      for them, and it counts per *lookup*: every occurrence of a not-yet-
      cached user in a batch counts as its own miss, even though the batch
      encodes that user only once.
    """

    requests: int = 0
    users_served: int = 0
    users_encoded: int = 0


class ColdStartServer:
    """Serve top-K target-domain recommendations for source-domain users.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.CDRIB` model (used read-only).
    source, target:
        Transfer direction: users are encoded in ``source``, items come from
        ``target``.
    top_k:
        Default recommendation list length.
    cache_capacity:
        Capacity of the user-latent LRU cache (0 disables caching).
    exclude_seen:
        When True and ``source == target``, items the user interacted with in
        training are removed from the candidates.  (For genuine cold-start
        users the target-domain history is empty by construction, so this
        mainly matters for in-domain serving.)
    index_backend:
        Retrieval backend name from the :mod:`repro.serve.ann` registry:
        ``"exact"`` (default, brute force) or ``"ivf"`` (approximate,
        catalogue-scale).
    index_options:
        Backend constructor options (e.g. ``{"nprobe": 32}`` for IVF).
    index:
        A prebuilt :class:`~repro.serve.TopKIndex` (e.g. loaded with
        :func:`repro.serve.load_index`) to serve from instead of encoding
        the catalogue; must match the target domain's catalogue size.
    """

    def __init__(self, model: CDRIB, source: str, target: str,
                 top_k: int = 10, cache_capacity: int = 10000,
                 exclude_seen: bool = False, index_backend: str = "exact",
                 index_options: Optional[dict] = None,
                 index: Optional[TopKIndex] = None):
        self.model = model
        self.source = source
        self.target = target
        self.top_k = int(top_k)
        self.exclude_seen = bool(exclude_seen)
        if index is not None:
            expected = model._domain_parts(target)[3].num_items
            if index.num_items != expected:
                raise ValueError(
                    f"prebuilt index holds {index.num_items} items but target "
                    f"domain {target!r} has {expected}")
            # Size alone cannot tell a stale artifact (e.g. saved from an
            # older checkpoint of the same scenario) from the right one:
            # compare against the model's own item latents.  One no-grad
            # encode pass at construction — cheap next to the k-means build
            # the prebuilt index skips, and it turns silently-wrong top-K
            # lists into a loud error.
            current = model.encode_items(target)
            if (index.item_latents.shape != current.shape
                    or not np.allclose(index.item_latents, current,
                                       rtol=1e-6, atol=1e-8)):
                raise ValueError(
                    f"prebuilt index was built from different item latents "
                    f"than this model encodes for domain {target!r}; "
                    f"rebuild the index from this checkpoint")
            self.index = index
            self._index_backend = index.backend
            self._index_options = index.build_options()
        else:
            self._index_backend = index_backend
            self._index_options = dict(index_options or {})
            self.index = build_index(model, target, backend=index_backend,
                                     **self._index_options)
        self.cache = LRUCache(cache_capacity)
        self.stats = ServerStats()
        self._source_graph = model._domain_parts(source)[3]

    # ------------------------------------------------------------------ #
    # Latent management
    # ------------------------------------------------------------------ #
    def user_latents(self, users: Sequence[int]) -> np.ndarray:
        """Latents for ``users``, encoding every cache miss in one batch."""
        users = np.asarray(users, dtype=np.int64)
        if users.size and (users.min() < 0
                           or users.max() >= self._source_graph.num_users):
            raise ValueError(
                f"user index out of range for source domain {self.source!r} "
                f"(num_users={self._source_graph.num_users})"
            )
        # Follow the index's floating dtype: a float32 checkpoint must serve
        # float32 end-to-end (hardcoding float64 here would silently double
        # the latent-buffer and cache memory on the hot path).
        latents = np.empty((users.shape[0], self.index.dim),
                           dtype=self.index.item_latents.dtype)
        miss_positions: List[int] = []
        for position, user in enumerate(users):
            cached = self.cache.get(int(user))
            if cached is None:
                miss_positions.append(position)
            else:
                latents[position] = cached
        if miss_positions:
            miss_users = users[miss_positions]
            # One vectorized VBGE pass covers every miss; duplicate users in
            # one batch are encoded once.
            unique_users, inverse = np.unique(miss_users, return_inverse=True)
            encoded = np.asarray(
                self.model.encode_users_batch(self.source, unique_users),
                dtype=latents.dtype)
            self.stats.users_encoded += int(unique_users.shape[0])
            for offset, position in enumerate(miss_positions):
                latents[position] = encoded[inverse[offset]]
            for row, user in zip(encoded, unique_users):
                # put() copies on insert, so the batch array is never pinned
                # by a cached row and callers cannot alias cache entries.
                self.cache.put(int(user), row)
        return latents

    def refresh(self) -> None:
        """Rebuild the item index and drop cached user latents.

        Call after the model checkpoint changes (e.g. between training
        epochs in an online-learning loop).  The rebuilt index keeps the
        server's retrieval backend and build options — an IVF server stays
        an IVF server (its quantizer is re-trained on the fresh latents).
        """
        self.index = build_index(self.model, self.target,
                                 backend=self._index_backend,
                                 **self._index_options)
        self.cache.clear()

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def recommend(self, users: Sequence[int],
                  k: Optional[int] = None) -> List[Recommendation]:
        """Top-K recommendations for a batch of source-domain users."""
        users = np.asarray(users, dtype=np.int64)
        k = self.top_k if k is None else int(k)
        latents = self.user_latents(users)
        exclude = None
        if self.exclude_seen and self.source == self.target:
            exclude = [self._source_graph.items_of_user(int(u)) for u in users]
        items, scores = self.index.top_k(latents, k, exclude=exclude)
        self.stats.requests += 1
        self.stats.users_served += int(users.shape[0])
        recommendations = []
        for row, user in enumerate(users):
            valid = items[row] >= 0  # drop exclusion padding (see ItemIndex.top_k)
            recommendations.append(Recommendation(
                user=int(user), items=items[row][valid], scores=scores[row][valid]
            ))
        return recommendations

    def recommend_one(self, user: int, k: Optional[int] = None) -> Recommendation:
        """Convenience wrapper for a single user."""
        return self.recommend([user], k=k)[0]

    def score_pairs(self, users: Sequence[int], items: Sequence[int]) -> np.ndarray:
        """Pairwise scores compatible with the evaluation ``Scorer`` protocol.

        Allows plugging the server (with its caches) straight into
        :class:`~repro.eval.LeaveOneOutEvaluator`.

        Item indices are validated: a stray ``-1`` (the padding value of
        :meth:`TopKIndex.top_k`) would otherwise wrap to the *last* catalogue
        item via fancy indexing and return a confidently wrong score.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if items.size and (items.min() < 0 or items.max() >= self.index.num_items):
            raise ValueError(
                f"item index out of range for target domain {self.target!r} "
                f"(num_items={self.index.num_items}); got values in "
                f"[{items.min()}, {items.max()}] — is a -1 padding sentinel "
                f"leaking into score_pairs?")
        unique_users, inverse = np.unique(users, return_inverse=True)
        latents = self.user_latents(unique_users)[inverse]
        return np.sum(latents * self.index.item_latents[items], axis=-1)

    def __repr__(self) -> str:
        return (f"ColdStartServer({self.source}->{self.target}, "
                f"items={self.index.num_items}, top_k={self.top_k}, "
                f"index={self._index_backend!r}, cache={self.cache!r})")
