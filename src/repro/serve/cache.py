"""LRU cache for user latent vectors.

Encoding a cold-start user is a graph propagation pass; serving traffic is
heavily skewed (a small set of active users generates most requests), so the
:class:`ColdStartServer` keeps recently encoded user latents in a bounded
least-recently-used cache.  The cache stores plain numpy vectors keyed by
user index and is invalidated wholesale whenever the checkpoint changes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    capacity:
        Maximum number of entries; 0 disables caching entirely (every lookup
        misses, nothing is stored).
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return the cached value (marking it most-recently-used) or None."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: np.ndarray) -> None:
        """Insert ``value``, evicting the least-recently-used entry if full.

        The cache *owns* its entries: the value is copied on insert (a
        read-only view would still alias the caller's writable base array,
        so mutating the original after ``put`` would silently corrupt every
        future hit) and the copy is marked read-only, because :meth:`get`
        hands cached arrays out by reference (copying on every hit would
        defeat the cache) and a consumer mutating a returned vector must
        fail loudly instead of corrupting the entry in place.
        """
        if self.capacity == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        entry = np.array(value, copy=True)
        entry.setflags(write=False)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (checkpoint rollover); counters are kept."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (f"LRUCache(size={len(self)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
