"""Micro-batching queue for streaming recommendation requests.

Single-user requests are cheap to *answer* but expensive to *encode*: every
VBGE pass pays the full sparse-propagation cost regardless of how many users
ride along.  The :class:`RequestBatcher` therefore accumulates incoming
requests and serves them in one vectorized batch, either when the queue
reaches ``max_batch_size`` or when the caller flushes explicitly.

The design is deliberately synchronous and thread-free: callers get a
:class:`PendingRequest` ticket back, and every ticket of a batch is resolved
(fulfilled or failed) during the same ``flush()``.  This keeps serving fully
deterministic, which the correctness tests (serve vs. brute force) rely on;
the concurrent front-end (:class:`~repro.serve.ServingFrontend`) wraps
``submit``/``poll``/``flush`` under a lock without changing this core.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from .server import ColdStartServer, Recommendation


class PendingRequest:
    """A future-like ticket for one enqueued recommendation request."""

    def __init__(self, user: int, k: Optional[int]):
        self.user = int(user)
        self.k = k
        self._result: Optional[Recommendation] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        """Whether the batch containing this request has been flushed.

        True for both outcomes — fulfilled and failed; check :attr:`failed`
        (or call :meth:`result`, which re-raises) to tell them apart.
        """
        return self._result is not None or self._error is not None

    @property
    def failed(self) -> bool:
        """Whether this request's serve raised instead of producing a list."""
        return self._error is not None

    def result(self) -> Recommendation:
        """Return the recommendation; raises if not flushed yet or failed.

        A request that failed during its flush (e.g. an out-of-range user
        id) re-raises the original error here, on *its* caller — never on
        the co-batched requests.
        """
        if self._error is not None:
            raise self._error
        if self._result is None:
            raise RuntimeError(
                f"request for user {self.user} is still queued; call flush() "
                "on the batcher first"
            )
        return self._result

    def _fulfill(self, recommendation: Recommendation) -> None:
        self._result = recommendation

    def _fail(self, error: BaseException) -> None:
        self._error = error


class RequestBatcher:
    """Accumulate requests and serve them in vectorized batches.

    Parameters
    ----------
    server:
        The :class:`ColdStartServer` used to fulfil batches.
    max_batch_size:
        Auto-flush threshold; queueing the ``max_batch_size``-th request
        triggers an immediate flush.
    max_delay:
        Optional age limit (seconds) for the oldest queued request.  A
        ``submit`` or :meth:`poll` that finds the queue older than this
        flushes the partial batch, bounding tail latency under light
        traffic.  ``None`` (default) keeps the original size-only policy.
    clock:
        Monotonic time source; injectable so timeout behaviour is testable
        without sleeping.
    """

    def __init__(self, server: ColdStartServer, max_batch_size: int = 256,
                 max_delay: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_delay is not None and max_delay < 0:
            raise ValueError(f"max_delay must be non-negative, got {max_delay}")
        self.server = server
        self.max_batch_size = int(max_batch_size)
        self.max_delay = max_delay
        self._clock = clock
        self._oldest_enqueued: Optional[float] = None
        self._queue: List[PendingRequest] = []
        self.batches_flushed = 0

    def __len__(self) -> int:
        return len(self._queue)

    def _deadline_passed(self) -> bool:
        return (self.max_delay is not None
                and self._oldest_enqueued is not None
                and self._clock() - self._oldest_enqueued >= self.max_delay)

    def submit(self, user: int, k: Optional[int] = None) -> PendingRequest:
        """Enqueue one request; auto-flushes when the batch is full.

        With ``max_delay`` configured, a submit that finds the oldest queued
        request past its deadline also flushes — so a timed-out partial
        batch is served together with the request that discovered it.
        """
        request = PendingRequest(user, k)
        if not self._queue:
            self._oldest_enqueued = self._clock()
        self._queue.append(request)
        if len(self._queue) >= self.max_batch_size or self._deadline_passed():
            self.flush()
        return request

    def poll(self) -> List[Recommendation]:
        """Flush iff the oldest queued request has exceeded ``max_delay``.

        Call periodically from a serving loop; returns the flushed
        recommendations (empty when nothing was due).
        """
        if self._deadline_passed():
            return self.flush()
        return []

    def flush(self) -> List[Optional[Recommendation]]:
        """Serve every queued request in one batched call.

        Every ticket of the flushed queue is resolved by the time this
        returns: fulfilled, or — when its request raised — failed with the
        original error attached (:meth:`PendingRequest.result` re-raises
        it).  A poisoned batch (e.g. one out-of-range user id riding with
        valid requests) degrades that ``k``-group to per-request serving so
        only the offending requests fail; co-batched tickets are never
        dropped.  Failed positions are ``None`` in the returned list.
        """
        if not self._queue:
            return []
        queue, self._queue = self._queue, []
        self._oldest_enqueued = None
        # Requests with an explicit k are grouped per k so each group is still
        # a single vectorized call; the common case (default k) is one batch.
        by_k = {}
        for position, request in enumerate(queue):
            by_k.setdefault(request.k, []).append(position)
        results: List[Optional[Recommendation]] = [None] * len(queue)
        for k, positions in by_k.items():
            try:
                recommendations = self.server.recommend(
                    [queue[p].user for p in positions], k=k
                )
            except Exception:
                # The vectorized call is all-or-nothing: one bad request in
                # the group raised before *any* ticket was fulfilled.  Retry
                # per request so valid co-batched traffic is still served and
                # only the offenders carry the error.
                for position in positions:
                    try:
                        recommendation = self.server.recommend(
                            [queue[position].user], k=k)[0]
                    except Exception as error:
                        queue[position]._fail(error)
                    else:
                        queue[position]._fulfill(recommendation)
                        results[position] = recommendation
                continue
            for position, recommendation in zip(positions, recommendations):
                queue[position]._fulfill(recommendation)
                results[position] = recommendation
        self.batches_flushed += 1
        return results
