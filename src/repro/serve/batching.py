"""Micro-batching queue for streaming recommendation requests.

Single-user requests are cheap to *answer* but expensive to *encode*: every
VBGE pass pays the full sparse-propagation cost regardless of how many users
ride along.  The :class:`RequestBatcher` therefore accumulates incoming
requests and serves them in one vectorized batch, either when the queue
reaches ``max_batch_size`` or when the caller flushes explicitly.

The design is deliberately synchronous and thread-free: callers get a
:class:`PendingRequest` ticket back, and every ticket of a batch is fulfilled
during the same ``flush()``.  This keeps serving fully deterministic, which
the correctness tests (serve vs. brute force) rely on; an async front-end can
wrap ``submit``/``flush`` without changing the core.
"""

from __future__ import annotations

from typing import List, Optional

from .server import ColdStartServer, Recommendation


class PendingRequest:
    """A future-like ticket for one enqueued recommendation request."""

    def __init__(self, user: int, k: Optional[int]):
        self.user = int(user)
        self.k = k
        self._result: Optional[Recommendation] = None

    @property
    def done(self) -> bool:
        """Whether the batch containing this request has been flushed."""
        return self._result is not None

    def result(self) -> Recommendation:
        """Return the recommendation; raises if the batch was not flushed yet."""
        if self._result is None:
            raise RuntimeError(
                f"request for user {self.user} is still queued; call flush() "
                "on the batcher first"
            )
        return self._result

    def _fulfill(self, recommendation: Recommendation) -> None:
        self._result = recommendation


class RequestBatcher:
    """Accumulate requests and serve them in vectorized batches.

    Parameters
    ----------
    server:
        The :class:`ColdStartServer` used to fulfil batches.
    max_batch_size:
        Auto-flush threshold; queueing the ``max_batch_size``-th request
        triggers an immediate flush.
    """

    def __init__(self, server: ColdStartServer, max_batch_size: int = 256):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.server = server
        self.max_batch_size = int(max_batch_size)
        self._queue: List[PendingRequest] = []
        self.batches_flushed = 0

    def __len__(self) -> int:
        return len(self._queue)

    def submit(self, user: int, k: Optional[int] = None) -> PendingRequest:
        """Enqueue one request; auto-flushes when the batch is full."""
        request = PendingRequest(user, k)
        self._queue.append(request)
        if len(self._queue) >= self.max_batch_size:
            self.flush()
        return request

    def flush(self) -> List[Recommendation]:
        """Serve every queued request in one batched call."""
        if not self._queue:
            return []
        queue, self._queue = self._queue, []
        # Requests with an explicit k are grouped per k so each group is still
        # a single vectorized call; the common case (default k) is one batch.
        by_k = {}
        for position, request in enumerate(queue):
            by_k.setdefault(request.k, []).append(position)
        results: List[Optional[Recommendation]] = [None] * len(queue)
        for k, positions in by_k.items():
            recommendations = self.server.recommend(
                [queue[p].user for p in positions], k=k
            )
            for position, recommendation in zip(positions, recommendations):
                queue[position]._fulfill(recommendation)
                results[position] = recommendation
        self.batches_flushed += 1
        return results
