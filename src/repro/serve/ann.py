"""Approximate million-item top-K retrieval: the IVF index and the backend registry.

Brute-force serving (:class:`~repro.serve.ItemIndex`) scores every request
against the *whole* catalogue — an O(V·F) matmul plus an O(V) partial sort
per user.  That is exact and simple, but it caps throughput once catalogues
reach production scale.  This module adds the classic inverted-file (IVF)
alternative:

1. **Coarse quantizer** — a pure-numpy k-means (deterministic under a fixed
   seed) clusters the item latents into ``num_clusters`` cells.
2. **Cluster-major storage** — item latents are physically reordered so each
   cell is one contiguous block; probing a cell is a slice, never a gather.
3. **``nprobe`` candidate generation** — a query scores the ``num_clusters``
   centroids (one small matvec), visits the ``nprobe`` best cells, and
4. **exact re-ranking** — candidates are scored with the *same inner product
   over the same latent rows* as brute force and top-K-selected with the
   same tie rule (descending score, ties by ascending item index).  An item
   the IVF search surfaces therefore carries the score brute force would
   have given it (equal to the last float rounding of BLAS kernel
   selection, exactly like the repo's other cross-path score comparisons);
   approximation only ever manifests as a *missing* item, which
   :func:`repro.eval.recall_against_exact` measures.

Backends are pluggable through :data:`INDEX_BACKENDS` /
:func:`make_index` / :func:`build_index`; both ``"exact"`` and ``"ivf"`` are
pre-registered, and :class:`~repro.serve.ColdStartServer` accepts
``index_backend=`` to pick one.  A built index can be published as a
checksummed :mod:`repro.io` checkpoint (:func:`save_index` /
:func:`load_index`), so a served index is reproducible from its manifest.

Throughput and recall trade-offs are gated in
``benchmarks/test_ann_retrieval.py`` and documented in ``docs/SERVING.md``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .item_index import ItemIndex, TopKIndex, prepare_item_latents

#: Rows per chunk when assigning a large catalogue to centroids; bounds the
#: transient (chunk × num_clusters) score matrix to a few hundred MB.
_ASSIGN_CHUNK = 8192

#: Checkpoint ``kind`` tag used by :func:`save_index` / :func:`load_index`.
INDEX_CHECKPOINT_KIND = "topk-index"


# --------------------------------------------------------------------------- #
# Coarse quantizer: deterministic pure-numpy k-means
# --------------------------------------------------------------------------- #
def _assign_to_centroids(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid id per point, chunked so memory stays bounded.

    Uses the ``argmax(x·c - ||c||²/2)`` identity, so each chunk is one GEMM
    instead of a materialised distance tensor; chunking does not change the
    result (assignment is independent per row).
    """
    half_norms = 0.5 * np.einsum("cf,cf->c", centroids, centroids)
    out = np.empty(points.shape[0], dtype=np.int64)
    for start in range(0, points.shape[0], _ASSIGN_CHUNK):
        block = points[start:start + _ASSIGN_CHUNK]
        out[start:start + _ASSIGN_CHUNK] = np.argmax(
            block @ centroids.T - half_norms, axis=1)
    return out


def kmeans_quantizer(points: np.ndarray, num_clusters: int, seed: int = 0,
                     iters: int = 6,
                     train_size: Optional[int] = 65536) -> np.ndarray:
    """Train a k-means coarse quantizer and return its (C, F) centroids.

    Deterministic: all randomness flows from ``seed`` through a dedicated
    PCG64 generator, and Lloyd iterations are plain vectorized numpy, so the
    same inputs always produce the same centroids.  ``train_size`` caps the
    number of points used for the Lloyd iterations (a uniform sample without
    replacement); the final assignment of the full catalogue happens in the
    caller.  Empty clusters are re-seeded from random training points so the
    quantizer always returns exactly ``num_clusters`` distinct cells.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    n = points.shape[0]
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    if num_clusters > n:
        raise ValueError(
            f"num_clusters={num_clusters} exceeds the number of points ({n})")
    rng = np.random.default_rng(seed)
    if train_size is not None and train_size < n:
        train = points[rng.choice(n, size=max(train_size, num_clusters),
                                  replace=False)]
    else:
        train = points
    centroids = train[rng.choice(train.shape[0], size=num_clusters,
                                 replace=False)].copy()
    for _ in range(max(0, iters)):
        assignment = _assign_to_centroids(train, centroids)
        counts = np.bincount(assignment, minlength=num_clusters).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignment, train)
        occupied = counts > 0
        centroids[occupied] = sums[occupied] / counts[occupied, None]
        empty = np.where(~occupied)[0]
        if empty.size:
            centroids[empty] = train[rng.choice(train.shape[0], size=empty.size,
                                                replace=False)]
    return centroids


# --------------------------------------------------------------------------- #
# The IVF index
# --------------------------------------------------------------------------- #
class IVFIndex:
    """Inverted-file approximate top-K index over one item catalogue.

    Parameters
    ----------
    item_latents:
        Array of shape (num_items, dim) — posterior-mean item latents, in
        catalogue order.  Dtype is preserved exactly like
        :class:`~repro.serve.ItemIndex` (float32 stays float32).
    domain:
        Name of the domain the items belong to (bookkeeping only).
    num_clusters:
        Number of IVF cells.  Default: ``min(4096, round(2·sqrt(V)))``,
        clamped to the catalogue size — cells big enough that a probe is
        one substantial contiguous GEMV rather than many tiny ones.
    nprobe:
        Cells visited per query.  Default: ``max(1, num_clusters // 32)``
        (~3% of the catalogue at the default cluster count), which clears
        the recall@10 ≥ 0.95 gate of ``benchmarks/test_ann_retrieval.py``.
    seed, kmeans_iters, train_size:
        Quantizer training controls (see :func:`kmeans_quantizer`).
    """

    backend = "ivf"

    def __init__(self, item_latents: np.ndarray, domain: str = "",
                 num_clusters: Optional[int] = None,
                 nprobe: Optional[int] = None, seed: int = 0,
                 kmeans_iters: int = 6, train_size: Optional[int] = 65536,
                 _prebuilt: Optional[Dict[str, np.ndarray]] = None):
        self.item_latents = prepare_item_latents(item_latents)
        self.domain = domain
        n = self.item_latents.shape[0]
        if num_clusters is None:
            num_clusters = min(4096, max(1, int(round(2.0 * math.sqrt(n)))))
        num_clusters = min(int(num_clusters), n)
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.seed = int(seed)
        self.kmeans_iters = int(kmeans_iters)
        self.train_size = None if train_size is None else int(train_size)
        if nprobe is None:
            nprobe = max(1, num_clusters // 32)
        self.nprobe = int(nprobe)

        if _prebuilt is not None:
            # Deserialisation path: adopt the stored structure verbatim so a
            # loaded index answers queries bit-identically to the saved one.
            self.centroids = _prebuilt["centroids"]
            self._order = _prebuilt["order"]
            self._offsets = _prebuilt["offsets"]
        else:
            self.centroids = kmeans_quantizer(
                self.item_latents, num_clusters, seed=seed,
                iters=kmeans_iters, train_size=train_size)
            assignment = _assign_to_centroids(
                np.asarray(self.item_latents, dtype=np.float64), self.centroids)
            # Stable sort keeps each cell's items in ascending catalogue
            # order, which the tie rule of top_k depends on.
            self._order = np.argsort(assignment, kind="stable").astype(np.int64)
            counts = np.bincount(assignment, minlength=num_clusters)
            self._offsets = np.concatenate(
                ([0], np.cumsum(counts))).astype(np.int64)
        # Cluster-major contiguous copy: probing a cell is a slice.
        self._storage = np.ascontiguousarray(self.item_latents[self._order])

    @property
    def num_items(self) -> int:
        """Number of items in the catalogue."""
        return int(self.item_latents.shape[0])

    @property
    def dim(self) -> int:
        """Latent dimensionality."""
        return int(self.item_latents.shape[1])

    def build_options(self) -> dict:
        """Constructor options that rebuild an equivalent index from latents."""
        return {
            "num_clusters": self.num_clusters,
            "nprobe": self.nprobe,
            "seed": self.seed,
            "kmeans_iters": self.kmeans_iters,
            "train_size": self.train_size,
        }

    @property
    def nprobe(self) -> int:
        """Cells visited per query (tunable after construction)."""
        return self._nprobe

    @nprobe.setter
    def nprobe(self, value: int) -> None:
        """Clamp to [1, num_clusters]; raising it trades speed for recall."""
        value = int(value)
        if value < 1:
            raise ValueError(f"nprobe must be >= 1, got {value}")
        self._nprobe = min(value, self.num_clusters)

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def scores(self, user_latents: np.ndarray) -> np.ndarray:
        """Exact inner-product scores of shape (batch, num_items).

        The full catalogue is kept in original order precisely so the exact
        scorer (used by ``ColdStartServer.score_pairs`` and the evaluation
        bridge) stays available on the approximate backend.
        """
        user_latents = np.asarray(user_latents)
        if not np.issubdtype(user_latents.dtype, np.floating):
            user_latents = user_latents.astype(np.float64)
        return np.atleast_2d(user_latents) @ self.item_latents.T

    def top_k(self, user_latents: np.ndarray, k: int,
              exclude: Optional[list] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k`` per user with exact re-ranking.

        Same contract as :meth:`ItemIndex.top_k`: rows ordered by descending
        score with ties broken by ascending item index, trailing slots padded
        with item ``-1`` / score ``-inf`` when fewer than ``k`` candidates
        survive (small ``nprobe`` or ``exclude``), and excluded items never
        returned.  Scores of surfaced items are computed from the same latent
        rows with the same inner product as brute force, so an item found by
        both backends carries the same score in both up to BLAS kernel
        selection (per-cell GEMV here vs. one batched GEMM there — last-ulp
        rounding, the same caveat as the repo's other cross-path score
        comparisons).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        queries = np.asarray(user_latents)
        if not np.issubdtype(queries.dtype, np.floating):
            queries = queries.astype(np.float64)
        queries = np.atleast_2d(queries)
        # Same NaN contract as ItemIndex.top_k: a NaN query poisons every
        # coarse and candidate score, and argpartition/lexsort misorder NaNs
        # silently, so refuse up front (the query matrix is tiny).
        if np.isnan(queries).any():
            raise ValueError(
                "top_k queries contain NaN; refusing to rank — NaN ordering "
                "under argpartition/lexsort is silently wrong")
        batch = queries.shape[0]
        if exclude is not None and len(exclude) != batch:
            raise ValueError("exclude must hold one sequence per user")
        k = min(k, self.num_items)

        # One GEMM covers every query's coarse scores, and one batched
        # argpartition selects every query's probe set.
        centroid_scores = queries @ self.centroids.T
        c = self.num_clusters
        if self._nprobe >= c:
            probe_sets = np.broadcast_to(np.arange(c), (batch, c))
        else:
            probe_sets = np.argpartition(
                centroid_scores, c - self._nprobe, axis=1)[:, c - self._nprobe:]

        items = np.full((batch, k), -1, dtype=np.int64)
        # Score dtype follows query/storage promotion exactly like
        # ItemIndex.top_k: a float32 catalogue must not pay float64 buffers.
        score_dtype = np.result_type(queries.dtype, self._storage.dtype)
        scores = np.full((batch, k), -np.inf, dtype=score_dtype)
        offsets, storage, order = self._offsets, self._storage, self._order
        for row in range(batch):
            query = queries[row]
            blocks: List[np.ndarray] = []
            id_blocks: List[np.ndarray] = []
            # Ascending cell order keeps results platform-deterministic
            # (summation never crosses cells, so order is free to choose).
            for cell in np.sort(probe_sets[row]):
                lo, hi = offsets[cell], offsets[cell + 1]
                if hi > lo:
                    blocks.append(storage[lo:hi] @ query)
                    id_blocks.append(order[lo:hi])
            if not blocks:
                continue
            cand_scores = np.concatenate(blocks)
            if cand_scores.dtype != score_dtype:
                cand_scores = cand_scores.astype(score_dtype)
            cand_ids = np.concatenate(id_blocks)
            if exclude is not None and len(exclude[row]):
                keep = ~np.isin(cand_ids,
                                np.asarray(list(exclude[row]), dtype=np.int64))
                cand_scores, cand_ids = cand_scores[keep], cand_ids[keep]
            if cand_ids.size == 0:
                continue
            top_ids, top_scores = _tie_stable_top_k(cand_scores, cand_ids, k)
            items[row, :top_ids.shape[0]] = top_ids
            scores[row, :top_scores.shape[0]] = top_scores
        return items, scores

    def __repr__(self) -> str:
        return (f"IVFIndex(items={self.num_items}, dim={self.dim}, "
                f"clusters={self.num_clusters}, nprobe={self.nprobe}, "
                f"domain={self.domain!r})")


def _tie_stable_top_k(cand_scores: np.ndarray, cand_ids: np.ndarray,
                      k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` of a candidate set, ties at the boundary by ascending id.

    The candidate arrays are parallel (``cand_ids[i]`` is the catalogue id of
    ``cand_scores[i]``); candidate ids arrive in ascending order *within*
    each probed cell, but not globally, so the boundary tie-break sorts the
    at-threshold candidates by catalogue id explicitly.  NaN candidate
    scores (NaN item latents) are rejected, matching ``_exact_top_k``.
    """
    if np.isnan(cand_scores).any():
        raise ValueError("cannot rank scores containing NaN")
    m = cand_scores.shape[0]
    if k >= m:
        selected = np.arange(m)
    else:
        partitioned = np.argpartition(cand_scores, m - k)[m - k:]
        threshold = cand_scores[partitioned].min()
        above = np.where(cand_scores > threshold)[0]
        at = np.where(cand_scores == threshold)[0]
        at = at[np.argsort(cand_ids[at], kind="stable")]
        selected = np.concatenate([above, at[: k - above.shape[0]]])
    order = np.lexsort((cand_ids[selected], -cand_scores[selected]))
    selected = selected[order]
    return cand_ids[selected], cand_scores[selected]


# --------------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------------- #
INDEX_BACKENDS: Dict[str, Callable[..., TopKIndex]] = {}


def register_index_backend(name: str,
                           factory: Callable[..., TopKIndex]) -> None:
    """Register a retrieval backend under ``name`` (overwrites silently).

    ``factory(item_latents, domain=..., **options)`` must return an object
    satisfying the :class:`~repro.serve.TopKIndex` protocol.
    """
    INDEX_BACKENDS[name] = factory


register_index_backend("exact", ItemIndex)
register_index_backend("ivf", IVFIndex)


def make_index(item_latents: np.ndarray, backend: str = "exact",
               domain: str = "", **options) -> TopKIndex:
    """Construct a registered retrieval backend over ``item_latents``."""
    if backend not in INDEX_BACKENDS:
        raise KeyError(f"unknown index backend {backend!r}; "
                       f"available: {sorted(INDEX_BACKENDS)}")
    return INDEX_BACKENDS[backend](item_latents, domain=domain, **options)


def build_index(model, domain: str, backend: str = "exact",
                **options) -> TopKIndex:
    """Encode ``domain``'s catalogue with ``model`` and index it.

    The model side is identical for every backend — one fused no-grad
    :meth:`~repro.core.CDRIB.encode_items` pass — so switching backends
    never changes what is being searched, only how.
    """
    return make_index(model.encode_items(domain), backend=backend,
                      domain=domain, **options)


# --------------------------------------------------------------------------- #
# Durable index artifacts (repro.io integration)
# --------------------------------------------------------------------------- #
def save_index(path: str, index: TopKIndex) -> str:
    """Publish an index as a checksummed :mod:`repro.io` checkpoint.

    The payload holds the catalogue latents plus, for IVF, the trained
    structure (centroids, cluster-major permutation, cell offsets), so
    loading never re-runs k-means; the manifest records the backend, domain,
    build options and the payload's SHA-256 — the artifact is reproducible
    from its checksum and a corrupt copy refuses to load.
    """
    from ..io import save_checkpoint

    arrays: Dict[str, np.ndarray] = {"index/item_latents": index.item_latents}
    if isinstance(index, IVFIndex):
        arrays["index/centroids"] = index.centroids
        arrays["index/order"] = index._order
        arrays["index/offsets"] = index._offsets
    manifest = {
        "index": {
            "backend": index.backend,
            "domain": index.domain,
            "num_items": index.num_items,
            "dim": index.dim,
            "options": index.build_options(),
        },
    }
    return save_checkpoint(path, arrays, manifest=manifest,
                           kind=INDEX_CHECKPOINT_KIND)


def load_index(path: str) -> TopKIndex:
    """Load an index checkpoint written by :func:`save_index`.

    Checksum, format-version and kind validation come from
    :func:`repro.io.load_checkpoint`; the rebuilt index answers queries
    bit-identically to the one that was saved (IVF structure is restored
    from the payload, not re-trained).
    """
    from ..io import CheckpointError, load_checkpoint

    checkpoint = load_checkpoint(path, expect_kind=INDEX_CHECKPOINT_KIND)
    meta = checkpoint.manifest.get("index")
    if not isinstance(meta, dict) or "backend" not in meta:
        raise CheckpointError(
            f"checkpoint {path!r} has no index metadata; was it written by "
            f"save_index?")
    backend = str(meta["backend"])
    domain = str(meta.get("domain", ""))
    arrays = checkpoint.namespace("index")
    if "item_latents" not in arrays:
        raise CheckpointError(f"checkpoint {path!r} is missing the catalogue "
                              f"latents")
    options = dict(meta.get("options") or {})
    if backend == "ivf":
        for key in ("centroids", "order", "offsets"):
            if key not in arrays:
                raise CheckpointError(
                    f"checkpoint {path!r} is missing IVF structure {key!r}")
        return IVFIndex(arrays["item_latents"], domain=domain, **options,
                        _prebuilt={"centroids": arrays["centroids"],
                                   "order": arrays["order"].astype(np.int64),
                                   "offsets": arrays["offsets"].astype(np.int64)})
    if backend == "exact":
        return ItemIndex(arrays["item_latents"], domain=domain)
    if backend in INDEX_BACKENDS:
        return INDEX_BACKENDS[backend](arrays["item_latents"], domain=domain,
                                       **options)
    raise CheckpointError(
        f"checkpoint {path!r} holds unknown index backend {backend!r}; "
        f"available: {sorted(INDEX_BACKENDS)}")
