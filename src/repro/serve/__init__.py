"""High-throughput cold-start serving for CDRIB (``repro.serve``).

This package turns the reproduction's inference scheme — encode a cold-start
user with the source-domain VBGE, score against target-domain item latents —
into a batched serving subsystem:

* :class:`TopKIndex` — the retrieval protocol every backend implements.
* :class:`ItemIndex` — the ``"exact"`` backend: target-domain item latents,
  precomputed once per checkpoint, with exact-tie top-K retrieval via
  partial sort.
* :class:`IVFIndex` — the ``"ivf"`` backend: inverted-file approximate
  retrieval (k-means coarse quantizer, cluster-major storage,
  ``nprobe``-controlled probing, exact re-ranking of candidates) for
  catalogue scales where brute force caps throughput.
* :class:`ColdStartServer` — batched user encoding (one no-grad VBGE pass per
  request batch) with an LRU user-latent cache and a pluggable index
  (``index_backend="exact" | "ivf"``).
* :class:`RequestBatcher` — micro-batching queue for streaming workloads.
* :class:`ServingFrontend` — thread-safe concurrent front-end over the
  batcher: ``submit()`` from any thread returns a :class:`FrontendTicket`,
  a background flusher enforces ``max_delay``, and served lists stay
  bit-identical to the synchronous path.
* :class:`LRUCache` — the bounded cache primitive.
* :func:`make_index` / :func:`build_index` / :func:`save_index` /
  :func:`load_index` — the backend registry and checksummed on-disk index
  artifacts (:mod:`repro.io` checkpoints).

Served top-K lists from the exact backend are identical to a brute-force
stable full ranking of the catalogue, including score ties; the IVF backend
surfaces a measured-recall subset but scores it with the same inner product
(see ``tests/test_serve.py``, ``tests/test_serve_ann.py`` and
``docs/SERVING.md``).
"""

from .ann import (
    INDEX_BACKENDS,
    IVFIndex,
    build_index,
    kmeans_quantizer,
    load_index,
    make_index,
    register_index_backend,
    save_index,
)
from .batching import PendingRequest, RequestBatcher
from .cache import LRUCache
from .frontend import FrontendTicket, ServingFrontend
from .item_index import ItemIndex, TopKIndex, brute_force_ranking
from .server import ColdStartServer, Recommendation, ServerStats

__all__ = [
    "TopKIndex",
    "ItemIndex",
    "IVFIndex",
    "INDEX_BACKENDS",
    "register_index_backend",
    "make_index",
    "build_index",
    "save_index",
    "load_index",
    "kmeans_quantizer",
    "brute_force_ranking",
    "LRUCache",
    "ColdStartServer",
    "Recommendation",
    "ServerStats",
    "RequestBatcher",
    "PendingRequest",
    "ServingFrontend",
    "FrontendTicket",
]
