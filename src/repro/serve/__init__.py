"""High-throughput cold-start serving for CDRIB (``repro.serve``).

This package turns the reproduction's inference scheme — encode a cold-start
user with the source-domain VBGE, score against target-domain item latents —
into a batched serving subsystem:

* :class:`ItemIndex` — target-domain item latents, precomputed once per
  checkpoint, with exact-tie top-K retrieval via partial sort.
* :class:`ColdStartServer` — batched user encoding (one no-grad VBGE pass per
  request batch) with an LRU user-latent cache.
* :class:`RequestBatcher` — micro-batching queue for streaming workloads.
* :class:`LRUCache` — the bounded cache primitive.

Served top-K lists are identical to a brute-force stable full ranking of the
catalogue, including score ties; see ``tests/test_serve.py``.
"""

from .batching import PendingRequest, RequestBatcher
from .cache import LRUCache
from .item_index import ItemIndex, brute_force_ranking
from .server import ColdStartServer, Recommendation, ServerStats

__all__ = [
    "ItemIndex",
    "brute_force_ranking",
    "LRUCache",
    "ColdStartServer",
    "Recommendation",
    "ServerStats",
    "RequestBatcher",
    "PendingRequest",
]
