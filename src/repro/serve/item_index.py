"""Precomputed target-domain item index for cold-start serving.

CDRIB scores a cold-start user by an inner product between the user's
source-domain latent and every target-domain item latent (Section III of the
paper).  The item side of that product is *static per checkpoint*: it only
changes when the model parameters change.  :class:`ItemIndex` therefore
encodes all target-domain items once (a single fused no-grad propagation
pass) and answers top-K queries against the cached matrix with a partial
sort (``np.argpartition``) instead of ranking the full catalogue.

Tie handling is exact: results are ordered by descending score with ties
broken by ascending item index, which is precisely the order produced by a
brute-force stable full ranking.  The partial sort selects the boundary
items explicitly, so a score tie that straddles the K-th position never
depends on ``argpartition``'s arbitrary internal ordering.

Retrieval is *pluggable*: :class:`ItemIndex` is the ``"exact"`` reference
implementation of the :class:`TopKIndex` protocol; the approximate IVF
backend (``"ivf"``) and the backend registry live in
:mod:`repro.serve.ann`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # Python >= 3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - typing_extensions fallback unused
    Protocol = object

    def runtime_checkable(cls):
        """Identity decorator when typing.Protocol is unavailable."""
        return cls

from ..core.cdrib import CDRIB


@runtime_checkable
class TopKIndex(Protocol):
    """Structural protocol every retrieval backend implements.

    A backend owns one domain's item-latent catalogue and answers batched
    top-K queries against it.  ``ItemIndex`` (``backend="exact"``) is the
    brute-force reference; approximate backends (e.g. the IVF index in
    :mod:`repro.serve.ann`) may return a different *set* of items, but the
    scores of every item they surface must come from the same inner product
    over the same latents, and rows must be ordered by descending score with
    ties broken by ascending item index — so downstream consumers
    (:class:`~repro.serve.ColdStartServer`, the evaluation scorer bridge)
    never need to know which backend is plugged in.
    """

    #: Registry name of the backend (``"exact"``, ``"ivf"``, ...).
    backend: str
    #: Item latents in catalogue order, shape (num_items, dim).
    item_latents: np.ndarray
    #: Domain the catalogue belongs to (bookkeeping only).
    domain: str

    @property
    def num_items(self) -> int:
        """Number of items in the catalogue."""

    @property
    def dim(self) -> int:
        """Latent dimensionality."""

    def build_options(self) -> dict:
        """The constructor options needed to rebuild an equivalent index."""

    def scores(self, user_latents: np.ndarray) -> np.ndarray:
        """Exact inner-product scores of shape (batch, num_items)."""

    def top_k(self, user_latents: np.ndarray, k: int,
              exclude: Optional[list] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` ``(items, scores)`` per user, padded with -1/-inf."""


class ItemIndex:
    """Cached latent representations of one domain's item catalogue.

    Parameters
    ----------
    item_latents:
        Array of shape (num_items, dim) — posterior-mean item latents.
    domain:
        Name of the domain the items belong to (bookkeeping only).
    """

    backend = "exact"

    def __init__(self, item_latents: np.ndarray, domain: str = ""):
        self.item_latents = prepare_item_latents(item_latents)
        self.domain = domain

    @classmethod
    def build(cls, model: CDRIB, domain: str) -> "ItemIndex":
        """Encode every item of ``domain`` with the model's fused no-grad pass."""
        return cls(model.encode_items(domain), domain=domain)

    @property
    def num_items(self) -> int:
        """Number of items in the catalogue."""
        return int(self.item_latents.shape[0])

    @property
    def dim(self) -> int:
        """Latent dimensionality."""
        return int(self.item_latents.shape[1])

    def build_options(self) -> dict:
        """Exact search has no tunables; rebuilds need only the latents."""
        return {}

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def scores(self, user_latents: np.ndarray) -> np.ndarray:
        """Inner-product scores of shape (batch, num_items).

        The score dtype follows numpy promotion of the query and index
        dtypes (float32 queries against a float32 index stay float32).
        """
        user_latents = np.asarray(user_latents)
        if not np.issubdtype(user_latents.dtype, np.floating):
            user_latents = user_latents.astype(np.float64)
        return np.atleast_2d(user_latents) @ self.item_latents.T

    def top_k(self, user_latents: np.ndarray, k: int,
              exclude: Optional[list] = None) -> Tuple[np.ndarray, np.ndarray]:
        """Top-``k`` items per user via partial sort.

        Parameters
        ----------
        user_latents:
            (batch, dim) user latents.
        k:
            Number of items to return per user (clamped to the catalogue size).
        exclude:
            Optional per-user sequences of item indices to remove from the
            candidates (e.g. items the user already interacted with).

        Returns
        -------
        ``(items, scores)`` arrays of shape (batch, k), each row ordered by
        descending score, ties broken by ascending item index — identical to a
        brute-force stable full ranking.  When ``exclude`` leaves a row with
        fewer than ``k`` candidates, its trailing slots are padded with item
        ``-1`` and score ``-inf``; excluded items are never returned.  The
        score dtype follows the query/index promotion (float32 stays
        float32).

        NaN scores are *rejected* (:class:`ValueError`) rather than ranked:
        ``argpartition``'s boundary-threshold comparison and ``lexsort``
        silently misorder NaNs, so a NaN in a user or item latent would
        otherwise produce a confidently wrong list.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        score_matrix = self.scores(user_latents)
        if np.isnan(score_matrix).any():
            raise ValueError(
                "top_k scores contain NaN (NaN in user or item latents?); "
                "refusing to rank — NaN ordering under argpartition/lexsort "
                "is silently wrong")
        batch = score_matrix.shape[0]
        if exclude is not None and len(exclude) != batch:
            raise ValueError("exclude must hold one sequence per user")
        k = min(k, self.num_items)

        items = np.empty((batch, k), dtype=np.int64)
        scores = np.empty((batch, k), dtype=score_matrix.dtype)
        for row in range(batch):
            row_scores = score_matrix[row]
            banned = None
            if exclude is not None and len(exclude[row]):
                banned = np.asarray(list(exclude[row]), dtype=np.int64)
                row_scores = row_scores.copy()
                row_scores[banned] = -np.inf
            top_items = _exact_top_k(row_scores, k)
            top_scores = row_scores[top_items]
            if banned is not None:
                overflow = np.isin(top_items, banned)
                top_items = np.where(overflow, -1, top_items)
                top_scores = np.where(overflow, -np.inf, top_scores)
            items[row] = top_items
            scores[row] = top_scores
        return items, scores


def prepare_item_latents(item_latents: np.ndarray) -> np.ndarray:
    """Normalise a catalogue latent matrix for indexing (shared by backends).

    Preserves the model's floating dtype: force-casting float32 latents to
    float64 would silently double the index's resident memory.  Non-float
    inputs (e.g. integer test fixtures) still become float64, and the result
    is always a C-contiguous 2-D array.
    """
    latents = np.asarray(item_latents)
    if not np.issubdtype(latents.dtype, np.floating):
        latents = latents.astype(np.float64)
    latents = np.ascontiguousarray(latents)
    if latents.ndim != 2:
        raise ValueError(f"item_latents must be 2-D, got shape {latents.shape}")
    return latents


def _exact_top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` best scores, ties broken by ascending index.

    ``np.argpartition`` alone is not tie-stable at the K-th boundary, so the
    boundary score is resolved explicitly: every item strictly above the
    threshold is kept, and the remaining slots are filled with the
    lowest-indexed items *at* the threshold (``np.where`` returns indices in
    ascending order).  The selected set is then ordered by (-score, index).

    NaN scores are rejected: a NaN threshold makes both boundary comparisons
    (``>`` and ``==``) vacuously false, silently shrinking the selection,
    and ``lexsort`` orders NaNs arbitrarily — the contract (pinned by
    ``tests/test_serve.py``) is to raise instead.
    """
    if np.isnan(scores).any():
        raise ValueError("cannot rank scores containing NaN")
    n = scores.shape[0]
    if k >= n:
        selected = np.arange(n)
    else:
        partitioned = np.argpartition(scores, n - k)[n - k:]
        threshold = scores[partitioned].min()
        above = np.where(scores > threshold)[0]
        at = np.where(scores == threshold)[0]
        selected = np.concatenate([above, at[: k - above.shape[0]]])
    order = np.lexsort((selected, -scores[selected]))
    return selected[order]


def brute_force_ranking(scores: np.ndarray) -> np.ndarray:
    """Full stable ranking by (-score, index) — the reference for tests."""
    indices = np.arange(scores.shape[0])
    order = np.lexsort((indices, -np.asarray(scores, dtype=np.float64)))
    return indices[order]
