"""Learning-rate schedules (simple multiplicative and step decays)."""

from __future__ import annotations

from .optimizers import Optimizer


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch and return the (possibly updated) learning rate."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class ExponentialLR:
    """Multiply the learning rate by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95):
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> float:
        """Advance one epoch and return the updated learning rate."""
        self.optimizer.lr *= self.gamma
        return self.optimizer.lr
