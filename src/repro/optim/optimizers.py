"""Gradient-based optimizers.

The paper trains CDRIB with Adam and the baselines with the optimizers from
their original papers (SGD or Adam); both are provided here together with
L2 weight decay and global-norm gradient clipping.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and common utilities."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear the gradients of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _effective_grad(self, param: Parameter) -> Optional[np.ndarray]:
        if param.grad is None:
            return None
        if self.weight_decay > 0:
            return param.grad + self.weight_decay * param.data
        return param.grad

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            if self.momentum > 0:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                update = self._velocity[index]
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the optimizer used for CDRIB."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for logging / tests).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
