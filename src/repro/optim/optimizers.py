"""Gradient-based optimizers.

The paper trains CDRIB with Adam and the baselines with the optimizers from
their original papers (SGD or Adam); both are provided here together with
L2 weight decay and global-norm gradient clipping.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list and common utilities."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear the gradients of every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def _effective_grad(self, param: Parameter) -> Optional[np.ndarray]:
        if param.grad is None:
            return None
        if self.weight_decay > 0:
            return param.grad + self.weight_decay * param.data
        return param.grad

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # State (de)serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """Return a copy of the optimizer's mutable state.

        Subclasses with per-parameter buffers extend this; buffers are keyed
        positionally (the parameter list order is the module's
        ``named_parameters`` order, which is deterministic).
        """
        return {"num_parameters": len(self.parameters)}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self._check_state_count(state)

    def _check_state_count(self, state: Dict[str, object]) -> None:
        count = int(state.get("num_parameters", len(self.parameters)))
        if count != len(self.parameters):
            raise ValueError(
                f"optimizer state covers {count} parameters, "
                f"this optimizer manages {len(self.parameters)}"
            )

    def _check_buffer_shapes(self, buffers: List[np.ndarray], label: str) -> None:
        if len(buffers) != len(self.parameters):
            raise ValueError(
                f"optimizer state has {len(buffers)} {label} buffers for "
                f"{len(self.parameters)} parameters"
            )
        for index, (buffer, param) in enumerate(zip(buffers, self.parameters)):
            if np.shape(buffer) != param.data.shape:
                raise ValueError(
                    f"{label} buffer {index} has shape {np.shape(buffer)}, "
                    f"expected {param.data.shape}"
                )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            if self.momentum > 0:
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                update = self._velocity[index]
            else:
                update = grad
            param.data = param.data - self.lr * update

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        velocity = [np.asarray(v, dtype=np.float64) for v in state["velocity"]]
        self._check_buffer_shapes(velocity, "velocity")
        self._velocity = [v.copy() for v in velocity]


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) — the optimizer used for CDRIB.

    With ``fused=True`` the per-parameter Python update loop is replaced by
    vectorized elementwise updates over one flattened buffer spanning every
    parameter, and gradient-norm clipping can run inside :meth:`step`
    (``max_grad_norm``) on the same buffer.  All elementwise operations are
    identical to the reference loop, so fused and unfused trajectories are
    bitwise-equal; the only observable difference is that in-step clipping
    leaves ``param.grad`` unscaled (the scaled copy lives in the flat
    buffer).  Steps where some parameters have no gradient fall back to an
    in-place per-parameter loop with the exact reference semantics
    (shared first/second-moment state, global step count).
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.001,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, fused: bool = False):
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.fused = bool(fused)
        self._step_count = 0
        if self.fused:
            sizes = [p.data.size for p in self.parameters]
            self._offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
            total = int(self._offsets[-1])
            self._flat_m = np.zeros(total)
            self._flat_v = np.zeros(total)
            # Per-parameter moment views into the flat buffers, so the
            # missing-gradient fallback shares state with the fast path.
            self._m = [self._flat_m[self._offsets[i]:self._offsets[i + 1]]
                       .reshape(p.data.shape) for i, p in enumerate(self.parameters)]
            self._v = [self._flat_v[self._offsets[i]:self._offsets[i + 1]]
                       .reshape(p.data.shape) for i, p in enumerate(self.parameters)]
            self._master: Optional[np.ndarray] = None
            self._adopt_parameters()
        else:
            self._m = [np.zeros_like(p.data) for p in self.parameters]
            self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self, max_grad_norm: Optional[float] = None) -> None:
        if not self.fused:
            if max_grad_norm is not None:
                clip_grad_norm(self.parameters, max_grad_norm)
            self._step_reference()
            return
        grads = [param.grad for param in self.parameters]
        if any(grad is None for grad in grads):
            if max_grad_norm is not None:
                clip_grad_norm(self.parameters, max_grad_norm)
            self._step_inplace_fallback()
            return
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        flat_grad = np.concatenate([grad.ravel() for grad in grads])
        if max_grad_norm is not None:
            # One fused dot product instead of clip_grad_norm's per-parameter
            # loop; the summation order differs from the reference only at
            # the last ulp of the norm.
            total = float(np.sqrt(flat_grad @ flat_grad))
            if total > max_grad_norm and total > 0:
                flat_grad *= max_grad_norm / total
        master = self._master
        if any(p.data.base is not master for p in self.parameters):
            self._adopt_parameters()
            master = self._master
        if self.weight_decay > 0:
            flat_grad = flat_grad + self.weight_decay * master
        m, v = self._flat_m, self._flat_v
        m *= self.beta1
        m += (1 - self.beta1) * flat_grad
        v *= self.beta2
        v += (1 - self.beta2) * flat_grad ** 2
        m_hat = m / bias1
        v_hat = v / bias2
        master -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        """Adam state in engine-agnostic per-parameter form.

        Fused and reference optimizers share one canonical layout (step count
        plus per-parameter first/second moments), so a checkpoint written by
        either engine restores into the other — the fused flat buffers are
        just a different in-memory view of the same values.
        """
        state = super().state_dict()
        state["step_count"] = int(self._step_count)
        state["m"] = [m.copy() for m in self._m]
        state["v"] = [v.copy() for v in self._v]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore moments and step count; fused engines re-adopt the master.

        After a surrounding ``Module.load_state_dict`` rebinds every
        ``param.data``, the fused fast path's master buffer is stale; loading
        optimizer state therefore re-adopts the parameters immediately so the
        next :meth:`step` starts from a consistent aliasing (rather than
        relying on the lazy ``.base`` check).
        """
        super().load_state_dict(state)
        first = [np.asarray(m, dtype=np.float64) for m in state["m"]]
        second = [np.asarray(v, dtype=np.float64) for v in state["v"]]
        self._check_buffer_shapes(first, "first-moment")
        self._check_buffer_shapes(second, "second-moment")
        self._step_count = int(state["step_count"])
        if self.fused:
            # Write through the flat-buffer views so the fast path and the
            # missing-gradient fallback keep sharing state.
            for index in range(len(self.parameters)):
                self._m[index][...] = first[index]
                self._v[index][...] = second[index]
            self._adopt_parameters()
        else:
            self._m = [m.copy() for m in first]
            self._v = [v.copy() for v in second]

    def _adopt_parameters(self) -> None:
        """(Re)alias every ``param.data`` as a view into one master buffer.

        Fused updates then mutate the master in place — no per-step gather or
        scatter.  External rebinds of ``param.data`` (``load_state_dict``,
        manual surgery) are detected at the next step via the ``.base`` check
        and re-adopted here, so values always follow the parameters.
        """
        self._master = np.concatenate([p.data.ravel() for p in self.parameters])
        offsets = self._offsets
        for index, param in enumerate(self.parameters):
            param.data = (self._master[offsets[index]:offsets[index + 1]]
                          .reshape(param.data.shape))

    def _step_reference(self) -> None:
        """The seed per-parameter update loop (kept verbatim)."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _step_inplace_fallback(self) -> None:
        """Reference-semantics update that keeps the flat-view aliasing.

        Used by the fused optimizer when some parameters have no gradient
        this step; the moment updates write *in place* so the views into the
        flat buffers stay valid, with values bitwise-equal to the reference
        loop.
        """
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            grad = self._effective_grad(param)
            if grad is None:
                continue
            m, v = self._m[index], self._v[index]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            # In-place so param.data stays a master-buffer view: a scenario
            # that hits this fallback repeatedly (a parameter that never
            # receives gradients) must not detach the fast path.
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Rescale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the norm before clipping (useful for logging / tests).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
