"""Optimizers and learning-rate schedules."""

from .optimizers import Adam, Optimizer, SGD, clip_grad_norm
from .schedules import ExponentialLR, StepLR

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm", "StepLR", "ExponentialLR"]
