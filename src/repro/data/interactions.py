"""Raw interaction tables and the paper's preprocessing filters.

An :class:`InteractionTable` stores (user_key, item_key) pairs using the
*external* identifiers of the source data (strings for Amazon reviewer /
ASIN ids, integers for the synthetic generator).  The table supports the
k-core style filtering described in Section IV-A of the paper (drop items
with fewer than 10 interactions and users with fewer than 5) and conversion
into contiguous integer index spaces.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

import numpy as np


@dataclass
class InteractionTable:
    """A bag of user-item interactions identified by external keys."""

    name: str
    pairs: List[Tuple[Hashable, Hashable]] = field(default_factory=list)

    def add(self, user_key: Hashable, item_key: Hashable) -> None:
        """Append one interaction."""
        self.pairs.append((user_key, item_key))

    def extend(self, pairs: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Append many interactions."""
        self.pairs.extend(pairs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_interactions(self) -> int:
        return len(self.pairs)

    def users(self) -> List[Hashable]:
        """Distinct user keys in first-appearance order."""
        return list(dict.fromkeys(user for user, _ in self.pairs))

    def items(self) -> List[Hashable]:
        """Distinct item keys in first-appearance order."""
        return list(dict.fromkeys(item for _, item in self.pairs))

    def user_counts(self) -> Counter:
        """Number of interactions per user key."""
        return Counter(user for user, _ in self.pairs)

    def item_counts(self) -> Counter:
        """Number of interactions per item key."""
        return Counter(item for _, item in self.pairs)

    # ------------------------------------------------------------------ #
    # Preprocessing
    # ------------------------------------------------------------------ #
    def deduplicate(self) -> "InteractionTable":
        """Return a copy with repeated (user, item) pairs collapsed."""
        unique = list(dict.fromkeys(self.pairs))
        return InteractionTable(self.name, unique)

    def filter_core(self, min_user_interactions: int = 5,
                    min_item_interactions: int = 10,
                    max_rounds: int = 20) -> "InteractionTable":
        """Iteratively drop sparse items then sparse users (Section IV-A).

        The paper filters items with fewer than 10 interactions and users
        with fewer than 5.  Because removing one side can push the other
        below its threshold, the filter is applied alternately until a fixed
        point (or ``max_rounds``) is reached.
        """
        pairs = list(dict.fromkeys(self.pairs))
        for _ in range(max_rounds):
            item_counts = Counter(item for _, item in pairs)
            keep_items = {item for item, count in item_counts.items()
                          if count >= min_item_interactions}
            filtered = [(u, i) for (u, i) in pairs if i in keep_items]

            user_counts = Counter(user for user, _ in filtered)
            keep_users = {user for user, count in user_counts.items()
                          if count >= min_user_interactions}
            filtered = [(u, i) for (u, i) in filtered if u in keep_users]

            if len(filtered) == len(pairs):
                pairs = filtered
                break
            pairs = filtered
        return InteractionTable(self.name, pairs)

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def to_indexed(self, user_index: Dict[Hashable, int] = None,
                   item_index: Dict[Hashable, int] = None
                   ) -> Tuple[np.ndarray, Dict[Hashable, int], Dict[Hashable, int]]:
        """Convert key pairs to an integer edge array.

        Existing index maps may be supplied (e.g. to share a user index space
        across domains); unseen keys are appended in first-appearance order.
        """
        user_index = dict(user_index) if user_index else {}
        item_index = dict(item_index) if item_index else {}
        edges = np.empty((len(self.pairs), 2), dtype=np.int64)
        for row, (user, item) in enumerate(self.pairs):
            if user not in user_index:
                user_index[user] = len(user_index)
            if item not in item_index:
                item_index[item] = len(item_index)
            edges[row, 0] = user_index[user]
            edges[row, 1] = item_index[item]
        return edges, user_index, item_index

    def __len__(self) -> int:
        return len(self.pairs)

    def __repr__(self) -> str:
        return (
            f"InteractionTable(name={self.name!r}, interactions={len(self.pairs)}, "
            f"users={len(self.users())}, items={len(self.items())})"
        )
