"""Negative sampling and mini-batch iteration over interaction edges.

The batch sampler is the training loop's hottest Python path, so
:meth:`NegativeSampler.sample_batch` runs a *vectorized block draw* that is
bit-for-bit faithful to the per-user rejection loop of
:meth:`NegativeSampler.sample_for_user`: numpy's PCG64 bounded-integer
generation is sequential per element (one size-S call consumes the stream
exactly like S consecutive size-1 calls), so the batch path can draw every
user's rejection window in one call, vectorize the accept/reject decisions,
and — when a user's window under-fills — reposition the generator exactly by
restoring the saved state and re-drawing the consumed prefix.  Identical
seeds therefore produce identical negatives (and identical downstream
training trajectories) on both paths.
"""

from __future__ import annotations

import copy

from typing import Dict, Iterator, Optional, Set, Tuple

import numpy as np

from ..graph import BipartiteGraph


def _mask_duplicates(values: np.ndarray, acceptable: np.ndarray) -> None:
    """Clear ``acceptable`` for row-wise repeat occurrences, in place.

    For the narrow windows of the rejection sampler a pairwise sweep beats
    sort-based dedup by a wide margin; wide windows fall back to a stable
    argsort.
    """
    span = values.shape[1]
    if span == 4:
        # The common window (2 negatives -> 4 draws), fully unrolled: each
        # position is compared against every earlier one with flat 1-D ops.
        c0, c1, c2, c3 = (values[:, 0], values[:, 1], values[:, 2], values[:, 3])
        acceptable[:, 1] &= c1 != c0
        acceptable[:, 2] &= (c2 != c0) & (c2 != c1)
        acceptable[:, 3] &= (c3 != c0) & (c3 != c1) & (c3 != c2)
        return
    if span <= 16:
        for j in range(1, span):
            col = values[:, j]
            fresh = col != values[:, 0]
            for k in range(1, j):
                fresh &= col != values[:, k]
            acceptable[:, j] &= fresh
        return
    order = np.argsort(values, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(values, order, axis=1)
    keep_sorted = np.ones(values.shape, dtype=bool)
    keep_sorted[:, 1:] = sorted_vals[:, 1:] != sorted_vals[:, :-1]
    keep = np.empty_like(keep_sorted)
    np.put_along_axis(keep, order, keep_sorted, axis=1)
    acceptable &= keep


class NegativeSampler:
    """Sample items a user has *not* interacted with.

    Used both for the BCE / BPR training losses and for the leave-one-out
    evaluation protocol (1 positive + 999 sampled negatives).
    """

    def __init__(self, graph: BipartiteGraph, seed: int = 0):
        self.graph = graph
        self.num_items = graph.num_items
        self._interacted: Dict[int, Set[int]] = graph.user_item_set()
        self._rng = np.random.default_rng(seed)
        # Vectorized-membership structures for the block fast path: per-user
        # degrees plus either a dense boolean interaction matrix (small
        # graphs; fancy-indexed lookups are ~4x faster than a binary search)
        # or the sorted (user * num_items + item) keys of every edge.
        self._degrees = graph.user_degrees()
        if graph.edges.size:
            self._edge_keys = np.sort(
                graph.edges[:, 0] * np.int64(self.num_items) + graph.edges[:, 1]
            )
        else:
            self._edge_keys = np.empty(0, dtype=np.int64)
        if graph.edges.size and graph.num_users * self.num_items <= 16_000_000:
            self._member_matrix = np.zeros((graph.num_users, self.num_items),
                                           dtype=bool)
            self._member_matrix[graph.edges[:, 0], graph.edges[:, 1]] = True
            # Complement view so the hot path gathers "acceptable" directly.
            self._nonmember_matrix = ~self._member_matrix
        else:
            self._member_matrix = None
            self._nonmember_matrix = None

    def get_state(self) -> dict:
        """Snapshot of the PCG64 bit-generator state (JSON-serialisable).

        Together with :meth:`set_state` this is what makes training resume
        *exact*: the block fast path is stream-exact w.r.t. the per-user
        loop, so restoring the generator state reproduces every future draw
        bit-for-bit on either path.
        """
        return copy.deepcopy(self._rng.bit_generator.state)

    def set_state(self, state: dict) -> None:
        """Restore a snapshot taken by :meth:`get_state`."""
        self._rng.bit_generator.state = copy.deepcopy(state)

    def sample_for_user(self, user: int, count: int,
                        exclude: Optional[Set[int]] = None) -> np.ndarray:
        """Return ``count`` negative item indices for ``user``.

        Items in the user's training history and in ``exclude`` are avoided.
        Sampling is with rejection, falling back to an explicit complement
        when the candidate pool is small.
        """
        banned = set(self._interacted.get(user, set()))
        if exclude:
            banned |= set(int(i) for i in exclude)
        available = self.num_items - len(banned)
        if available <= 0:
            raise ValueError(f"user {user} has no negative items available")
        if count >= available:
            complement = np.setdiff1d(np.arange(self.num_items), np.fromiter(banned, dtype=np.int64))
            return complement

        negatives = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = self._rng.integers(0, self.num_items, size=(count - filled) * 2)
            for item in draw:
                if int(item) in banned:
                    continue
                negatives[filled] = item
                banned.add(int(item))
                filled += 1
                if filled == count:
                    break
        return negatives

    def sample_batch(self, users: np.ndarray, num_negatives: int = 1,
                     vectorized: bool = True) -> np.ndarray:
        """Per-user sampling: shape (len(users), num_negatives).

        Users with fewer unobserved items than ``num_negatives`` reuse their
        available negatives (sampling with replacement) so training batches
        keep a rectangular shape even on extremely dense toy graphs.

        ``vectorized=False`` forces the seed per-user loop; both paths draw
        bit-identical negatives and leave the generator in the same state
        (the block path is a stream-exact vectorisation, see
        :meth:`_sample_batch_block`), so this switch only exists to benchmark
        and test the fast path against the reference.
        """
        users = np.asarray(users, dtype=np.int64)
        if users.size == 0:
            return np.empty((0, num_negatives), dtype=np.int64)
        if vectorized:
            available = self.num_items - self._degrees[users]
            if not np.any(available <= num_negatives):
                return self._sample_batch_block(users, num_negatives)
        # Dense users need the complement / replacement fallback, whose RNG
        # consumption differs per user — take the exact reference path.
        return self._sample_batch_reference(users, num_negatives)

    def sample_batch_chained(self, user_groups, num_negatives: int = 1):
        """Sample negatives for several consecutive batches in one block draw.

        ``user_groups`` is a sequence of user index arrays that this sampler
        would otherwise serve with back-to-back :meth:`sample_batch` calls
        (e.g. the in-domain and cross-domain pools of one trainer step).
        Because the per-user stream consumption is position-independent,
        processing the concatenation in a single block draw consumes the RNG
        identically while paying the draw/reposition fixed costs once.
        Returns one (len(group), num_negatives) array per group.
        """
        groups = [np.asarray(g, dtype=np.int64) for g in user_groups]
        sizes = [g.shape[0] for g in groups]
        flat = np.concatenate([g for g in groups if g.size]) if any(sizes) else None
        if flat is None:
            return [np.empty((0, num_negatives), dtype=np.int64) for _ in groups]
        available = self.num_items - self._degrees[flat]
        if np.any(available <= num_negatives):
            # Dense users change per-user RNG consumption; fall back to
            # per-batch sampling in stream order (each batch still uses the
            # block path when its own users allow it).
            return [self.sample_batch(g, num_negatives) for g in groups]
        combined = self._sample_batch_block(flat, num_negatives)
        outputs = []
        offset = 0
        for size in sizes:
            outputs.append(combined[offset:offset + size])
            offset += size
        return outputs

    def _sample_batch_reference(self, users: np.ndarray, num_negatives: int
                                ) -> np.ndarray:
        """The seed per-user loop (dense-graph fallback)."""
        out = np.empty((len(users), num_negatives), dtype=np.int64)
        for row, user in enumerate(users):
            negatives = self.sample_for_user(int(user), num_negatives)
            if negatives.shape[0] < num_negatives:
                negatives = self._rng.choice(negatives, size=num_negatives, replace=True)
            out[row] = negatives[:num_negatives]
        return out

    # ------------------------------------------------------------------ #
    # Vectorized block fast path
    # ------------------------------------------------------------------ #
    def _banned_mask(self, users: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Membership of (user, draw) pairs in the interaction edge set."""
        if self._member_matrix is not None:
            return self._member_matrix[users[:, None], draws]
        if not self._edge_keys.size:
            return np.zeros(draws.shape, dtype=bool)
        keys = (users[:, None] * np.int64(self.num_items) + draws).ravel()
        pos = np.searchsorted(self._edge_keys, keys)
        np.minimum(pos, self._edge_keys.size - 1, out=pos)
        return (self._edge_keys[pos] == keys).reshape(draws.shape)

    # Users re-vectorized per attempt after a failure breaks the window
    # layout.  Small enough that a failure inside the chunk wastes little
    # masking work, large enough that failure-free stretches advance fast.
    _CHUNK = 64

    def _sample_batch_block(self, users: np.ndarray, count: int) -> np.ndarray:
        """Vectorized draw matching the per-user rejection loop bit-for-bit.

        One ``integers`` call draws every user's first rejection window
        (2 * count values each); accept/reject/dedup are resolved with array
        operations.  A user whose window under-fills shifts every later
        user's window in the stream, so the committed prefix is kept, the
        failing user is resolved with a tight scalar loop reading further
        values from the same stream (chunk invariance), and vectorized
        processing resumes in :attr:`_CHUNK`-sized slices.  Finally the
        generator is repositioned exactly by restoring the pre-draw state
        and re-drawing the consumed prefix, so the RNG stream is identical
        to the reference per-user path.
        """
        rng = self._rng
        n_items = self.num_items
        n_users = users.shape[0]
        span = 2 * count
        state = rng.bit_generator.state
        buffer = rng.integers(0, n_items, size=n_users * span)
        total_drawn = buffer.size
        out = np.empty((n_users, count), dtype=np.int64)
        consumed = 0
        row = 0
        chunk = n_users  # first attempt covers the whole batch

        def ensure(upto: int) -> None:
            nonlocal buffer, total_drawn
            if upto > total_drawn:
                grow = max(upto - total_drawn, 256)
                buffer = np.concatenate([buffer, rng.integers(0, n_items, size=grow)])
                total_drawn = buffer.size

        while row < n_users:
            num = min(chunk, n_users - row)
            need = num * span
            ensure(consumed + need)
            draws = buffer[consumed:consumed + need].reshape(num, span)
            if self._nonmember_matrix is not None:
                acceptable = self._nonmember_matrix[users[row:row + num, None], draws]
            else:
                acceptable = self._banned_mask(users[row:row + num], draws)
                np.logical_not(acceptable, out=acceptable)
            _mask_duplicates(draws, acceptable)
            under = acceptable.sum(axis=1) < count
            commit = int(under.argmax()) if under.any() else num
            if commit:
                committed = acceptable[:commit]
                fills = committed.cumsum(axis=1)
                take = committed & (fills <= count)
                out[row:row + commit] = draws[:commit][take].reshape(commit, count)
                consumed += commit * span
                row += commit
            if commit < num:
                # users[row] under-filled its first window: replay the exact
                # per-user rounds with scalar operations.
                banned = self._interacted.get(int(users[row]), set())
                picked: list = []
                while len(picked) < count:
                    round_size = (count - len(picked)) * 2
                    ensure(consumed + round_size)
                    window = buffer[consumed:consumed + round_size]
                    consumed += round_size
                    for item in window.tolist():
                        if item in banned or item in picked:
                            continue
                        picked.append(item)
                        if len(picked) == count:
                            break
                out[row] = picked
                row += 1
                chunk = self._CHUNK

        if consumed != total_drawn:
            # Reposition the generator exactly where the sequential algorithm
            # would have left it: restore and re-draw the consumed prefix.
            rng.bit_generator.state = state
            rng.integers(0, n_items, size=consumed)
        return out


class EdgeBatchIterator:
    """Iterate over shuffled mini-batches of (user, positive item, negative item).

    One pass over the iterator visits every training edge exactly once
    (epoch semantics); negatives are re-sampled each epoch.
    """

    def __init__(self, graph: BipartiteGraph, batch_size: int = 1024,
                 num_negatives: int = 1, seed: int = 0):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.graph = graph
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self._rng = np.random.default_rng(seed)
        self._sampler = NegativeSampler(graph, seed=seed + 1)

    def __len__(self) -> int:
        return int(np.ceil(self.graph.num_edges / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        edges = self.graph.edges
        order = self._rng.permutation(edges.shape[0])
        for start in range(0, edges.shape[0], self.batch_size):
            batch = edges[order[start:start + self.batch_size]]
            users = batch[:, 0]
            positives = batch[:, 1]
            negatives = self._sampler.sample_batch(users, self.num_negatives)
            yield users, positives, negatives
