"""Negative sampling and mini-batch iteration over interaction edges."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

import numpy as np

from ..graph import BipartiteGraph


class NegativeSampler:
    """Sample items a user has *not* interacted with.

    Used both for the BCE / BPR training losses and for the leave-one-out
    evaluation protocol (1 positive + 999 sampled negatives).
    """

    def __init__(self, graph: BipartiteGraph, seed: int = 0):
        self.graph = graph
        self.num_items = graph.num_items
        self._interacted: Dict[int, Set[int]] = graph.user_item_set()
        self._rng = np.random.default_rng(seed)

    def sample_for_user(self, user: int, count: int,
                        exclude: Optional[Set[int]] = None) -> np.ndarray:
        """Return ``count`` negative item indices for ``user``.

        Items in the user's training history and in ``exclude`` are avoided.
        Sampling is with rejection, falling back to an explicit complement
        when the candidate pool is small.
        """
        banned = set(self._interacted.get(user, set()))
        if exclude:
            banned |= set(int(i) for i in exclude)
        available = self.num_items - len(banned)
        if available <= 0:
            raise ValueError(f"user {user} has no negative items available")
        if count >= available:
            complement = np.setdiff1d(np.arange(self.num_items), np.fromiter(banned, dtype=np.int64))
            return complement

        negatives = np.empty(count, dtype=np.int64)
        filled = 0
        while filled < count:
            draw = self._rng.integers(0, self.num_items, size=(count - filled) * 2)
            for item in draw:
                if int(item) in banned:
                    continue
                negatives[filled] = item
                banned.add(int(item))
                filled += 1
                if filled == count:
                    break
        return negatives

    def sample_batch(self, users: np.ndarray, num_negatives: int = 1) -> np.ndarray:
        """Per-user sampling: shape (len(users), num_negatives).

        Users with fewer unobserved items than ``num_negatives`` reuse their
        available negatives (sampling with replacement) so training batches
        keep a rectangular shape even on extremely dense toy graphs.
        """
        out = np.empty((len(users), num_negatives), dtype=np.int64)
        for row, user in enumerate(users):
            negatives = self.sample_for_user(int(user), num_negatives)
            if negatives.shape[0] < num_negatives:
                negatives = self._rng.choice(negatives, size=num_negatives, replace=True)
            out[row] = negatives[:num_negatives]
        return out


class EdgeBatchIterator:
    """Iterate over shuffled mini-batches of (user, positive item, negative item).

    One pass over the iterator visits every training edge exactly once
    (epoch semantics); negatives are re-sampled each epoch.
    """

    def __init__(self, graph: BipartiteGraph, batch_size: int = 1024,
                 num_negatives: int = 1, seed: int = 0):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.graph = graph
        self.batch_size = batch_size
        self.num_negatives = num_negatives
        self._rng = np.random.default_rng(seed)
        self._sampler = NegativeSampler(graph, seed=seed + 1)

    def __len__(self) -> int:
        return int(np.ceil(self.graph.num_edges / self.batch_size))

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        edges = self.graph.edges
        order = self._rng.permutation(edges.shape[0])
        for start in range(0, edges.shape[0], self.batch_size):
            batch = edges[order[start:start + self.batch_size]]
            users = batch[:, 0]
            positives = batch[:, 1]
            negatives = self._sampler.sample_batch(users, self.num_negatives)
            yield users, positives, negatives
