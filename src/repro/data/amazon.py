"""Loader for Amazon-review style rating files.

The paper uses the public Amazon 2014 review dumps (Music-Movie, Phone-Elec,
Cloth-Sport, Game-Video pairs).  Those files are not available in this
offline environment — the synthetic generator in
:mod:`repro.data.synthetic` provides the substitute workload — but this
loader is included so that anyone with the original ``ratings_<Category>.csv``
files (``user,item,rating,timestamp`` rows) can run the identical pipeline on
real data.
"""

from __future__ import annotations

import csv
import os
from typing import Optional

from .interactions import InteractionTable


def load_amazon_ratings(path: str, name: Optional[str] = None,
                        min_rating: float = 0.0,
                        max_rows: Optional[int] = None) -> InteractionTable:
    """Read an Amazon ``ratings_*.csv`` file into an :class:`InteractionTable`.

    Parameters
    ----------
    path:
        CSV file with rows ``user_id,item_id,rating,timestamp`` (no header).
    name:
        Name for the resulting table; defaults to the file stem.
    min_rating:
        Interactions with a rating below this value are dropped (the paper
        treats every review as an implicit-feedback interaction, so the
        default keeps everything).
    max_rows:
        Optional cap, useful for smoke tests on huge files.
    """
    if not os.path.exists(path):
        raise FileNotFoundError(
            f"{path} not found. The Amazon dumps are not bundled with this "
            "reproduction; use repro.data.synthetic for an offline workload."
        )
    table_name = name if name is not None else os.path.splitext(os.path.basename(path))[0]
    table = InteractionTable(table_name)
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for row_number, row in enumerate(reader):
            if max_rows is not None and row_number >= max_rows:
                break
            if len(row) < 2:
                continue
            user_key, item_key = row[0], row[1]
            if len(row) >= 3 and min_rating > 0:
                try:
                    rating = float(row[2])
                except ValueError:
                    continue
                if rating < min_rating:
                    continue
            table.add(user_key, item_key)
    return table
