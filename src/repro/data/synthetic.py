"""Synthetic cross-domain interaction generator.

The paper evaluates on four pairs of Amazon categories (Music-Movie,
Phone-Elec, Cloth-Sport, Game-Video).  Those review dumps cannot be
downloaded in this offline environment, so this module provides the closest
synthetic equivalent that exercises the same code paths and — crucially —
contains the structure the paper's claims are about:

* a *domain-shared* latent preference subspace that overlapping users carry
  into both domains (the "Story Topic / Category" signal of Fig. 1a), and
* *domain-specific* subspaces that only help within one domain (the
  "Cinematography / Writing Style" signal) and act as the bias EMCDR-style
  pre-training is expected to pick up.

Interactions are sampled from a latent-factor affinity model with a
power-law item popularity component so the resulting tables have realistic
long-tailed degree distributions, then pass through exactly the same k-core
filtering / cold-start splitting as real data would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .interactions import InteractionTable


@dataclass
class SyntheticConfig:
    """Configuration of one synthetic cross-domain scenario.

    The defaults generate a small scenario (a few hundred users per domain)
    that trains in seconds; the benchmark harness scales these up.
    """

    name_x: str = "domain_x"
    name_y: str = "domain_y"
    num_overlap_users: int = 300
    num_specific_users_x: int = 200
    num_specific_users_y: int = 200
    num_items_x: int = 400
    num_items_y: int = 400
    shared_dim: int = 8
    specific_dim: int = 4
    shared_strength: float = 1.0
    specific_strength: float = 0.6
    popularity_strength: float = 0.4
    min_interactions: int = 8
    max_interactions: int = 40
    seed: int = 0

    def scaled(self, factor: float) -> "SyntheticConfig":
        """Return a copy with user/item counts multiplied by ``factor``."""
        return SyntheticConfig(
            name_x=self.name_x,
            name_y=self.name_y,
            num_overlap_users=max(10, int(self.num_overlap_users * factor)),
            num_specific_users_x=max(5, int(self.num_specific_users_x * factor)),
            num_specific_users_y=max(5, int(self.num_specific_users_y * factor)),
            num_items_x=max(20, int(self.num_items_x * factor)),
            num_items_y=max(20, int(self.num_items_y * factor)),
            shared_dim=self.shared_dim,
            specific_dim=self.specific_dim,
            shared_strength=self.shared_strength,
            specific_strength=self.specific_strength,
            popularity_strength=self.popularity_strength,
            min_interactions=self.min_interactions,
            max_interactions=self.max_interactions,
            seed=self.seed,
        )


@dataclass
class SyntheticCrossDomainData:
    """Output of the generator: two interaction tables plus the ground truth."""

    config: SyntheticConfig
    table_x: InteractionTable
    table_y: InteractionTable
    overlap_user_keys: List[str]
    shared_factors: Dict[str, np.ndarray] = field(default_factory=dict)


class SyntheticCrossDomainGenerator:
    """Latent-factor generator for cross-domain recommendation scenarios."""

    def __init__(self, config: Optional[SyntheticConfig] = None):
        self.config = config if config is not None else SyntheticConfig()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> SyntheticCrossDomainData:
        """Sample a full cross-domain scenario according to the config."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        overlap_keys = [f"user_o_{i}" for i in range(cfg.num_overlap_users)]
        specific_x_keys = [f"user_x_{i}" for i in range(cfg.num_specific_users_x)]
        specific_y_keys = [f"user_y_{i}" for i in range(cfg.num_specific_users_y)]

        # Shared preferences: identical across domains for overlapping users.
        shared_overlap = rng.standard_normal((cfg.num_overlap_users, cfg.shared_dim))
        shared_x_only = rng.standard_normal((cfg.num_specific_users_x, cfg.shared_dim))
        shared_y_only = rng.standard_normal((cfg.num_specific_users_y, cfg.shared_dim))

        table_x = self._generate_domain(
            rng=rng,
            domain_name=cfg.name_x,
            user_keys=overlap_keys + specific_x_keys,
            shared_prefs=np.vstack([shared_overlap, shared_x_only]),
            num_items=cfg.num_items_x,
        )
        table_y = self._generate_domain(
            rng=rng,
            domain_name=cfg.name_y,
            user_keys=overlap_keys + specific_y_keys,
            shared_prefs=np.vstack([shared_overlap, shared_y_only]),
            num_items=cfg.num_items_y,
        )
        return SyntheticCrossDomainData(
            config=cfg,
            table_x=table_x,
            table_y=table_y,
            overlap_user_keys=list(overlap_keys),
            shared_factors={"overlap": shared_overlap},
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _generate_domain(self, rng: np.random.Generator, domain_name: str,
                         user_keys: List[str], shared_prefs: np.ndarray,
                         num_items: int) -> InteractionTable:
        cfg = self.config
        num_users = len(user_keys)

        # Item factors: a shared-attribute part aligned with the shared user
        # subspace and a domain-specific part.
        item_shared = rng.standard_normal((num_items, cfg.shared_dim))
        item_specific = rng.standard_normal((num_items, cfg.specific_dim))
        user_specific = rng.standard_normal((num_users, cfg.specific_dim))

        # Long-tailed popularity (Zipf-like) so degree distributions resemble
        # the Amazon data after filtering.
        ranks = np.arange(1, num_items + 1, dtype=np.float64)
        popularity = 1.0 / np.power(ranks, 0.8)
        rng.shuffle(popularity)
        popularity = np.log(popularity / popularity.mean() + 1e-9)

        affinity = (
            cfg.shared_strength * shared_prefs @ item_shared.T
            + cfg.specific_strength * user_specific @ item_specific.T
            + cfg.popularity_strength * popularity[None, :]
        )

        table = InteractionTable(domain_name)
        item_keys = [f"{domain_name}_item_{j}" for j in range(num_items)]
        # Cap per-user interaction counts to a quarter of the catalogue so that
        # scaled-down scenarios keep enough unobserved items for negative
        # sampling and ranking evaluation to stay meaningful.
        count_cap = max(cfg.min_interactions, num_items // 4)
        for user_row, user_key in enumerate(user_keys):
            count = int(rng.integers(cfg.min_interactions, cfg.max_interactions + 1))
            count = min(count, count_cap, num_items)
            scores = affinity[user_row]
            probabilities = _softmax(scores)
            chosen = rng.choice(num_items, size=count, replace=False, p=probabilities)
            for item_col in chosen:
                table.add(user_key, item_keys[int(item_col)])
        return table


def _softmax(scores: np.ndarray) -> np.ndarray:
    shifted = scores - scores.max()
    exp = np.exp(shifted)
    return exp / exp.sum()


# --------------------------------------------------------------------------- #
# Scenario registry mirroring the paper's four Amazon category pairs
# --------------------------------------------------------------------------- #
PAPER_SCENARIOS: Dict[str, SyntheticConfig] = {
    # Music-Movie: the densest pair with the most overlapping users.
    "music_movie": SyntheticConfig(
        name_x="music", name_y="movie",
        num_overlap_users=360, num_specific_users_x=260, num_specific_users_y=300,
        num_items_x=420, num_items_y=380, seed=11,
        shared_strength=1.3, specific_strength=0.5, popularity_strength=0.3,
    ),
    # Phone-Elec: medium scale, higher density in the phone domain.
    "phone_elec": SyntheticConfig(
        name_x="phone", name_y="elec",
        num_overlap_users=320, num_specific_users_x=180, num_specific_users_y=280,
        num_items_x=260, num_items_y=400, seed=22,
        shared_strength=1.3, specific_strength=0.5, popularity_strength=0.3,
    ),
    # Cloth-Sport: sparser pair with fewer overlapping users.
    "cloth_sport": SyntheticConfig(
        name_x="cloth", name_y="sport",
        num_overlap_users=240, num_specific_users_x=220, num_specific_users_y=180,
        num_items_x=320, num_items_y=280, seed=33,
        shared_strength=1.2, specific_strength=0.6, popularity_strength=0.3,
    ),
    # Game-Video: the smallest pair in the paper.
    "game_video": SyntheticConfig(
        name_x="game", name_y="video",
        num_overlap_users=180, num_specific_users_x=160, num_specific_users_y=120,
        num_items_x=240, num_items_y=200, seed=44,
        shared_strength=1.2, specific_strength=0.6, popularity_strength=0.3,
    ),
}


def paper_scenario_config(name: str, scale: float = 1.0) -> SyntheticConfig:
    """Return the registered config for one of the paper's scenario names."""
    if name not in PAPER_SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(PAPER_SCENARIOS)}")
    config = PAPER_SCENARIOS[name]
    return config.scaled(scale) if scale != 1.0 else config
