"""Datasets, preprocessing and cross-domain scenario assembly."""

from .amazon import load_amazon_ratings
from .interactions import InteractionTable
from .sampling import EdgeBatchIterator, NegativeSampler
from .scenario import (
    CDRScenario,
    ColdStartUser,
    DirectionSplit,
    Domain,
    MergedView,
    build_merged_view,
    build_scenario,
)
from .statistics import DomainStatistics, format_statistics_table, scenario_statistics
from .synthetic import (
    PAPER_SCENARIOS,
    SyntheticConfig,
    SyntheticCrossDomainData,
    SyntheticCrossDomainGenerator,
    paper_scenario_config,
)

__all__ = [
    "InteractionTable",
    "load_amazon_ratings",
    "NegativeSampler",
    "EdgeBatchIterator",
    "CDRScenario",
    "ColdStartUser",
    "DirectionSplit",
    "Domain",
    "MergedView",
    "build_scenario",
    "build_merged_view",
    "DomainStatistics",
    "scenario_statistics",
    "format_statistics_table",
    "SyntheticConfig",
    "SyntheticCrossDomainData",
    "SyntheticCrossDomainGenerator",
    "PAPER_SCENARIOS",
    "paper_scenario_config",
]
