"""Dataset statistics in the format of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .scenario import CDRScenario


@dataclass
class DomainStatistics:
    """One row of Table II (one domain of a scenario)."""

    scenario: str
    domain: str
    num_users: int
    num_items: int
    num_training: int
    num_overlap: int
    num_validation: int
    num_test: int
    num_cold_start: int
    density: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "domain": self.domain,
            "|U|": self.num_users,
            "|V|": self.num_items,
            "Training": self.num_training,
            "#Overlap": self.num_overlap,
            "Validation": self.num_validation,
            "Test": self.num_test,
            "#Cold-start": self.num_cold_start,
            "Density": round(self.density, 6),
        }


def scenario_statistics(name: str, scenario: CDRScenario) -> List[DomainStatistics]:
    """Compute Table II style statistics for both domains of a scenario.

    Validation / Test count *records* (held-out interactions) while
    #Cold-start counts users, matching the paper's table semantics.
    """
    rows: List[DomainStatistics] = []
    for domain in (scenario.domain_x, scenario.domain_y):
        # The split whose target is this domain contributes its eval records.
        split = next(s for s in scenario.directions if s.target == domain.name)
        rows.append(DomainStatistics(
            scenario=name,
            domain=domain.name,
            num_users=domain.num_users,
            num_items=domain.num_items,
            num_training=domain.graph.num_edges,
            num_overlap=scenario.num_overlap_train,
            num_validation=split.num_validation_records,
            num_test=split.num_test_records,
            num_cold_start=split.num_cold_start_users,
            density=domain.graph.density,
        ))
    return rows


def format_statistics_table(rows: List[DomainStatistics]) -> str:
    """Render statistics rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    dicts = [row.as_dict() for row in rows]
    headers = list(dicts[0].keys())
    widths = {h: max(len(str(h)), max(len(str(d[h])) for d in dicts)) for h in headers}
    lines = ["  ".join(str(h).ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for d in dicts:
        lines.append("  ".join(str(d[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
