"""Cross-domain recommendation scenarios.

A :class:`CDRScenario` packages everything the models and the evaluation
protocol need:

* one :class:`~repro.graph.BipartiteGraph` of *training* interactions per
  domain (cold-start users' target-domain edges removed),
* the index pairs of overlapping users that remain available for training,
* validation / test cold-start users per direction, each holding the
  ground-truth target-domain items that were hidden from training, and
* a merged single-domain view used by the single-domain baselines
  (Section IV-B2 merges both domains into one interaction set).

The split follows Section IV-A: roughly 20% of overlapping users become
cold-start users; half of them are evaluated in the X -> Y direction and the
other half in Y -> X, and each direction is further split into validation
and test halves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import BipartiteGraph
from .interactions import InteractionTable


@dataclass
class Domain:
    """One domain of a CDR scenario after indexing and cold-start removal."""

    name: str
    num_users: int
    num_items: int
    graph: BipartiteGraph
    user_index: Dict[Hashable, int]
    item_index: Dict[Hashable, int]
    all_edges: np.ndarray

    @property
    def num_train_edges(self) -> int:
        return self.graph.num_edges


@dataclass
class ColdStartUser:
    """A cold-start evaluation user for one transfer direction.

    ``source_user`` indexes the user in the *source* domain (where their
    interactions remain observable); ``target_items`` are the ground-truth
    items in the *target* domain that were removed from training.
    ``source_degree`` is the number of source-domain training interactions,
    used by the Table IX per-group analysis.
    """

    user_key: Hashable
    source_user: int
    target_items: np.ndarray
    source_degree: int


@dataclass
class DirectionSplit:
    """Validation and test cold-start users for one transfer direction."""

    source: str
    target: str
    validation: List[ColdStartUser] = field(default_factory=list)
    test: List[ColdStartUser] = field(default_factory=list)

    @property
    def num_validation_records(self) -> int:
        return int(sum(len(u.target_items) for u in self.validation))

    @property
    def num_test_records(self) -> int:
        return int(sum(len(u.target_items) for u in self.test))

    @property
    def num_cold_start_users(self) -> int:
        return len(self.validation) + len(self.test)


class CDRScenario:
    """A fully assembled bi-directional cross-domain scenario."""

    def __init__(self, domain_x: Domain, domain_y: Domain,
                 overlap_pairs: np.ndarray,
                 x_to_y: DirectionSplit, y_to_x: DirectionSplit,
                 overlap_user_keys: Sequence[Hashable]):
        self.domain_x = domain_x
        self.domain_y = domain_y
        self.overlap_pairs = np.asarray(overlap_pairs, dtype=np.int64)
        self.x_to_y = x_to_y
        self.y_to_x = y_to_x
        self.overlap_user_keys = list(overlap_user_keys)

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    def domain(self, name: str) -> Domain:
        """Look a domain up by name."""
        if name == self.domain_x.name:
            return self.domain_x
        if name == self.domain_y.name:
            return self.domain_y
        raise KeyError(f"unknown domain {name!r}")

    def direction(self, source: str, target: str) -> DirectionSplit:
        """Return the cold-start split for a given transfer direction."""
        for split in (self.x_to_y, self.y_to_x):
            if split.source == source and split.target == target:
                return split
        raise KeyError(f"unknown direction {source!r} -> {target!r}")

    @property
    def directions(self) -> List[DirectionSplit]:
        return [self.x_to_y, self.y_to_x]

    @property
    def num_overlap_train(self) -> int:
        return int(self.overlap_pairs.shape[0])

    def with_overlap_ratio(self, ratio: float, seed: int = 0) -> "CDRScenario":
        """Return a scenario keeping only ``ratio`` of the training overlap pairs.

        This reproduces the Table VIII robustness study: the *evaluation*
        users stay identical, but the number of overlapping users available
        to bridge the domains during training is subsampled.  The users that
        are dropped keep their in-domain edges (they simply stop being known
        as overlapping), which mirrors the paper's setting where only the
        bridge signal shrinks.
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        rng = np.random.default_rng(seed)
        count = max(1, int(round(ratio * self.num_overlap_train)))
        keep = rng.choice(self.num_overlap_train, size=count, replace=False)
        keep.sort()
        return CDRScenario(
            domain_x=self.domain_x,
            domain_y=self.domain_y,
            overlap_pairs=self.overlap_pairs[keep],
            x_to_y=self.x_to_y,
            y_to_x=self.y_to_x,
            overlap_user_keys=[self.overlap_user_keys[i] for i in keep],
        )

    def __repr__(self) -> str:
        return (
            f"CDRScenario({self.domain_x.name}<->{self.domain_y.name}, "
            f"overlap_train={self.num_overlap_train}, "
            f"cold_start={self.x_to_y.num_cold_start_users + self.y_to_x.num_cold_start_users})"
        )


# --------------------------------------------------------------------------- #
# Scenario construction
# --------------------------------------------------------------------------- #
def build_scenario(table_x: InteractionTable, table_y: InteractionTable,
                   cold_start_ratio: float = 0.2,
                   min_user_interactions: int = 5,
                   min_item_interactions: int = 10,
                   seed: int = 0,
                   apply_core_filter: bool = True) -> CDRScenario:
    """Assemble a :class:`CDRScenario` from two raw interaction tables.

    Parameters
    ----------
    table_x, table_y:
        Raw interactions of the two domains, keyed by external ids.  Users
        appearing in both tables (same key) are the overlapping users.
    cold_start_ratio:
        Fraction of overlapping users held out as cold-start users
        (paper: ~20%).
    min_user_interactions, min_item_interactions:
        k-core thresholds of the paper's preprocessing.
    seed:
        Controls the cold-start selection and validation/test split.
    apply_core_filter:
        Disable to keep tiny hand-built fixtures intact in unit tests.
    """
    if apply_core_filter:
        table_x = table_x.filter_core(min_user_interactions, min_item_interactions)
        table_y = table_y.filter_core(min_user_interactions, min_item_interactions)
    else:
        table_x = table_x.deduplicate()
        table_y = table_y.deduplicate()

    edges_x, user_index_x, item_index_x = table_x.to_indexed()
    edges_y, user_index_y, item_index_y = table_y.to_indexed()

    overlap_keys = sorted(set(user_index_x) & set(user_index_y), key=str)
    rng = np.random.default_rng(seed)
    shuffled = list(overlap_keys)
    rng.shuffle(shuffled)

    num_cold = int(round(cold_start_ratio * len(shuffled)))
    cold_keys = shuffled[:num_cold]
    train_overlap_keys = shuffled[num_cold:]

    # Alternate the transfer direction so both directions get ~half of the
    # cold-start users, then split each direction into validation / test.
    cold_x_to_y = cold_keys[0::2]
    cold_y_to_x = cold_keys[1::2]

    graph_x, split_y_to_x = _build_domain_side(
        domain_edges=edges_x, user_index=user_index_x, item_index=item_index_x,
        cold_keys_in_this_target=cold_y_to_x, source_user_index=user_index_y,
        source_edges=edges_y, rng=rng,
    )
    graph_y, split_x_to_y = _build_domain_side(
        domain_edges=edges_y, user_index=user_index_y, item_index=item_index_y,
        cold_keys_in_this_target=cold_x_to_y, source_user_index=user_index_x,
        source_edges=edges_x, rng=rng,
    )

    domain_x = Domain(
        name=table_x.name, num_users=len(user_index_x), num_items=len(item_index_x),
        graph=graph_x, user_index=user_index_x, item_index=item_index_x,
        all_edges=edges_x,
    )
    domain_y = Domain(
        name=table_y.name, num_users=len(user_index_y), num_items=len(item_index_y),
        graph=graph_y, user_index=user_index_y, item_index=item_index_y,
        all_edges=edges_y,
    )

    split_x_to_y.source = domain_x.name
    split_x_to_y.target = domain_y.name
    split_y_to_x.source = domain_y.name
    split_y_to_x.target = domain_x.name

    overlap_pairs = np.array(
        [[user_index_x[key], user_index_y[key]] for key in train_overlap_keys],
        dtype=np.int64,
    ).reshape(-1, 2)

    return CDRScenario(
        domain_x=domain_x,
        domain_y=domain_y,
        overlap_pairs=overlap_pairs,
        x_to_y=split_x_to_y,
        y_to_x=split_y_to_x,
        overlap_user_keys=train_overlap_keys,
    )


def _build_domain_side(domain_edges: np.ndarray, user_index: Dict[Hashable, int],
                       item_index: Dict[Hashable, int],
                       cold_keys_in_this_target: List[Hashable],
                       source_user_index: Dict[Hashable, int],
                       source_edges: np.ndarray,
                       rng: np.random.Generator) -> Tuple[BipartiteGraph, DirectionSplit]:
    """Remove cold-start edges from one target domain and build its eval split."""
    num_users = len(user_index)
    num_items = len(item_index)

    cold_target_indices = np.array(
        [user_index[key] for key in cold_keys_in_this_target], dtype=np.int64
    )
    source_degree = np.zeros(len(source_user_index), dtype=np.int64)
    if source_edges.size:
        np.add.at(source_degree, source_edges[:, 0], 1)

    full_graph = BipartiteGraph(num_users, num_items, domain_edges)
    train_graph = full_graph.subgraph_without_users(cold_target_indices)

    cold_users: List[ColdStartUser] = []
    for key in cold_keys_in_this_target:
        target_idx = user_index[key]
        source_idx = source_user_index[key]
        held_out = full_graph.items_of_user(target_idx)
        if held_out.size == 0:
            continue
        cold_users.append(ColdStartUser(
            user_key=key,
            source_user=source_idx,
            target_items=held_out,
            source_degree=int(source_degree[source_idx]),
        ))

    rng.shuffle(cold_users)
    half = len(cold_users) // 2
    split = DirectionSplit(source="", target="",
                           validation=cold_users[:half], test=cold_users[half:])
    return train_graph, split


# --------------------------------------------------------------------------- #
# Merged single-domain view (for the single-domain baselines)
# --------------------------------------------------------------------------- #
@dataclass
class MergedView:
    """Both domains merged into a single interaction graph.

    Users are unified via their external keys, items are disjoint between
    domains; ``item_offset_y`` maps a domain-Y item index into the merged
    item space.  Cold-start users keep only their source-domain edges, as in
    the scenario's per-domain graphs.
    """

    graph: BipartiteGraph
    user_index: Dict[Hashable, int]
    item_offset_x: int
    item_offset_y: int
    num_items_x: int
    num_items_y: int

    def merged_user(self, key: Hashable) -> int:
        return self.user_index[key]

    def merged_item(self, domain_name_is_y: bool, item: int) -> int:
        offset = self.item_offset_y if domain_name_is_y else self.item_offset_x
        return offset + int(item)


def build_merged_view(scenario: CDRScenario) -> MergedView:
    """Merge the training graphs of both domains into one bipartite graph."""
    user_index: Dict[Hashable, int] = {}
    reverse_x = {idx: key for key, idx in scenario.domain_x.user_index.items()}
    reverse_y = {idx: key for key, idx in scenario.domain_y.user_index.items()}

    def merged_user_id(key: Hashable) -> int:
        if key not in user_index:
            user_index[key] = len(user_index)
        return user_index[key]

    item_offset_x = 0
    item_offset_y = scenario.domain_x.num_items

    merged_edges: List[Tuple[int, int]] = []
    for user_idx, item_idx in scenario.domain_x.graph.edges:
        merged_edges.append((merged_user_id(reverse_x[int(user_idx)]),
                             item_offset_x + int(item_idx)))
    for user_idx, item_idx in scenario.domain_y.graph.edges:
        merged_edges.append((merged_user_id(reverse_y[int(user_idx)]),
                             item_offset_y + int(item_idx)))

    # Register users that only appear through evaluation so their merged id
    # exists even if every training edge lives in the other domain.
    for split in scenario.directions:
        for user in split.validation + split.test:
            merged_user_id(user.user_key)

    num_items = scenario.domain_x.num_items + scenario.domain_y.num_items
    graph = BipartiteGraph(len(user_index), num_items,
                           np.asarray(merged_edges, dtype=np.int64).reshape(-1, 2))
    return MergedView(
        graph=graph,
        user_index=user_index,
        item_offset_x=item_offset_x,
        item_offset_y=item_offset_y,
        num_items_x=scenario.domain_x.num_items,
        num_items_y=scenario.domain_y.num_items,
    )
