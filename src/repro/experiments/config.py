"""Experiment configuration presets.

The paper's experiments run on GPU-scale Amazon data; this reproduction runs
on CPU over synthetic scenarios, so every experiment is parameterised by an
:class:`ExperimentProfile` controlling the scenario scale, training budget
and evaluation effort.  Three presets are provided:

* ``smoke``  — seconds per model; used by the integration tests.
* ``fast``   — the default for the benchmark harness; minutes for the full
  table suite, enough budget for the qualitative shapes to emerge.
* ``full``   — the largest preset that is still practical on a laptop CPU.

Select the benchmark preset with the ``REPRO_BENCH_PROFILE`` environment
variable (``smoke`` / ``fast`` / ``full``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..baselines import BaselineConfig
from ..core import CDRIBConfig


@dataclass
class ExperimentProfile:
    """Resource budget of one experiment run."""

    name: str
    scenario_scale: float = 1.0
    eval_negatives: int = 199
    max_eval_users: Optional[int] = None
    cdrib: CDRIBConfig = field(default_factory=CDRIBConfig)
    baseline: BaselineConfig = field(default_factory=BaselineConfig)
    seed: int = 0


def _smoke_profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="smoke",
        scenario_scale=0.18,
        eval_negatives=49,
        max_eval_users=10,
        cdrib=CDRIBConfig(embedding_dim=16, num_layers=1, epochs=4, batch_size=256,
                          num_negatives=2, learning_rate=0.02),
        baseline=BaselineConfig(embedding_dim=16, epochs=3, mapping_epochs=10,
                                batch_size=256, num_negatives=2, num_layers=1),
    )


def _fast_profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="fast",
        scenario_scale=0.3,
        eval_negatives=99,
        max_eval_users=25,
        cdrib=CDRIBConfig(embedding_dim=32, num_layers=2, epochs=80, batch_size=256,
                          num_negatives=4, learning_rate=0.02, beta1=0.5, beta2=0.5,
                          dropout=0.0, contrastive_weight=0.2),
        baseline=BaselineConfig(embedding_dim=32, epochs=8, mapping_epochs=40,
                                batch_size=256, num_negatives=4),
    )


def _full_profile() -> ExperimentProfile:
    return ExperimentProfile(
        name="full",
        scenario_scale=1.0,
        eval_negatives=199,
        max_eval_users=None,
        cdrib=CDRIBConfig(embedding_dim=64, num_layers=2, epochs=100, batch_size=256,
                          num_negatives=4, learning_rate=0.02, beta1=0.5, beta2=0.5,
                          dropout=0.0, contrastive_weight=0.2),
        baseline=BaselineConfig(embedding_dim=64, epochs=40, mapping_epochs=80,
                                batch_size=256, num_negatives=4),
    )


PROFILES: Dict[str, callable] = {
    "smoke": _smoke_profile,
    "fast": _fast_profile,
    "full": _full_profile,
}


def get_profile(name: Optional[str] = None) -> ExperimentProfile:
    """Return a named profile; defaults to ``REPRO_BENCH_PROFILE`` or ``fast``."""
    if name is None:
        name = os.environ.get("REPRO_BENCH_PROFILE", "fast")
    if name not in PROFILES:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(PROFILES)}")
    return PROFILES[name]()
