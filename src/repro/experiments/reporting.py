"""Persistence helpers for experiment results.

Runners return plain list-of-dict rows; these helpers write them to CSV or
JSON so long experiment runs can be archived and re-rendered without
retraining, and load them back for comparison.
"""

from __future__ import annotations

import csv
import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence

ROW = Dict[str, object]


def save_rows_json(rows: List[ROW], path: str) -> str:
    """Write result rows to a JSON file (pretty-printed); returns the path."""
    _ensure_parent(path)
    with open(path, "w") as handle:
        json.dump(rows, handle, indent=2, sort_keys=True, default=_jsonify)
        handle.write("\n")
    return path


def load_rows_json(path: str) -> List[ROW]:
    """Load result rows previously written by :func:`save_rows_json`."""
    with open(path) as handle:
        rows = json.load(handle)
    if not isinstance(rows, list):
        raise ValueError(f"{path} does not contain a list of result rows")
    return rows


def save_rows_csv(rows: List[ROW], path: str,
                  columns: Optional[Sequence[str]] = None) -> str:
    """Write result rows to a CSV file; returns the path.

    The column set defaults to the union of keys over all rows, keeping the
    first row's ordering first so tables stay readable.
    """
    _ensure_parent(path)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def load_rows_csv(path: str) -> List[ROW]:
    """Load rows from a CSV written by :func:`save_rows_csv`.

    Numeric-looking fields are converted back to int/float so round-tripped
    rows compare naturally against freshly computed ones.
    """
    rows: List[ROW] = []
    with open(path, newline="") as handle:
        for raw in csv.DictReader(handle):
            rows.append({key: _parse_value(value) for key, value in raw.items()})
    return rows


def file_sha256(path: str) -> str:
    """SHA-256 of a file's content, streamed in 1 MiB blocks.

    The shared integrity primitive of the experiment layer: run manifests
    and suite manifests all record checksums computed here.
    """
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def run_manifest_path(output_path: str) -> str:
    """The manifest path paired with a result file: ``<base>.manifest.json``."""
    base, _ = os.path.splitext(output_path)
    return base + ".manifest.json"


def save_run_manifest(output_path: str, manifest: Dict[str, object]) -> str:
    """Write a provenance manifest next to a result file; returns its path.

    The manifest records what produced the rows (experiment, scenario,
    profile, any checkpoint involved) plus the result file's SHA-256, the
    same integrity scheme as :mod:`repro.io` checkpoints — archived tables
    stay attributable and tamper-evident without retraining anything.
    """
    payload: Dict[str, object] = {"format_version": 1}
    payload.update(manifest)
    payload["output"] = {
        "file": os.path.basename(output_path),
        "sha256": file_sha256(output_path),
    }
    path = run_manifest_path(output_path)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=_jsonify)
        handle.write("\n")
    return path


def format_mean_std(mean: float, std: float, digits: int = 2) -> str:
    """Render an aggregated cell as ``mean±std`` (paper-table style)."""
    return f"{mean:.{digits}f}±{std:.{digits}f}"


def render_markdown_table(rows: List[ROW], columns: Optional[Sequence[str]] = None,
                          float_digits: int = 2) -> str:
    """Render result rows as a GitHub-flavoured Markdown table.

    The column set defaults to the union of keys over all rows (first row's
    ordering first, like :func:`save_rows_csv`), floats are rounded to
    ``float_digits`` and missing cells render empty, so heterogeneous row
    sets — e.g. aggregated suite tables with per-metric columns — stay
    pasteable into a README or paper appendix.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        if value is None:
            return ""
        return str(value).replace("|", "\\|")

    lines = ["| " + " | ".join(str(c) for c in columns) + " |"]
    lines.append("| " + " | ".join("---" for _ in columns) + " |")
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def save_rows_markdown(rows: List[ROW], path: str,
                       columns: Optional[Sequence[str]] = None,
                       title: Optional[str] = None) -> str:
    """Write result rows to a Markdown file; returns the path."""
    _ensure_parent(path)
    with open(path, "w") as handle:
        if title:
            handle.write(f"# {title}\n\n")
        handle.write(render_markdown_table(rows, columns=columns))
        handle.write("\n")
    return path


def summarize_by(rows: List[ROW], group_key: str, value_key: str = "MRR") -> Dict[object, float]:
    """Average ``value_key`` per distinct value of ``group_key``.

    A small convenience used by the CLI and examples to print per-method or
    per-ratio summaries of a result table.
    """
    groups: Dict[object, List[float]] = {}
    for row in rows:
        if group_key not in row or value_key not in row:
            continue
        groups.setdefault(row[group_key], []).append(float(row[value_key]))
    return {key: sum(values) / len(values) for key, values in groups.items() if values}


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)


def _jsonify(value):
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def _parse_value(value: str):
    if value is None or value == "":
        return value
    try:
        as_int = int(value)
        return as_int
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value
