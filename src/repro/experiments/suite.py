"""Experiment-suite orchestrator: declarative sweeps over the paper's grid.

The paper's evidence is a grid of experiments — scenarios × models × seeds —
but a single :mod:`repro.experiments.cli` invocation runs exactly one job.
This module turns a *declarative suite spec* (a plain dict / JSON document)
into the whole grid:

1. :class:`SuiteSpec` validates the spec and :func:`expand_jobs` expands its
   axes into a deterministic job matrix of :class:`JobSpec` entries;
2. :func:`run_suite` executes the jobs — serially or through a
   ``multiprocessing`` worker pool — with *deterministic per-job seeding*:
   every job derives its scenario split, model initialisation and evaluator
   RNG from its own ``seed`` axis value, so parallel results are
   bit-identical to serial execution (pinned by
   ``tests/test_experiments_suite.py``);
3. every job writes durable artifacts (``result.json`` + a checksummed
   ``result.manifest.json`` via :func:`~repro.experiments.reporting.save_run_manifest`,
   plus a model checkpoint), and the suite writes a top-level
   ``suite_manifest.json`` recording the spec's SHA-256 and every job's
   result checksum — re-running with the same spec *resumes from partial
   output*, skipping jobs whose artifacts validate, and refuses an output
   directory produced by a different spec;
4. :class:`SuiteResult` aggregates per-seed metrics into mean±std tables
   with paired t-test significance markers
   (:func:`repro.eval.paired_t_test_ranks`).

Model axis entries are either baseline registry names (``"BPRMF"``,
``"SA-VAE"``, …), ``"CDRIB"`` (the full model) or ``"CDRIB:<variant>"`` for
the Table VII ablation variants (``CDRIB:wo_con`` etc.).  CDRIB jobs train
through the same :func:`~repro.experiments.runners.execute_training_job`
path as the ``train`` CLI sub-command.

Built-in specs (``BUILTIN_SPECS``) regenerate the Tables III–VI main
comparison and the Table VII ablation at the smoke profile::

    repro suite --spec main-tables --jobs 4 --output runs/main
    repro suite --spec ablation --jobs 4 --output runs/ablation
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import ALL_BASELINES, make_baseline
from ..core.variants import (
    ABLATION_VARIANTS,
    make_ablation_config,
    variant_display_name,
)
from ..data import PAPER_SCENARIOS
from ..eval import paired_t_test_ranks
from .config import PROFILES, get_profile
from .reporting import file_sha256, format_mean_std, save_run_manifest
from .runners import build_paper_scenario, execute_training_job, make_evaluator

ROW = Dict[str, object]

SUITE_MANIFEST_NAME = "suite_manifest.json"
SUITE_FORMAT_VERSION = 1

TRAINER_ENGINES = ("fused", "subgraph", "reference")

#: Metric columns carried by every per-direction job row.
METRIC_COLUMNS = ("MRR", "NDCG@5", "NDCG@10", "HR@1", "HR@5", "HR@10")


class SuiteSpecError(ValueError):
    """A suite spec is malformed, or an output directory belongs to another spec."""


# --------------------------------------------------------------------------- #
# Spec and job matrix
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SuiteSpec:
    """Declarative description of one experiment sweep.

    The three grid axes (``scenarios`` × ``models`` × ``seeds``) expand into
    one job per combination; ``profile`` applies to every job, while
    ``engine`` and ``epochs`` configure the CDRIB trainer (baseline jobs
    train at the profile's own baseline budget — their epoch counts are not
    comparable to CDRIB's).  Specs are plain data: :meth:`from_dict` / :meth:`to_dict`
    round-trip losslessly and :func:`spec_sha256` hashes the canonical JSON
    form, which is what pins resume-from-partial to the exact spec.
    """

    name: str
    scenarios: Tuple[str, ...]
    models: Tuple[str, ...]
    seeds: Tuple[int, ...]
    profile: str = "smoke"
    engine: str = "fused"
    epochs: Optional[int] = None
    description: str = ""
    #: When true, every CDRIB job additionally builds exact + IVF retrieval
    #: indexes over its trained target catalogue and records the IVF
    #: recall@10 against exact search in its result payload (an "ann" row;
    #: see :meth:`SuiteResult.ann_rows`).  A serving-stack smoke wired into
    #: the grid — it never changes the job's metrics.
    ann_check: bool = False

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "SuiteSpec":
        """Build and validate a spec from its dict / parsed-JSON form."""
        if not isinstance(raw, dict):
            raise SuiteSpecError(f"suite spec must be a dict, got {type(raw).__name__}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise SuiteSpecError(f"unknown suite-spec keys {unknown}; known: {sorted(known)}")
        missing = [key for key in ("name", "scenarios", "models", "seeds") if key not in raw]
        if missing:
            raise SuiteSpecError(f"suite spec is missing required keys {missing}")
        spec = cls(
            name=str(raw["name"]),
            scenarios=tuple(raw["scenarios"]),
            models=tuple(raw["models"]),
            seeds=tuple(raw["seeds"]),
            profile=str(raw.get("profile", "smoke")),
            engine=str(raw.get("engine", "fused")),
            epochs=(None if raw.get("epochs") is None else int(raw["epochs"])),
            description=str(raw.get("description", "")),
            ann_check=raw.get("ann_check", False),
        )
        spec.validate()
        return spec

    def to_dict(self) -> Dict[str, object]:
        """The spec's canonical dict form (JSON-serialisable, round-trips)."""
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "models": list(self.models),
            "seeds": list(self.seeds),
            "profile": self.profile,
            "engine": self.engine,
            "epochs": self.epochs,
            "description": self.description,
            "ann_check": self.ann_check,
        }

    def validate(self) -> None:
        """Raise :class:`SuiteSpecError` on any malformed field or axis."""
        if not self.name or not re.fullmatch(r"[A-Za-z0-9._-]+", self.name):
            raise SuiteSpecError(
                f"suite name {self.name!r} must be a non-empty filesystem-safe "
                f"token ([A-Za-z0-9._-]+)")
        for axis, values in (("scenarios", self.scenarios),
                             ("models", self.models), ("seeds", self.seeds)):
            if len(values) == 0:
                raise SuiteSpecError(f"grid axis {axis!r} is empty")
            if len(set(values)) != len(values):
                duplicates = sorted({v for v in values if list(values).count(v) > 1},
                                    key=str)
                raise SuiteSpecError(
                    f"grid axis {axis!r} has duplicate entries {duplicates}, "
                    f"which would collide on job keys")
        for scenario in self.scenarios:
            if scenario not in PAPER_SCENARIOS:
                raise SuiteSpecError(
                    f"unknown scenario {scenario!r}; available: {sorted(PAPER_SCENARIOS)}")
        for model in self.models:
            parse_model(model)  # raises on unknown names/variants
        for seed in self.seeds:
            if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
                raise SuiteSpecError(f"seeds must be non-negative integers, got {seed!r}")
        if self.profile not in PROFILES:
            raise SuiteSpecError(
                f"unknown profile {self.profile!r}; available: {sorted(PROFILES)}")
        if self.engine not in TRAINER_ENGINES:
            raise SuiteSpecError(
                f"unknown engine {self.engine!r}; available: {TRAINER_ENGINES}")
        if self.epochs is not None and self.epochs < 1:
            raise SuiteSpecError(f"epochs must be >= 1, got {self.epochs}")
        if not isinstance(self.ann_check, bool):
            raise SuiteSpecError(
                f"ann_check must be a boolean, got {self.ann_check!r}")


@dataclass(frozen=True)
class JobSpec:
    """One cell of the expanded job matrix.

    ``key`` is the job's stable, filesystem-safe identity — the per-job
    artifact directory name and the unit of resume-from-partial.
    """

    key: str
    scenario: str
    model: str
    seed: int
    profile: str
    engine: str
    epochs: Optional[int]
    ann_check: bool = False

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "JobSpec":
        """Rebuild a job from its dict form (inverse of :meth:`to_dict`)."""
        return cls(key=str(raw["key"]), scenario=str(raw["scenario"]),
                   model=str(raw["model"]), seed=int(raw["seed"]),
                   profile=str(raw["profile"]), engine=str(raw["engine"]),
                   epochs=(None if raw.get("epochs") is None else int(raw["epochs"])),
                   ann_check=bool(raw.get("ann_check", False)))

    def to_dict(self) -> Dict[str, object]:
        """The job's canonical dict form (stored in every result artifact)."""
        return {"key": self.key, "scenario": self.scenario, "model": self.model,
                "seed": self.seed, "profile": self.profile,
                "engine": self.engine, "epochs": self.epochs,
                "ann_check": self.ann_check}


def parse_model(name: str) -> Tuple[str, str]:
    """Classify a model-axis entry as ``("cdrib", variant)`` or ``("baseline", name)``.

    Raises :class:`SuiteSpecError` for names in neither the baseline registry
    nor the CDRIB ablation-variant set.
    """
    if name == "CDRIB":
        return "cdrib", "full"
    if name.startswith("CDRIB:"):
        variant = name.split(":", 1)[1]
        if variant == "full":
            # One spelling per model, or the duplicate-axis guard can be
            # evaded by listing the same model under both names.
            raise SuiteSpecError("spell the full model 'CDRIB', not 'CDRIB:full'")
        if variant not in ABLATION_VARIANTS:
            raise SuiteSpecError(
                f"unknown CDRIB variant {variant!r}; available: {ABLATION_VARIANTS}")
        return "cdrib", variant
    if name in ALL_BASELINES:
        return "baseline", name
    raise SuiteSpecError(
        f"unknown model {name!r}; available: 'CDRIB', "
        f"'CDRIB:<{'|'.join(ABLATION_VARIANTS)}>' or one of {ALL_BASELINES}")


def model_display_name(name: str) -> str:
    """The paper display name of a model-axis entry (``CDRIB:wo_con`` → ``w/o Con``)."""
    kind, detail = parse_model(name)
    return variant_display_name(detail) if kind == "cdrib" else name


def job_key(scenario: str, model: str, seed: int) -> str:
    """The deterministic, filesystem-safe key of one job."""
    slug = re.sub(r"[^A-Za-z0-9.]+", "-", model).strip("-").lower()
    return f"{scenario}__{slug}__seed{seed}"


def expand_jobs(spec: SuiteSpec) -> List[JobSpec]:
    """Expand a validated spec's axes into the deterministic job matrix.

    Order is scenario-major, then model, then seed — the serial execution
    order that parallel runs must reproduce bit-identically.  Duplicate job
    keys (two model names collapsing to one slug) raise.
    """
    spec.validate()
    jobs: List[JobSpec] = []
    seen: Dict[str, str] = {}
    for scenario in spec.scenarios:
        for model in spec.models:
            for seed in spec.seeds:
                key = job_key(scenario, model, seed)
                if key in seen:
                    raise SuiteSpecError(
                        f"duplicate job key {key!r}: models {seen[key]!r} and "
                        f"{model!r} collide after slugging")
                seen[key] = model
                jobs.append(JobSpec(key=key, scenario=scenario, model=model,
                                    seed=seed, profile=spec.profile,
                                    engine=spec.engine, epochs=spec.epochs,
                                    ann_check=spec.ann_check))
    return jobs


def spec_sha256(spec: SuiteSpec) -> str:
    """SHA-256 of the spec's canonical JSON form (the resume identity)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Built-in specs
# --------------------------------------------------------------------------- #
BUILTIN_SPECS: Dict[str, Dict[str, object]] = {
    # Tables III-VI: every baseline family + CDRIB on all four scenarios.
    "main-tables": {
        "name": "main-tables",
        "description": "Tables III-VI main comparison (all scenarios x all "
                       "baselines + CDRIB) at smoke profile",
        "scenarios": ["music_movie", "phone_elec", "cloth_sport", "game_video"],
        "models": list(ALL_BASELINES) + ["CDRIB"],
        "seeds": [0, 1, 2],
        "profile": "smoke",
    },
    # A CI-sized slice of the above: one scenario, one model per family.
    # ann_check additionally smokes the IVF serving path on every trained
    # CDRIB cell (see SuiteResult.ann_rows).
    "main-tables-smoke": {
        "name": "main-tables-smoke",
        "description": "CI slice of the Tables III-VI comparison: one scenario, "
                       "one model per baseline family, two seeds",
        "scenarios": ["game_video"],
        "models": ["BPRMF", "PPGN", "EMCDR(BPRMF)", "SA-VAE", "CDRIB"],
        "seeds": [0, 1],
        "profile": "smoke",
        "ann_check": True,
    },
    # Table VII: the paper's two degenerate variants against full CDRIB.
    "ablation": {
        "name": "ablation",
        "description": "Table VII ablation (CDRIB vs w/o Con vs w/o In-IB&Con) "
                       "on all four scenarios at smoke profile",
        "scenarios": ["music_movie", "phone_elec", "cloth_sport", "game_video"],
        "models": ["CDRIB", "CDRIB:wo_con", "CDRIB:wo_inib_con"],
        "seeds": [0, 1, 2],
        "profile": "smoke",
    },
    "ablation-smoke": {
        "name": "ablation-smoke",
        "description": "CI slice of the Table VII ablation: one scenario, two seeds",
        "scenarios": ["game_video"],
        "models": ["CDRIB", "CDRIB:wo_con", "CDRIB:wo_inib_con"],
        "seeds": [0, 1],
        "profile": "smoke",
    },
}


def load_suite_spec(name_or_path: str) -> SuiteSpec:
    """Resolve a ``--spec`` argument: a built-in name or a JSON file path."""
    if name_or_path in BUILTIN_SPECS:
        return SuiteSpec.from_dict(BUILTIN_SPECS[name_or_path])
    if os.path.exists(name_or_path):
        with open(name_or_path) as handle:
            try:
                raw = json.load(handle)
            except json.JSONDecodeError as error:
                raise SuiteSpecError(f"{name_or_path} is not valid JSON: {error}")
        return SuiteSpec.from_dict(raw)
    raise SuiteSpecError(
        f"{name_or_path!r} is neither a built-in spec ({sorted(BUILTIN_SPECS)}) "
        f"nor an existing JSON file")


# --------------------------------------------------------------------------- #
# Job execution
# --------------------------------------------------------------------------- #
def run_suite_job(job: JobSpec, artifact_dir: Optional[str] = None) -> Dict[str, object]:
    """Execute one job and return its JSON-serialisable result payload.

    The job's ``seed`` overrides the profile's scenario-split seed, the
    model-config seed and the evaluator seed, so the job is a pure function
    of its :class:`JobSpec` — which is what makes parallel execution
    bit-identical to serial.  CDRIB jobs train through
    :func:`~repro.experiments.runners.execute_training_job` (the ``train``
    CLI path) and write a provenance-carrying checkpoint into
    ``artifact_dir``; baseline jobs fit and save their recommender state.

    The payload carries one metrics row per transfer direction plus the raw
    per-record reciprocal ranks that the aggregator's paired t-tests use.
    """
    profile = get_profile(job.profile)
    profile = dataclasses.replace(
        profile, seed=job.seed,
        cdrib=profile.cdrib.variant(seed=job.seed),
        baseline=profile.baseline.variant(seed=job.seed))
    kind, detail = parse_model(job.model)
    scenario = build_paper_scenario(job.scenario, profile)
    evaluator = make_evaluator(scenario, profile)
    checkpoint_path = (os.path.join(artifact_dir, "checkpoint")
                      if artifact_dir else None)

    history: List[ROW] = []
    ann_row: Optional[ROW] = None
    if kind == "cdrib":
        config = make_ablation_config(profile.cdrib, detail)
        if job.epochs is not None:
            config = config.variant(epochs=job.epochs)
        trainer, result = execute_training_job(
            scenario, config, engine=job.engine, save_path=checkpoint_path,
            provenance={"scenario": job.scenario, "profile": job.profile,
                        "seed": job.seed, "suite_job": job.key},
        )
        scorer_factory = trainer.make_scorer
        history = [{"epoch": log.epoch, "loss": log.loss} for log in result.history]
        if job.ann_check:
            ann_row = _ann_check_row(trainer.model, scenario, job)
    else:
        model = make_baseline(job.model, profile.baseline)
        model.fit(scenario)
        scorer_factory = model.scorer
        if checkpoint_path is not None:
            model.save(checkpoint_path)

    rows: List[ROW] = []
    reciprocal_ranks: Dict[str, List[float]] = {}
    for split in scenario.directions:
        result = evaluator.evaluate_direction(
            scorer_factory(split.source, split.target), split.source, split.target)
        direction = f"{split.source}->{split.target}"
        metrics = result.metrics.as_dict()
        row: ROW = {
            "scenario": job.scenario,
            "model": job.model,
            "method": model_display_name(job.model),
            "seed": job.seed,
            "direction": direction,
        }
        for column in METRIC_COLUMNS:
            row[column] = metrics[column]
        row["records"] = metrics["records"]
        rows.append(row)
        reciprocal_ranks[direction] = [float(r) for r in result.reciprocal_ranks()]

    payload: Dict[str, object] = {
        "job": job.to_dict(),
        "rows": rows,
        "reciprocal_ranks": reciprocal_ranks,
        "history": history,
        "checkpoint": os.path.basename(checkpoint_path) if checkpoint_path else None,
    }
    if ann_row is not None:
        payload["ann"] = ann_row
    return payload


def _ann_check_row(model, scenario, job: JobSpec) -> ROW:
    """Serving-stack smoke for one trained CDRIB job (``spec.ann_check``).

    Builds both retrieval backends over the job's trained X→Y target
    catalogue, serves the test cold-start users through each, and reports
    the IVF recall@10 against the exact lists.  Probes a quarter of the
    cells — smoke-profile catalogues are tiny, so the row documents that the
    approximate path works end to end, not production recall (that is
    ``benchmarks/test_ann_retrieval.py``'s job).  Deterministic given the
    job spec, so parallel suites stay bit-identical to serial ones.
    """
    from ..eval import recall_against_exact
    from ..serve import build_index

    split = scenario.x_to_y
    users = sorted({int(user.source_user) for user in split.test})[:32]
    if not users:
        users = list(range(min(8, scenario.domain(split.source).num_users)))
    latents = model.encode_users_batch(split.source, np.asarray(users, dtype=np.int64))

    exact = build_index(model, split.target, backend="exact")
    ivf = build_index(model, split.target, backend="ivf", seed=job.seed)
    ivf.nprobe = max(ivf.nprobe, max(1, ivf.num_clusters // 4))
    k = min(10, exact.num_items)
    exact_items, _ = exact.top_k(latents, k)
    ivf_items, _ = ivf.top_k(latents, k)
    return {
        "scenario": job.scenario,
        "model": job.model,
        "seed": job.seed,
        "direction": f"{split.source}->{split.target}",
        "backend": "ivf",
        "num_items": exact.num_items,
        "num_clusters": ivf.num_clusters,
        "nprobe": ivf.nprobe,
        "users": len(users),
        "k": k,
        "recall_vs_exact": recall_against_exact(ivf_items, exact_items),
    }


def _job_dir(output_dir: str, job: JobSpec) -> str:
    return os.path.join(output_dir, "jobs", job.key)


def _result_paths(job_dir: str) -> Tuple[str, str]:
    result_path = os.path.join(job_dir, "result.json")
    return result_path, os.path.join(job_dir, "result.manifest.json")


def _execute_and_persist(args: Tuple[Dict[str, object], str, str]) -> Dict[str, object]:
    """Worker entry point: run one job and write its durable artifacts.

    Top-level (picklable) so it works under every ``multiprocessing`` start
    method.  Artifacts are written by the worker itself, so partially
    completed suites leave every finished job resumable on disk.
    """
    job_dict, spec_hash, job_dir = args
    job = JobSpec.from_dict(job_dict)
    os.makedirs(job_dir, exist_ok=True)
    payload = run_suite_job(job, artifact_dir=job_dir)
    payload["spec_sha256"] = spec_hash
    result_path, _ = _result_paths(job_dir)
    with open(result_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    save_run_manifest(result_path, {
        "experiment": "suite",
        "suite_job": job.key,
        "spec_sha256": spec_hash,
        "rows": len(payload["rows"]),
        "checkpoint": payload.get("checkpoint"),
    })
    return payload


def _load_valid_result(job_dir: str, job: JobSpec,
                       spec_hash: str) -> Optional[Dict[str, object]]:
    """Load a finished job's payload iff its artifacts validate, else None.

    "Validates" means: both files exist, the manifest's recorded SHA-256
    matches the result file's current content, the manifest was produced
    under the same spec hash, and the stored job identity equals the
    requested one.  Anything else means the job reruns.
    """
    result_path, manifest_path = _result_paths(job_dir)
    if not (os.path.exists(result_path) and os.path.exists(manifest_path)):
        return None
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        with open(result_path) as handle:
            payload = json.load(handle)
    except (json.JSONDecodeError, OSError):
        return None
    recorded = (manifest.get("output") or {}).get("sha256")
    if recorded != file_sha256(result_path):
        return None
    if manifest.get("spec_sha256") != spec_hash:
        return None
    if payload.get("spec_sha256") != spec_hash:
        return None
    if payload.get("job") != job.to_dict():
        return None
    return payload


# --------------------------------------------------------------------------- #
# Suite execution and aggregation
# --------------------------------------------------------------------------- #
@dataclass
class SuiteResult:
    """All job payloads of one suite run, plus aggregation over seeds."""

    spec: SuiteSpec
    spec_sha256: str
    payloads: List[Dict[str, object]]
    skipped: int = 0

    def rows(self) -> List[ROW]:
        """Every per-job, per-direction metrics row in job-matrix order."""
        rows: List[ROW] = []
        for payload in self.payloads:
            rows.extend(payload["rows"])
        return rows

    def ann_rows(self) -> List[ROW]:
        """The per-job ANN serving-smoke rows (``spec.ann_check`` jobs only).

        One row per CDRIB job when the spec enabled ``ann_check``: the IVF
        recall against exact retrieval on that job's trained catalogue.
        Empty for specs without the check.
        """
        return [dict(payload["ann"]) for payload in self.payloads
                if "ann" in payload]

    def aggregate(self, metrics: Sequence[str] = ("MRR", "NDCG@10", "HR@10"),
                  alpha: float = 0.05) -> List[ROW]:
        """Mean±std per (scenario, direction, model) over seeds, with markers.

        Within each (scenario, direction) the models are ordered by mean of
        ``metrics[0]`` (best first).  The best model gets a ``sig`` marker
        ``"*"`` when a paired t-test on the per-record reciprocal ranks
        (concatenated across seeds, aligned because every model of a
        (scenario, seed) cell is evaluated on the identical record set)
        finds it significantly better than the runner-up at ``alpha`` —
        the paper's Tables III-VI footnote convention.
        """
        grouped: Dict[Tuple[str, str, str], List[Dict[str, object]]] = {}
        for payload in self.payloads:
            job = payload["job"]
            for row in payload["rows"]:
                group = (str(row["scenario"]), str(row["direction"]), str(row["model"]))
                grouped.setdefault(group, []).append({"row": row, "seed": job["seed"]})
        cells = sorted(grouped)
        scenario_directions = sorted({(s, d) for s, d, _ in cells})

        out: List[ROW] = []
        for scenario, direction in scenario_directions:
            models = [m for s, d, m in cells if (s, d) == (scenario, direction)]
            stats_by_model: Dict[str, ROW] = {}
            for model in models:
                entries = sorted(grouped[(scenario, direction, model)],
                                 key=lambda e: e["seed"])
                row: ROW = {
                    "scenario": scenario,
                    "direction": direction,
                    "model": model,
                    "method": model_display_name(model),
                    "seeds": len(entries),
                }
                for metric in metrics:
                    values = np.array([float(e["row"][metric]) for e in entries])
                    row[f"{metric}_mean"] = float(values.mean())
                    row[f"{metric}_std"] = float(values.std(ddof=1)) if len(values) > 1 else 0.0
                    row[metric] = format_mean_std(row[f"{metric}_mean"],
                                                  row[f"{metric}_std"])
                row["sig"] = ""
                stats_by_model[model] = row
            ranked = sorted(stats_by_model.values(),
                            key=lambda r: -float(r[f"{metrics[0]}_mean"]))
            if len(ranked) >= 2:
                best, runner_up = ranked[0], ranked[1]
                outcome = self._significance(
                    scenario, direction, str(best["model"]),
                    str(runner_up["model"]), alpha)
                if outcome is not None and outcome.significant and outcome.better:
                    best["sig"] = "*"
            out.extend(ranked)
        return out

    def _significance(self, scenario: str, direction: str, model_a: str,
                      model_b: str, alpha: float):
        """Paired t-test of two models' rank vectors, concatenated over seeds."""
        ranks: Dict[str, Dict[int, List[float]]] = {model_a: {}, model_b: {}}
        for payload in self.payloads:
            job = payload["job"]
            if job["scenario"] != scenario or job["model"] not in ranks:
                continue
            vector = payload["reciprocal_ranks"].get(direction)
            if vector:
                ranks[job["model"]][int(job["seed"])] = vector
        shared_seeds = sorted(set(ranks[model_a]) & set(ranks[model_b]))
        if not shared_seeds:
            return None
        vec_a = np.concatenate([ranks[model_a][s] for s in shared_seeds])
        vec_b = np.concatenate([ranks[model_b][s] for s in shared_seeds])
        if vec_a.shape != vec_b.shape:
            return None
        return paired_t_test_ranks(vec_a, vec_b, alpha=alpha)


def run_suite(spec: SuiteSpec, output_dir: str, jobs: int = 1,
              resume: bool = True) -> SuiteResult:
    """Execute every job of a suite spec and aggregate the results.

    ``jobs`` > 1 runs the job matrix through a ``multiprocessing`` pool;
    because every job is a pure function of its :class:`JobSpec`, the
    results are bit-identical to serial execution.  With ``resume`` (the
    default), jobs whose on-disk artifacts validate against this spec's
    SHA-256 are skipped — but an ``output_dir`` whose ``suite_manifest.json``
    records a *different* spec hash is refused outright rather than silently
    mixed.  On completion the suite manifest records every job's result
    checksum.
    """
    spec.validate()
    if jobs < 1:
        raise SuiteSpecError(f"worker count must be >= 1, got {jobs}")
    matrix = expand_jobs(spec)
    spec_hash = spec_sha256(spec)
    os.makedirs(output_dir, exist_ok=True)

    manifest_path = os.path.join(output_dir, SUITE_MANIFEST_NAME)
    if os.path.exists(manifest_path):
        with open(manifest_path) as handle:
            existing = json.load(handle)
        if existing.get("spec_sha256") != spec_hash:
            raise SuiteSpecError(
                f"{output_dir!r} holds results of suite "
                f"{existing.get('name')!r} with spec hash "
                f"{existing.get('spec_sha256')!r}, which does not match this "
                f"spec's {spec_hash!r}; refusing to resume — use a fresh "
                f"output directory")

    completed: Dict[str, Dict[str, object]] = {}
    pending: List[JobSpec] = []
    for job in matrix:
        payload = (_load_valid_result(_job_dir(output_dir, job), job, spec_hash)
                   if resume else None)
        if payload is not None:
            completed[job.key] = payload
        else:
            pending.append(job)

    if pending:
        worker_args = [(job.to_dict(), spec_hash, _job_dir(output_dir, job))
                       for job in pending]
        if jobs > 1 and len(pending) > 1:
            with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
                payloads = pool.map(_execute_and_persist, worker_args)
        else:
            payloads = [_execute_and_persist(args) for args in worker_args]
        for job, payload in zip(pending, payloads):
            completed[job.key] = payload

    job_entries = {}
    for job in matrix:
        result_path, job_manifest = _result_paths(_job_dir(output_dir, job))
        # The per-job manifest's recorded digest is authoritative here: the
        # worker just computed it for fresh jobs, and _load_valid_result
        # verified it against the file for resumed ones — no need to re-read
        # potentially large result files a second time.
        with open(job_manifest) as handle:
            recorded = json.load(handle)["output"]["sha256"]
        job_entries[job.key] = {
            "result": os.path.relpath(result_path, output_dir),
            "manifest": os.path.relpath(job_manifest, output_dir),
            "sha256": recorded,
        }
    with open(manifest_path, "w") as handle:
        json.dump({
            "format_version": SUITE_FORMAT_VERSION,
            "name": spec.name,
            "spec": spec.to_dict(),
            "spec_sha256": spec_hash,
            "jobs": job_entries,
        }, handle, indent=2, sort_keys=True)
        handle.write("\n")

    return SuiteResult(spec=spec, spec_sha256=spec_hash,
                       payloads=[completed[job.key] for job in matrix],
                       skipped=len(matrix) - len(pending))
