"""Concurrent load generation with latency SLOs (``bench-serve``).

The repo's serving benchmarks measure *throughput floors* — how many users
one synchronous loop can push through per second.  Production serving is
judged on something harsher: per-request latency percentiles under
concurrent traffic.  This module closes that gap in the style of
huggingbench's ``ExperimentRunner`` (concurrent client workers, p50/p90/p99
tables):

* :func:`generate_traffic` — a seeded, skewed request stream (a small hot
  set of users produces most requests, mimicking production).
* :func:`run_load_test` — N closed-loop client workers drive one
  :class:`~repro.serve.ServingFrontend`; every request's submit-to-result
  latency is captured and aggregated into p50/p90/p99 + users/sec, with
  cache hit-rate and server counters from
  :class:`~repro.serve.ServerStats` / :class:`~repro.serve.LRUCache`.
* :func:`run_loadgen_benchmark` — the ``bench-serve`` sweep: batch size ×
  workers × nprobe over the exact and IVF retrieval backends, one
  saturation-curve row per configuration.
* :func:`save_bench_serve` — the ``BENCH_serve.json`` perf-trajectory
  artifact (schema: config + per-configuration users/sec, latency
  percentiles and cache hit rate), the repo's first recorded latency
  profile.

Correctness under concurrency is pinned separately
(``tests/test_serve_frontend.py``: concurrent lists are bit-identical to
synchronous serving); this module only measures.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .config import ExperimentProfile, get_profile

ROW = Dict[str, object]

#: Percentiles reported by every latency summary, in ascending order.
LATENCY_PERCENTILES = (50, 90, 99)


# --------------------------------------------------------------------------- #
# Traffic generation
# --------------------------------------------------------------------------- #
def generate_traffic(num_requests: int, num_users: int, seed: int = 0,
                     hot_fraction: float = 0.2,
                     hot_weight: float = 0.8) -> np.ndarray:
    """A seeded request stream of user indices with a configurable skew.

    ``hot_weight`` of the requests target a "hot" subset holding
    ``hot_fraction`` of the users (defaults give the classic 80/20 skew);
    the remainder is uniform over the whole user range.  Skewed streams are
    what make the LRU latent cache earn its hit rate in the benchmark rows.
    """
    if num_requests < 1 or num_users < 1:
        raise ValueError("num_requests and num_users must be >= 1")
    if not 0.0 < hot_fraction <= 1.0 or not 0.0 <= hot_weight <= 1.0:
        raise ValueError(
            f"hot_fraction must be in (0, 1] and hot_weight in [0, 1], got "
            f"{hot_fraction} / {hot_weight}")
    rng = np.random.default_rng(seed)
    hot_users = max(1, int(round(num_users * hot_fraction)))
    is_hot = rng.random(num_requests) < hot_weight
    traffic = rng.integers(0, num_users, size=num_requests)
    traffic[is_hot] = rng.integers(0, hot_users, size=int(is_hot.sum()))
    return traffic


def summarize_latencies(latencies_seconds: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p99, mean and max of a latency sample, in milliseconds."""
    sample = np.asarray(latencies_seconds, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("cannot summarize an empty latency sample")
    summary = {f"p{p}_ms": float(np.percentile(sample, p) * 1e3)
               for p in LATENCY_PERCENTILES}
    summary["mean_ms"] = float(sample.mean() * 1e3)
    summary["max_ms"] = float(sample.max() * 1e3)
    return summary


# --------------------------------------------------------------------------- #
# The load test
# --------------------------------------------------------------------------- #
@dataclass
class LoadTestResult:
    """Everything one load-test run measured.

    ``latencies_seconds`` holds every request's submit-to-result latency in
    submission order per worker (concatenated), so callers can recompute
    any percentile; the derived fields are what the benchmark rows carry.
    """

    requests: int
    errors: int
    workers: int
    wall_seconds: float
    users_per_sec: float
    latency: Dict[str, float]
    cache_hit_rate: float
    cache_hits: int
    cache_misses: int
    users_encoded: int
    batches_flushed: int
    latencies_seconds: np.ndarray = field(repr=False)

    def as_row(self) -> ROW:
        """Flatten into one benchmark/report row."""
        row: ROW = {
            "requests": self.requests,
            "errors": self.errors,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "users_per_sec": self.users_per_sec,
            "cache_hit_rate": self.cache_hit_rate,
            "users_encoded": self.users_encoded,
            "batches_flushed": self.batches_flushed,
        }
        row.update(self.latency)
        return row


def run_load_test(server, traffic: Sequence[int], workers: int = 4,
                  k: Optional[int] = None, max_batch_size: int = 64,
                  max_delay: float = 0.002,
                  timeout: float = 120.0) -> LoadTestResult:
    """Drive ``server`` with ``workers`` concurrent closed-loop clients.

    The traffic stream is split round-robin across workers; each worker
    submits its next request to a shared
    :class:`~repro.serve.ServingFrontend` and blocks on the ticket before
    submitting again (closed-loop load generation — concurrency equals the
    worker count, batches form across workers).  Per-request latency is the
    submit-to-result wall time seen by the client.

    Counters (cache hits/misses, users encoded, batches flushed) are
    *deltas* over this run, so a server can be reused across
    configurations; the cache itself is left as the run warmed it — clear
    it between runs for cold-start comparability.
    """
    from ..serve import ServingFrontend

    traffic = np.asarray(traffic, dtype=np.int64)
    if traffic.size == 0:
        raise ValueError("traffic must hold at least one request")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    workers = min(int(workers), int(traffic.size))

    hits0, misses0 = server.cache.hits, server.cache.misses
    encoded0 = server.stats.users_encoded

    slices = [traffic[w::workers] for w in range(workers)]
    per_worker_latencies: List[List[float]] = [[] for _ in range(workers)]
    per_worker_errors = [0] * workers

    with ServingFrontend(server, max_batch_size=max_batch_size,
                         max_delay=max_delay) as frontend:
        def drive(worker: int) -> None:
            latencies = per_worker_latencies[worker]
            for user in slices[worker]:
                begin = time.perf_counter()
                try:
                    frontend.submit(int(user), k=k).result(timeout=timeout)
                except Exception:
                    per_worker_errors[worker] += 1
                latencies.append(time.perf_counter() - begin)

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # list() re-raises worker crashes instead of swallowing them.
            list(pool.map(drive, range(workers)))
        wall = time.perf_counter() - start
        flushed = frontend.batches_flushed

    latencies = np.concatenate(
        [np.asarray(chunk, dtype=np.float64) for chunk in per_worker_latencies])
    hits = server.cache.hits - hits0
    misses = server.cache.misses - misses0
    lookups = hits + misses
    return LoadTestResult(
        requests=int(traffic.size),
        errors=int(sum(per_worker_errors)),
        workers=workers,
        wall_seconds=float(wall),
        users_per_sec=float(traffic.size / wall) if wall > 0 else float("inf"),
        latency=summarize_latencies(latencies),
        cache_hit_rate=float(hits / lookups) if lookups else 0.0,
        cache_hits=int(hits),
        cache_misses=int(misses),
        users_encoded=int(server.stats.users_encoded - encoded0),
        batches_flushed=int(flushed),
        latencies_seconds=latencies,
    )


# --------------------------------------------------------------------------- #
# The bench-serve sweep
# --------------------------------------------------------------------------- #
def run_loadgen_benchmark(scenario_name: str = "game_video",
                          batch_sizes: Sequence[int] = (8, 64),
                          workers: Sequence[int] = (1, 4),
                          nprobes: Sequence[Optional[int]] = (None,),
                          backends: Sequence[str] = ("exact", "ivf"),
                          num_requests: int = 256,
                          top_k: int = 10,
                          profile: Optional[ExperimentProfile] = None,
                          train_epochs: int = 3,
                          max_delay: float = 0.002,
                          cache_capacity: int = 4096,
                          seed: Optional[int] = None) -> List[ROW]:
    """Sweep batch size × workers × nprobe over retrieval backends.

    Trains one small CDRIB checkpoint (exactly like
    :func:`~repro.experiments.runners.run_serving_benchmark`), then serves
    the *same* seeded skewed traffic through every configuration with
    :func:`run_load_test`.  ``nprobes`` applies to the IVF backend only
    (``None`` = the backend default); the exact backend contributes one
    nprobe point per (batch, workers) cell.  Each configuration starts from
    a cold user-latent cache so rows are comparable.

    Returns one saturation-curve row per configuration; feed the rows to
    :func:`save_bench_serve` for the durable ``BENCH_serve.json`` artifact.
    """
    from ..serve import ColdStartServer
    from .runners import build_paper_scenario, train_cdrib

    if not batch_sizes or any(size < 1 for size in batch_sizes):
        raise ValueError(f"batch_sizes must all be >= 1, got {batch_sizes!r}")
    if not workers or any(count < 1 for count in workers):
        raise ValueError(f"workers must all be >= 1, got {workers!r}")
    if not backends:
        raise ValueError("backends must name at least one retrieval backend")
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")

    profile = profile if profile is not None else get_profile()
    seed = profile.seed if seed is None else int(seed)
    scenario = build_paper_scenario(scenario_name, profile)
    config = profile.cdrib.variant(epochs=min(profile.cdrib.epochs, train_epochs))
    trainer = train_cdrib(scenario, config)
    split = scenario.x_to_y
    num_source_users = scenario.domain(split.source).num_users
    traffic = generate_traffic(num_requests, num_source_users, seed=seed)

    rows: List[ROW] = []
    for backend in backends:
        nprobe_axis: Sequence[Optional[int]] = (
            tuple(nprobes) if backend == "ivf" else (None,))
        server = ColdStartServer(trainer.model, split.source, split.target,
                                 top_k=top_k, cache_capacity=cache_capacity,
                                 index_backend=backend)
        server.recommend(traffic[:1])  # warm the normalised-adjacency caches
        for nprobe in nprobe_axis:
            if nprobe is not None:
                server.index.nprobe = int(nprobe)
            for worker_count in workers:
                for batch_size in batch_sizes:
                    server.cache.clear()  # cold cache per configuration
                    result = run_load_test(
                        server, traffic, workers=worker_count,
                        max_batch_size=batch_size, max_delay=max_delay)
                    row: ROW = {
                        "scenario": scenario_name,
                        "direction": f"{split.source}->{split.target}",
                        "backend": backend,
                        "nprobe": (getattr(server.index, "nprobe", "")
                                   if backend == "ivf" else ""),
                        "max_batch_size": batch_size,
                        "top_k": top_k,
                    }
                    row.update(result.as_row())
                    rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# The BENCH_serve.json artifact
# --------------------------------------------------------------------------- #
#: Current schema version of the BENCH_serve.json artifact.
BENCH_SERVE_SCHEMA_VERSION = 1


def save_bench_serve(rows: List[ROW], path: str,
                     config: Optional[Dict[str, object]] = None) -> str:
    """Write the ``BENCH_serve.json`` perf-trajectory artifact.

    Schema (``schema_version`` 1): a top-level object with the sweep
    ``config`` (scenario, axes, profile — whatever the caller records), a
    ``generated_unix`` timestamp, and ``rows`` — one object per swept
    configuration carrying ``users_per_sec``, the ``p50_ms``/``p90_ms``/
    ``p99_ms`` latency percentiles and ``cache_hit_rate`` alongside its
    identifying axes (backend, nprobe, max_batch_size, workers).
    """
    if not rows:
        raise ValueError("refusing to write an empty BENCH_serve artifact")
    required = {"users_per_sec", "p50_ms", "p90_ms", "p99_ms",
                "cache_hit_rate"}
    for row in rows:
        missing = required - set(row)
        if missing:
            raise ValueError(
                f"BENCH_serve row is missing {sorted(missing)}; rows must "
                f"come from run_loadgen_benchmark/run_load_test")
    payload = {
        "benchmark": "bench-serve",
        "schema_version": BENCH_SERVE_SCHEMA_VERSION,
        "generated_unix": time.time(),
        "config": dict(config or {}),
        "rows": [dict(row) for row in rows],
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench_serve(path: str) -> Dict[str, object]:
    """Load and schema-check a ``BENCH_serve.json`` artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("benchmark") != "bench-serve":
        raise ValueError(f"{path!r} is not a bench-serve artifact")
    version = payload.get("schema_version")
    if version != BENCH_SERVE_SCHEMA_VERSION:
        raise ValueError(
            f"{path!r} has schema_version {version!r}; this reader "
            f"understands {BENCH_SERVE_SCHEMA_VERSION}")
    if not isinstance(payload.get("rows"), list) or not payload["rows"]:
        raise ValueError(f"{path!r} carries no benchmark rows")
    return payload
