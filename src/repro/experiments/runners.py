"""Experiment runners: one function per table / figure of the paper.

Every runner returns plain dictionaries (rows) that the benchmark harness
prints and the tests assert on, so results stay machine-checkable.  The
mapping from paper artefact to runner:

===========================  ==========================================
Paper artefact               Runner
===========================  ==========================================
Table II (statistics)        :func:`run_dataset_statistics`
Tables III-VI (main)         :func:`run_main_comparison`
Table VII (ablation)         :func:`run_ablation`
Table VIII (overlap ratio)   :func:`run_overlap_ratio`
Table IX (interaction #)     :func:`run_interaction_groups`
Figure 5 (beta sweep)        :func:`run_beta_sweep`
Figure 6 (layer count)       :func:`run_layer_sweep`
Serving throughput (extra)   :func:`run_serving_benchmark`
ANN retrieval (extra)        :func:`run_ann_benchmark`
===========================  ==========================================
"""

from __future__ import annotations

import copy
import dataclasses
import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines import ALL_BASELINES, make_baseline
from ..core import CDRIB, CDRIBConfig, CDRIBTrainer
from ..core.variants import make_ablation_config, variant_display_name
from ..data import (
    CDRScenario,
    SyntheticCrossDomainGenerator,
    build_scenario,
    paper_scenario_config,
    scenario_statistics,
)
from ..eval import (
    LeaveOneOutEvaluator,
    group_by_interaction_count,
)
from .config import ExperimentProfile, get_profile

ROW = Dict[str, object]


# --------------------------------------------------------------------------- #
# Scenario assembly
# --------------------------------------------------------------------------- #
def build_paper_scenario(name: str, profile: Optional[ExperimentProfile] = None
                         ) -> CDRScenario:
    """Generate and split one of the paper's four scenarios at profile scale."""
    profile = profile if profile is not None else get_profile()
    config = paper_scenario_config(name, scale=profile.scenario_scale)
    data = SyntheticCrossDomainGenerator(config).generate()
    # The synthetic generator produces denser graphs than raw Amazon dumps,
    # so a milder item threshold keeps the post-filter scenario non-trivial
    # at small scales while still exercising the k-core filtering code.
    return build_scenario(data.table_x, data.table_y, cold_start_ratio=0.2,
                          min_user_interactions=5, min_item_interactions=3,
                          seed=profile.seed)


def make_evaluator(scenario: CDRScenario, profile: ExperimentProfile
                   ) -> LeaveOneOutEvaluator:
    """Build the leave-one-out evaluator at the profile's evaluation budget."""
    return LeaveOneOutEvaluator(
        scenario, num_negatives=profile.eval_negatives, seed=profile.seed,
        max_users_per_direction=profile.max_eval_users,
    )


def train_cdrib(scenario: CDRScenario, config: CDRIBConfig,
                evaluator: Optional[LeaveOneOutEvaluator] = None) -> CDRIBTrainer:
    """Train a CDRIB model and return its trainer (which exposes scorers)."""
    model = CDRIB(scenario, config)
    trainer = CDRIBTrainer(model, evaluator=evaluator)
    trainer.fit()
    return trainer


# --------------------------------------------------------------------------- #
# Checkpointed training and serving (repro.io)
# --------------------------------------------------------------------------- #
def execute_training_job(scenario: CDRScenario, config: CDRIBConfig,
                         engine: str = "fused",
                         epochs: Optional[int] = None,
                         evaluator: Optional[LeaveOneOutEvaluator] = None,
                         eval_every: int = 0,
                         save_path: Optional[str] = None,
                         resume_path: Optional[str] = None,
                         checkpoint_dir: Optional[str] = None,
                         provenance: Optional[Dict[str, object]] = None):
    """Train one CDRIB model on an assembled scenario; the shared job core.

    Both the ``train`` CLI path (:func:`run_training_job`) and the suite
    orchestrator (:mod:`repro.experiments.suite`) execute jobs through this
    function, so every job gets the identical trainer wiring: optional
    bit-exact resume from ``resume_path``, periodic last/best checkpoints in
    ``checkpoint_dir``, a final checkpoint at ``save_path`` whose manifest
    carries ``provenance``, and the trainer's fit history.

    Returns ``(trainer, result)`` so callers can build scorers for
    evaluation without retraining.
    """
    model = CDRIB(scenario, config)
    trainer = CDRIBTrainer(model, evaluator=evaluator, engine=engine)
    if provenance is not None:
        trainer.provenance = dict(provenance)
    result = trainer.fit(epochs=epochs, eval_every=eval_every,
                         checkpoint_dir=checkpoint_dir, resume_from=resume_path)
    if save_path is not None:
        final = result.history[-1] if result.history else None
        trainer.save_checkpoint(save_path, metrics={
            "epoch": final.epoch if final else 0,
            "loss": final.loss if final else None,
            "best_validation_mrr": result.best_validation_mrr,
            "best_epoch": result.best_epoch,
        })
    return trainer, result


def run_training_job(scenario_name: str,
                     profile: Optional[ExperimentProfile] = None,
                     epochs: Optional[int] = None,
                     engine: str = "fused",
                     save_path: Optional[str] = None,
                     resume_path: Optional[str] = None,
                     checkpoint_dir: Optional[str] = None,
                     eval_every: int = 0) -> List[ROW]:
    """Train CDRIB with optional checkpoint save / bit-exact resume.

    Backs the ``train`` CLI sub-command: builds the scenario at profile
    scale, optionally resumes from ``resume_path`` (model + optimizer +
    every RNG stream, so the run continues the saved trajectory exactly),
    trains for ``epochs`` (defaults to the profile's budget), and writes a
    final checkpoint to ``save_path``.  The checkpoint manifest records the
    scenario / profile / seed provenance that ``serve --checkpoint`` later
    uses to rebuild the serving graph without retraining.

    Returns one row per epoch of the run's history.
    """
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile) if eval_every else None
    _, result = execute_training_job(
        scenario, profile.cdrib, engine=engine, epochs=epochs,
        evaluator=evaluator, eval_every=eval_every, save_path=save_path,
        resume_path=resume_path, checkpoint_dir=checkpoint_dir,
        provenance={"scenario": scenario_name, "profile": profile.name,
                    "seed": profile.seed},
    )
    rows: List[ROW] = []
    for log in result.history:
        rows.append({
            "scenario": scenario_name,
            "engine": engine,
            "epoch": log.epoch,
            "loss": log.loss,
            "validation_mrr": (log.validation_mrr
                               if log.validation_mrr is not None else ""),
            "checkpoint": save_path or "",
        })
    return rows


def load_cdrib_checkpoint(path: str):
    """Rebuild a trained :class:`CDRIB` from a checkpoint — no training.

    The manifest's provenance names the scenario, profile and (for suite
    jobs) the split seed, which are deterministic together, so the serving
    graph is re-assembled identically to the training run's; the payload
    then restores every parameter (checksum-verified).  Returns
    ``(model, checkpoint)``.
    """
    from ..io import CheckpointError, load_checkpoint

    checkpoint = load_checkpoint(path, expect_kind=CDRIBTrainer.CHECKPOINT_KIND)
    provenance = checkpoint.manifest.get("provenance") or {}
    if "scenario" not in provenance or "profile" not in provenance:
        raise CheckpointError(
            f"checkpoint {path!r} has no scenario/profile provenance; "
            f"it cannot be re-assembled by the CLI (save it through "
            f"run_training_job or set trainer.provenance)"
        )
    profile = get_profile(provenance["profile"])
    if "seed" in provenance:
        profile = dataclasses.replace(profile, seed=int(provenance["seed"]))
    scenario = build_paper_scenario(provenance["scenario"], profile)
    config = CDRIBConfig(**checkpoint.manifest["model"]["config"])
    model = CDRIB(scenario, config)

    recorded = checkpoint.manifest.get("domains", {})
    current = {
        "x": {"name": scenario.domain_x.name,
              "num_users": scenario.domain_x.num_users,
              "num_items": scenario.domain_x.num_items},
        "y": {"name": scenario.domain_y.name,
              "num_users": scenario.domain_y.num_users,
              "num_items": scenario.domain_y.num_items},
    }
    if recorded != current:
        raise CheckpointError(
            f"checkpoint {path!r} was trained on domains {recorded}, "
            f"the re-assembled scenario has {current}"
        )
    model.load_state_dict(checkpoint.namespace("model"))
    if "model" in checkpoint.rng_states:
        model._rng.bit_generator.state = copy.deepcopy(
            checkpoint.rng_states["model"])
    return model, checkpoint


def run_checkpoint_serving(checkpoint_path: str, top_k: int = 10,
                           users: Optional[Sequence[int]] = None,
                           num_users: int = 8,
                           index_backend: str = "exact",
                           nprobe: Optional[int] = None,
                           index_dir: Optional[str] = None) -> List[ROW]:
    """Serve top-K lists from a saved checkpoint (``serve --checkpoint``).

    Builds a :class:`~repro.serve.ColdStartServer` for the X -> Y direction
    from the artifact alone and serves a deterministic user set (the first
    ``num_users`` test cold-start users unless ``users`` is given).  With the
    default exact backend the lists are bit-identical to a server built from
    the live trained model — the whole point of the checkpoint subsystem.

    ``index_backend="ivf"`` serves through the approximate index instead
    (``nprobe`` optionally overrides its probe budget; it is ignored for
    exact search, which has no tunables).  ``index_dir`` makes the *index
    itself* a durable artifact: when the directory holds an index
    checkpoint it is loaded (checksum-validated, k-means not re-run) and
    verified against the checkpoint's own item latents — a stale artifact
    from an older training run refuses to serve; otherwise the freshly
    built index is saved there, so the next invocation round-trips through
    the exact same index structure.
    """
    from ..io import CheckpointError
    from ..serve import ColdStartServer, load_index, save_index

    model, checkpoint = load_cdrib_checkpoint(checkpoint_path)
    scenario = model.scenario
    split = scenario.x_to_y
    # nprobe only means something to the IVF backend; exact search has no
    # tunables (same guard as the live-serve CLI path).
    index_options = ({"nprobe": int(nprobe)}
                     if nprobe is not None and index_backend == "ivf" else {})
    prebuilt = None
    if index_dir is not None and os.path.isdir(index_dir):
        prebuilt = load_index(index_dir)
        if prebuilt.backend != index_backend:
            raise CheckpointError(
                f"index checkpoint {index_dir!r} holds backend "
                f"{prebuilt.backend!r}, but --index {index_backend!r} was "
                f"requested")
        if nprobe is not None and prebuilt.backend == "ivf":
            prebuilt.nprobe = int(nprobe)
    try:
        server = ColdStartServer(model, split.source, split.target,
                                 top_k=top_k, index_backend=index_backend,
                                 index_options=index_options, index=prebuilt)
    except ValueError as error:
        # The server validates a prebuilt index against the model's own item
        # latents (catalogue size + content); translate a rejection into the
        # artifact-layer error with the path the operator needs.
        if prebuilt is None:
            raise
        raise CheckpointError(
            f"index checkpoint {index_dir!r} does not match checkpoint "
            f"{checkpoint_path!r} ({error}); delete the index directory to "
            f"rebuild it") from error
    if index_dir is not None and prebuilt is None:
        save_index(index_dir, server.index)
    if users is None:
        pool = [int(user.source_user) for user in split.test]
        if not pool:
            pool = list(range(min(num_users,
                                  scenario.domain(split.source).num_users)))
        users = sorted(set(pool))[:num_users]
    rows: List[ROW] = []
    for rec in server.recommend(list(users), k=top_k):
        rows.append({
            "checkpoint": checkpoint_path,
            "direction": f"{split.source}->{split.target}",
            "index": index_backend,
            "user": rec.user,
            "items": [int(item) for item in rec.items],
            "scores": [float(score) for score in rec.scores],
        })
    return rows


# --------------------------------------------------------------------------- #
# Table II — dataset statistics
# --------------------------------------------------------------------------- #
def run_dataset_statistics(scenario_names: Optional[Sequence[str]] = None,
                           profile: Optional[ExperimentProfile] = None) -> List[ROW]:
    """Statistics of every CDR scenario after preprocessing (Table II)."""
    profile = profile if profile is not None else get_profile()
    names = list(scenario_names) if scenario_names else [
        "music_movie", "phone_elec", "cloth_sport", "game_video",
    ]
    rows: List[ROW] = []
    for name in names:
        scenario = build_paper_scenario(name, profile)
        for stat in scenario_statistics(name, scenario):
            rows.append(stat.as_dict())
    return rows


# --------------------------------------------------------------------------- #
# Tables III-VI — main comparison
# --------------------------------------------------------------------------- #
def run_main_comparison(scenario_name: str,
                        baselines: Optional[Iterable[str]] = None,
                        profile: Optional[ExperimentProfile] = None,
                        include_cdrib: bool = True) -> List[ROW]:
    """Bi-directional comparison of CDRIB against the baselines (Tables III-VI).

    Returns one row per (method, target domain) with MRR / NDCG / HR metrics.
    """
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile)
    baseline_names = list(baselines) if baselines is not None else list(ALL_BASELINES)

    rows: List[ROW] = []
    for name in baseline_names:
        model = make_baseline(name, profile.baseline)
        model.fit(scenario)
        for split in scenario.directions:
            result = evaluator.evaluate_direction(
                model.scorer(split.source, split.target), split.source, split.target
            )
            rows.append(_result_row(scenario_name, name, split, result))

    if include_cdrib:
        trainer = train_cdrib(scenario, profile.cdrib, evaluator=None)
        for split in scenario.directions:
            result = evaluator.evaluate_direction(
                trainer.make_scorer(split.source, split.target),
                split.source, split.target,
            )
            rows.append(_result_row(scenario_name, "CDRIB", split, result))
    return rows


# --------------------------------------------------------------------------- #
# Table VII — ablation study
# --------------------------------------------------------------------------- #
def run_ablation(scenario_name: str,
                 variants: Sequence[str] = ("wo_inib_con", "wo_con", "full"),
                 profile: Optional[ExperimentProfile] = None) -> List[ROW]:
    """Table VII: CDRIB against its w/o Con and w/o In-IB&Con variants."""
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile)
    rows: List[ROW] = []
    for variant in variants:
        config = make_ablation_config(profile.cdrib, variant)
        trainer = train_cdrib(scenario, config)
        for split in scenario.directions:
            result = evaluator.evaluate_direction(
                trainer.make_scorer(split.source, split.target),
                split.source, split.target,
            )
            row = _result_row(scenario_name, variant_display_name(variant), split, result)
            row["variant"] = variant
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table VIII — overlap-ratio robustness
# --------------------------------------------------------------------------- #
def run_overlap_ratio(scenario_name: str,
                      ratios: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
                      profile: Optional[ExperimentProfile] = None,
                      compare_savae: bool = True) -> List[ROW]:
    """Table VIII: CDRIB (and SA-VAE) under shrinking training overlap."""
    profile = profile if profile is not None else get_profile()
    base_scenario = build_paper_scenario(scenario_name, profile)
    rows: List[ROW] = []
    for ratio in ratios:
        scenario = base_scenario.with_overlap_ratio(ratio, seed=profile.seed)
        evaluator = make_evaluator(scenario, profile)
        trainer = train_cdrib(scenario, profile.cdrib)
        models = {"CDRIB": trainer.make_scorer}
        if compare_savae:
            savae = make_baseline("SA-VAE", profile.baseline)
            savae.fit(scenario)
            models["SA-VAE"] = savae.scorer
        for method, scorer_factory in models.items():
            for split in scenario.directions:
                result = evaluator.evaluate_direction(
                    scorer_factory(split.source, split.target),
                    split.source, split.target,
                )
                row = _result_row(scenario_name, method, split, result)
                row["overlap_ratio"] = ratio
                rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Table IX — cold-start interaction-count groups
# --------------------------------------------------------------------------- #
def run_interaction_groups(scenario_name: str,
                           profile: Optional[ExperimentProfile] = None,
                           compare_savae: bool = True) -> List[ROW]:
    """Table IX: per-group performance by number of source-domain interactions."""
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile)

    methods = {}
    trainer = train_cdrib(scenario, profile.cdrib)
    methods["CDRIB"] = trainer.make_scorer
    if compare_savae:
        savae = make_baseline("SA-VAE", profile.baseline)
        savae.fit(scenario)
        methods["SA-VAE"] = savae.scorer

    rows: List[ROW] = []
    for method, scorer_factory in methods.items():
        for split in scenario.directions:
            result = evaluator.evaluate_direction(
                scorer_factory(split.source, split.target), split.source, split.target
            )
            for group in group_by_interaction_count(result):
                metrics = group.metrics.as_dict()
                rows.append({
                    "scenario": scenario_name,
                    "method": method,
                    "direction": f"{split.source}->{split.target}",
                    "interactions": group.label,
                    "MRR": metrics["MRR"],
                    "NDCG@10": metrics["NDCG@10"],
                    "HR@10": metrics["HR@10"],
                    "records": metrics["records"],
                })
    return rows


# --------------------------------------------------------------------------- #
# Figure 5 — Lagrangian multiplier sweep
# --------------------------------------------------------------------------- #
def run_beta_sweep(scenario_name: str,
                   betas: Sequence[float] = (0.5, 1.0, 1.5, 2.0),
                   profile: Optional[ExperimentProfile] = None) -> List[ROW]:
    """Figure 5: effect of the Lagrangian multiplier beta on CDRIB."""
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile)
    rows: List[ROW] = []
    for beta in betas:
        config = profile.cdrib.variant(beta1=beta, beta2=beta)
        trainer = train_cdrib(scenario, config)
        for split in scenario.directions:
            result = evaluator.evaluate_direction(
                trainer.make_scorer(split.source, split.target),
                split.source, split.target,
            )
            row = _result_row(scenario_name, "CDRIB", split, result)
            row["beta"] = beta
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Figure 6 — VBGE layer count sweep
# --------------------------------------------------------------------------- #
def run_layer_sweep(scenario_name: str,
                    layer_counts: Sequence[int] = (1, 2, 3, 4),
                    profile: Optional[ExperimentProfile] = None) -> List[ROW]:
    """Figure 6: effect of the number of VBGE propagation layers."""
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    evaluator = make_evaluator(scenario, profile)
    rows: List[ROW] = []
    for layers in layer_counts:
        config = profile.cdrib.variant(num_layers=layers)
        trainer = train_cdrib(scenario, config)
        for split in scenario.directions:
            result = evaluator.evaluate_direction(
                trainer.make_scorer(split.source, split.target),
                split.source, split.target,
            )
            row = _result_row(scenario_name, "CDRIB", split, result)
            row["num_layers"] = layers
            rows.append(row)
    return rows


# --------------------------------------------------------------------------- #
# Training throughput (fast training engine)
# --------------------------------------------------------------------------- #
def run_training_benchmark(scenario_name: str = "game_video",
                           engines: Sequence[str] = ("reference", "fused", "subgraph"),
                           steps_per_block: int = 15,
                           repeats: int = 5,
                           profile: Optional[ExperimentProfile] = None) -> List[ROW]:
    """Measure trainer steps/sec of every training engine on one scenario.

    One trainer per engine runs interleaved timing blocks of
    ``steps_per_block`` optimisation steps; the per-engine rate is taken
    from the *fastest* block (standard microbenchmark practice — ambient
    load only ever slows a block down).  Because all engines consume
    identical RNG streams, the measured per-step losses double as a
    faithfulness check, reported as ``max_loss_deviation`` against the
    reference (seed) engine.
    """
    if "reference" not in engines:
        raise ValueError("the engine list must include 'reference' (the baseline)")
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)

    trainers: Dict[str, CDRIBTrainer] = {}
    for engine in engines:
        model = CDRIB(scenario, profile.cdrib)
        trainers[engine] = CDRIBTrainer(model, engine=engine)
        # Warm-up: graph/transpose caches, sampler structures, BLAS threads.
        trainers[engine].run_steps(max(4, steps_per_block // 3))

    best: Dict[str, float] = {engine: float("inf") for engine in engines}
    losses: Dict[str, List[float]] = {engine: [] for engine in engines}
    for _ in range(repeats):
        for engine in engines:
            start = time.perf_counter()
            losses[engine].extend(trainers[engine].run_steps(steps_per_block))
            best[engine] = min(best[engine], time.perf_counter() - start)

    reference_losses = np.asarray(losses["reference"])
    reference_rate = steps_per_block / best["reference"]
    rows: List[ROW] = []
    for engine in engines:
        deviation = float(np.max(np.abs(np.asarray(losses[engine])
                                        - reference_losses)))
        rate = steps_per_block / best[engine]
        rows.append({
            "scenario": scenario_name,
            "engine": engine,
            "steps_timed": steps_per_block * repeats,
            "steps_per_sec": rate,
            "speedup_vs_reference": rate / reference_rate,
            "max_loss_deviation": deviation,
        })
    return rows


# --------------------------------------------------------------------------- #
# Serving throughput (repro.serve demo)
# --------------------------------------------------------------------------- #
def run_serving_benchmark(scenario_name: str,
                          batch_sizes: Sequence[int] = (1, 32, 256),
                          top_k: int = 10,
                          total_users: int = 256,
                          profile: Optional[ExperimentProfile] = None,
                          train_epochs: int = 3,
                          index_backend: str = "exact",
                          index_options: Optional[Dict[str, object]] = None
                          ) -> List[ROW]:
    """Measure batched cold-start serving throughput (``repro.serve``).

    Trains a small CDRIB checkpoint, builds a :class:`~repro.serve.ColdStartServer`
    for the X -> Y direction and serves ``total_users`` requests (sampled with
    replacement, mimicking skewed production traffic) at each batch size with
    the user-latent cache disabled, so the measured effect is pure batching.
    A final row re-serves the same traffic with the LRU cache enabled.
    ``index_backend`` / ``index_options`` select the retrieval backend
    (``"exact"`` or ``"ivf"``); pure index-side throughput at catalogue
    scale is measured separately by :func:`run_ann_benchmark`.

    Returns one row per configuration with users/sec and the speedup relative
    to the *first* batch size (per-user serving with the default sizes).
    """
    from ..serve import ColdStartServer

    if not batch_sizes or any(size < 1 for size in batch_sizes):
        raise ValueError(f"batch_sizes must all be >= 1, got {batch_sizes!r}")
    profile = profile if profile is not None else get_profile()
    scenario = build_paper_scenario(scenario_name, profile)
    config = profile.cdrib.variant(epochs=min(profile.cdrib.epochs, train_epochs))
    trainer = train_cdrib(scenario, config)
    split = scenario.x_to_y

    rng = np.random.default_rng(profile.seed)
    num_source_users = scenario.domain(split.source).num_users
    users = rng.integers(0, num_source_users, size=total_users)

    rows: List[ROW] = []
    base_rate: Optional[float] = None
    for batch_size in batch_sizes:
        server = ColdStartServer(trainer.model, split.source, split.target,
                                 top_k=top_k, cache_capacity=0,
                                 index_backend=index_backend,
                                 index_options=index_options)
        server.recommend(users[:1])  # warm the normalised-adjacency caches
        start = time.perf_counter()
        for begin in range(0, total_users, batch_size):
            server.recommend(users[begin:begin + batch_size])
        elapsed = time.perf_counter() - start
        rate = total_users / elapsed if elapsed > 0 else float("inf")
        if base_rate is None:
            base_rate = rate
        rows.append({
            "scenario": scenario_name,
            "direction": f"{split.source}->{split.target}",
            "mode": "batched",
            "index": index_backend,
            "batch_size": batch_size,
            "users_served": total_users,
            "users_per_sec": rate,
            "speedup_vs_single": rate / base_rate,
        })

    # Cache demo: identical traffic, warm LRU — lookups instead of encodes.
    cached_server = ColdStartServer(trainer.model, split.source, split.target,
                                    top_k=top_k, cache_capacity=num_source_users,
                                    index_backend=index_backend,
                                    index_options=index_options)
    cached_server.recommend(users)  # populate
    start = time.perf_counter()
    cached_server.recommend(users)
    elapsed = time.perf_counter() - start
    rate = total_users / elapsed if elapsed > 0 else float("inf")
    rows.append({
        "scenario": scenario_name,
        "direction": f"{split.source}->{split.target}",
        "mode": "lru_cached",
        "index": index_backend,
        "batch_size": total_users,
        "users_served": total_users,
        "users_per_sec": rate,
        "speedup_vs_single": rate / base_rate if base_rate else float("inf"),
    })
    return rows


# --------------------------------------------------------------------------- #
# ANN retrieval benchmark (repro.serve.ann)
# --------------------------------------------------------------------------- #
def make_synthetic_catalog(num_items: int, dim: int, seed: int = 0,
                           num_centers: int = 512, noise: float = 0.25,
                           num_queries: int = 256
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded (catalog, queries) latents mimicking a trained model's geometry.

    Trained recommendation latents are not isotropic Gaussian noise — items
    concentrate around taste clusters and user queries point at those same
    clusters.  The generator therefore draws ``num_centers`` cluster centers
    and scatters items (and queries) around them; ``noise`` controls how
    blurred the cluster structure is (higher = harder for IVF).
    """
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((num_centers, dim))
    catalog = (centers[rng.integers(0, num_centers, size=num_items)]
               + noise * rng.standard_normal((num_items, dim)))
    queries = (centers[rng.integers(0, num_centers, size=num_queries)]
               + noise * rng.standard_normal((num_queries, dim)))
    return catalog, queries


def run_ann_benchmark(num_items: int = 200_000, dim: int = 64,
                      top_k: int = 10, num_queries: int = 256,
                      batch_size: int = 64, seed: int = 0,
                      num_clusters: Optional[int] = None,
                      nprobe: Optional[int] = None,
                      noise: float = 0.25, repeats: int = 3) -> List[ROW]:
    """Exact vs. IVF retrieval on a catalogue-scale synthetic item set.

    Builds both backends over the same ``num_items``-item synthetic catalog
    (:func:`make_synthetic_catalog`), serves the same query stream through
    each in batches of ``batch_size``, and reports per-backend build time,
    queries/sec, speedup over exact search and recall@``top_k`` against the
    exact lists (:func:`repro.eval.recall_against_exact`; 1.0 for the exact
    backend by construction).  Each backend's query sweep runs ``repeats``
    times and the rate comes from the *fastest* sweep — standard
    microbenchmark practice (ambient load only ever slows a sweep down),
    shared with :func:`run_training_benchmark`.  ``num_clusters`` /
    ``nprobe`` of ``None`` use the IVF defaults — the configuration gated by
    ``benchmarks/test_ann_retrieval.py`` (≥5x throughput, recall@10 ≥ 0.95
    at 200k+ items).
    """
    from ..eval import recall_against_exact
    from ..serve import make_index

    if num_items < 1 or num_queries < 1 or batch_size < 1 or top_k < 1:
        raise ValueError("num_items, num_queries, batch_size and top_k must "
                         "all be >= 1")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    catalog, queries = make_synthetic_catalog(num_items, dim, seed=seed,
                                              noise=noise,
                                              num_queries=num_queries)

    options: Dict[str, Dict[str, object]] = {"exact": {}, "ivf": {}}
    if num_clusters is not None:
        options["ivf"]["num_clusters"] = int(num_clusters)
    if nprobe is not None:
        options["ivf"]["nprobe"] = int(nprobe)

    rows: List[ROW] = []
    results: Dict[str, np.ndarray] = {}
    exact_rate: Optional[float] = None
    for backend in ("exact", "ivf"):
        start = time.perf_counter()
        index = make_index(catalog, backend=backend, **options[backend])
        build_seconds = time.perf_counter() - start
        index.top_k(queries[:batch_size], top_k)  # warm-up (BLAS threads)
        best = float("inf")
        for _ in range(repeats):
            item_lists = []
            start = time.perf_counter()
            for begin in range(0, num_queries, batch_size):
                items, _ = index.top_k(queries[begin:begin + batch_size], top_k)
                item_lists.append(items)
            best = min(best, time.perf_counter() - start)
        results[backend] = np.concatenate(item_lists)
        rate = num_queries / best if best > 0 else float("inf")
        if backend == "exact":
            exact_rate = rate
        rows.append({
            "backend": backend,
            "num_items": num_items,
            "dim": dim,
            "top_k": top_k,
            "num_clusters": getattr(index, "num_clusters", ""),
            "nprobe": getattr(index, "nprobe", ""),
            "build_seconds": build_seconds,
            "queries_per_sec": rate,
            "speedup_vs_exact": rate / exact_rate if exact_rate else float("inf"),
            "recall_at_k": recall_against_exact(results[backend],
                                                results["exact"]),
        })
    return rows


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def _result_row(scenario_name: str, method: str, split, result) -> ROW:
    metrics = result.metrics.as_dict()
    return {
        "scenario": scenario_name,
        "method": method,
        "direction": f"{split.source}->{split.target}",
        "target_domain": split.target,
        "MRR": metrics["MRR"],
        "NDCG@5": metrics["NDCG@5"],
        "NDCG@10": metrics["NDCG@10"],
        "HR@1": metrics["HR@1"],
        "HR@5": metrics["HR@5"],
        "HR@10": metrics["HR@10"],
        "records": metrics["records"],
    }


def format_rows(rows: List[ROW], columns: Optional[Sequence[str]] = None,
                float_digits: int = 2) -> str:
    """Render result rows as an aligned plain-text table (for bench output)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value):
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    widths = {c: max(len(str(c)), max(len(fmt(r.get(c, ""))) for r in rows)) for c in columns}
    lines = ["  ".join(str(c).ljust(widths[c]) for c in columns)]
    lines.append("  ".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append("  ".join(fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
