"""Command-line interface for the reproduction experiments.

Usage (after installation)::

    python -m repro.experiments.cli table2
    python -m repro.experiments.cli table3 --scenario music_movie --profile fast
    python -m repro.experiments.cli table7 --scenario phone_elec --output results/ablation.csv
    python -m repro.experiments.cli figure5 --scenario game_video --profile smoke
    python -m repro.experiments.cli serve --profile smoke --batch-sizes 1,64
    python -m repro.experiments.cli train --profile smoke --save runs/ckpt
    python -m repro.experiments.cli serve --checkpoint runs/ckpt --top-k 10
    python -m repro.experiments.cli serve --checkpoint runs/ckpt \
        --index ivf --nprobe 32 --index-dir runs/ivf-index
    python -m repro.experiments.cli ann --num-items 60000
    python -m repro.experiments.cli bench-serve --profile smoke \
        --batch-sizes 8,64 --workers 1,4 --bench-json runs/BENCH_serve.json
    repro suite --spec main-tables --jobs 4 --output runs/main
    repro suite --spec my_sweep.json --jobs 2

Each sub-command maps to one paper artefact (plus the ``serve`` throughput
demo for the :mod:`repro.serve` subsystem and the checkpointed ``train``
pipeline of :mod:`repro.io`), runs the corresponding experiment runner,
prints the resulting table and optionally writes it to CSV or JSON (decided
by the ``--output`` extension).  When ``--output`` is given, a companion
``<output>.manifest.json`` records what produced the file (experiment,
scenario, profile, row count, content checksum).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from . import runners
from .config import PROFILES, get_profile
from .reporting import save_rows_csv, save_rows_json, save_run_manifest

EXPERIMENTS: Dict[str, str] = {
    "table2": "Table II — dataset statistics of every scenario",
    "table3": "Tables III-VI — main comparison on one scenario",
    "table7": "Table VII — ablation study",
    "table8": "Table VIII — overlap-ratio robustness",
    "table9": "Table IX — cold-start interaction-count groups",
    "figure5": "Figure 5 — Lagrangian multiplier sweep",
    "figure6": "Figure 6 — VBGE layer-count sweep",
    "serve": "Serving demo — batched cold-start throughput (repro.serve), "
             "or top-K lists from a saved artifact with --checkpoint; "
             "--index ivf serves through the approximate IVF index",
    "ann": "ANN retrieval benchmark — exact vs IVF top-K on a synthetic "
           "catalogue (recall + queries/sec; repro.serve.ann)",
    "bench-serve": "Concurrent serving load test — N closed-loop client "
                   "workers drive the thread-safe front-end "
                   "(repro.serve.frontend) and record p50/p90/p99 latency, "
                   "users/sec and cache hit rate per batch size x workers x "
                   "nprobe configuration; --bench-json writes the "
                   "BENCH_serve.json artifact",
    "train": "Train CDRIB with durable checkpoints (--save) and bit-exact "
             "resume (--resume)",
    "suite": "Declarative sweep over scenarios x models x seeds with parallel "
             "workers, per-job artifacts and aggregated mean±std tables "
             "(--spec, --jobs, --output DIR)",
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the CDRIB paper.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="which paper artefact to regenerate")
    parser.add_argument("--scenario", default="game_video",
                        help="scenario name (music_movie, phone_elec, cloth_sport, "
                             "game_video); the suite sub-command ignores this — "
                             "use the spec's scenarios axis")
    parser.add_argument("--profile", default=None, choices=sorted(PROFILES),
                        help="budget profile (default: REPRO_BENCH_PROFILE or 'fast')")
    parser.add_argument("--output", default=None,
                        help="optional path to write the rows to (.csv or .json); "
                             "for suite: the artifact directory "
                             "(default: suite_runs/<name>)")
    parser.add_argument("--no-savae", action="store_true",
                        help="skip the SA-VAE comparison in table8/table9 (faster)")
    parser.add_argument("--batch-sizes", default="1,32,256",
                        help="comma-separated request batch sizes (serve only)")
    parser.add_argument("--top-k", type=int, default=10,
                        help="recommendation list length (serve only)")
    parser.add_argument("--save", default=None, metavar="DIR",
                        help="write a final checkpoint to this directory (train only)")
    parser.add_argument("--resume", default=None, metavar="DIR",
                        help="resume bit-exactly from this checkpoint (train only)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="save last/best checkpoints here during training (train only)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="override the profile's epoch budget (train only)")
    parser.add_argument("--engine", default="fused",
                        choices=("fused", "subgraph", "reference"),
                        help="training engine (train only)")
    parser.add_argument("--checkpoint", default=None, metavar="DIR",
                        help="serve from this saved checkpoint instead of training "
                             "(serve only)")
    parser.add_argument("--num-users", type=int, default=8,
                        help="users to serve with --checkpoint (serve only)")
    parser.add_argument("--index", default="exact", choices=("exact", "ivf"),
                        dest="index_backend",
                        help="retrieval backend for serve: brute-force exact "
                             "search or the approximate IVF index (serve only)")
    parser.add_argument("--nprobe", type=int, default=None, metavar="N",
                        help="IVF cells probed per query; higher = better "
                             "recall, slower (serve/ann, --index ivf)")
    parser.add_argument("--index-dir", default=None, metavar="DIR",
                        help="load the serving index from this checksummed "
                             "artifact if it exists, else build and save it "
                             "there (serve --checkpoint only)")
    parser.add_argument("--num-items", type=int, default=200_000,
                        help="synthetic catalogue size for the ann benchmark "
                             "(ann only)")
    parser.add_argument("--workers", default="1,4",
                        help="comma-separated concurrent client worker counts "
                             "(bench-serve only)")
    parser.add_argument("--requests", type=int, default=256,
                        help="requests in the generated traffic stream "
                             "(bench-serve only)")
    parser.add_argument("--backends", default="exact,ivf",
                        help="comma-separated retrieval backends to sweep "
                             "(bench-serve only; exact and/or ivf)")
    parser.add_argument("--nprobes", default=None,
                        help="comma-separated IVF probe budgets to sweep "
                             "(bench-serve only; default: the backend's own "
                             "nprobe)")
    parser.add_argument("--bench-json", default=None, metavar="PATH",
                        help="write the BENCH_serve.json perf-trajectory "
                             "artifact here (bench-serve only)")
    parser.add_argument("--spec", default="main-tables",
                        help="suite spec: a built-in name or a JSON file path "
                             "(suite only)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel worker processes; results are "
                             "bit-identical to serial (suite only)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-run every job even if valid artifacts exist "
                             "(suite only)")
    return parser


def run_experiment(name: str, scenario: str, profile_name: Optional[str],
                   include_savae: bool = True,
                   batch_sizes: Optional[List[int]] = None,
                   top_k: int = 10,
                   save_path: Optional[str] = None,
                   resume_path: Optional[str] = None,
                   checkpoint_dir: Optional[str] = None,
                   epochs: Optional[int] = None,
                   engine: str = "fused",
                   checkpoint: Optional[str] = None,
                   num_users: int = 8,
                   index_backend: str = "exact",
                   nprobe: Optional[int] = None,
                   index_dir: Optional[str] = None,
                   num_items: int = 200_000,
                   workers: Optional[List[int]] = None,
                   requests: int = 256,
                   backends: Optional[List[str]] = None,
                   nprobes: Optional[List[int]] = None) -> List[dict]:
    """Dispatch one experiment by CLI name and return its result rows."""
    if name == "serve" and checkpoint is not None:
        # Artifact serving needs no profile: the checkpoint manifest's
        # provenance decides how the scenario is re-assembled.
        return runners.run_checkpoint_serving(checkpoint, top_k=top_k,
                                              num_users=num_users,
                                              index_backend=index_backend,
                                              nprobe=nprobe,
                                              index_dir=index_dir)
    if name == "ann":
        # Pure retrieval benchmark on synthetic latents; no profile either.
        return runners.run_ann_benchmark(num_items=num_items, top_k=top_k,
                                         nprobe=nprobe)
    profile = get_profile(profile_name)
    if name == "bench-serve":
        from .loadgen import run_loadgen_benchmark

        return run_loadgen_benchmark(
            scenario, batch_sizes=tuple(batch_sizes or (8, 64)),
            workers=tuple(workers or (1, 4)),
            nprobes=tuple(nprobes) if nprobes else (None,),
            backends=tuple(backends or ("exact", "ivf")),
            num_requests=requests, top_k=top_k, profile=profile,
        )
    if name == "train":
        return runners.run_training_job(
            scenario, profile=profile, epochs=epochs, engine=engine,
            save_path=save_path, resume_path=resume_path,
            checkpoint_dir=checkpoint_dir,
        )
    if name == "serve":
        return runners.run_serving_benchmark(
            scenario, batch_sizes=tuple(batch_sizes or (1, 32, 256)),
            top_k=top_k, profile=profile, index_backend=index_backend,
            index_options=({"nprobe": nprobe} if nprobe is not None
                           and index_backend == "ivf" else None),
        )
    if name == "table2":
        return runners.run_dataset_statistics(profile=profile)
    if name == "table3":
        return runners.run_main_comparison(scenario, profile=profile)
    if name == "table7":
        return runners.run_ablation(scenario, profile=profile)
    if name == "table8":
        return runners.run_overlap_ratio(scenario, profile=profile,
                                         compare_savae=include_savae)
    if name == "table9":
        return runners.run_interaction_groups(scenario, profile=profile,
                                              compare_savae=include_savae)
    if name == "figure5":
        return runners.run_beta_sweep(scenario, profile=profile)
    if name == "figure6":
        return runners.run_layer_sweep(scenario, profile=profile)
    raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")


def run_suite_command(spec_arg: str, output: Optional[str], jobs: int = 1,
                      resume: bool = True,
                      profile_override: Optional[str] = None,
                      epochs_override: Optional[int] = None) -> int:
    """Run the ``suite`` sub-command: execute a spec and render its tables.

    ``--profile`` / ``--epochs`` override the spec's corresponding fields
    (handy for running a built-in spec at another budget); the overridden
    spec re-validates and hashes as its own resume identity.  Writes per-job
    raw rows and the aggregated mean±std table (CSV and Markdown) under
    ``<output>/tables/``, next to the per-job artifacts and the
    ``suite_manifest.json`` that :func:`~repro.experiments.suite.run_suite`
    maintains.
    """
    import dataclasses

    from .reporting import save_rows_markdown
    from .suite import load_suite_spec, run_suite

    spec = load_suite_spec(spec_arg)
    overrides = {}
    if profile_override is not None:
        overrides["profile"] = profile_override
    if epochs_override is not None:
        overrides["epochs"] = epochs_override
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
        spec.validate()
        print(f"spec overrides from CLI flags: {overrides}")
    output_dir = output or os.path.join("suite_runs", spec.name)
    print(f"suite {spec.name!r}: {len(spec.scenarios)} scenario(s) x "
          f"{len(spec.models)} model(s) x {len(spec.seeds)} seed(s), "
          f"profile {spec.profile!r}, {jobs} worker(s)")
    result = run_suite(spec, output_dir, jobs=jobs, resume=resume)
    if result.skipped:
        print(f"resumed from partial output: {result.skipped} job(s) skipped")

    aggregated = result.aggregate()
    display_columns = ["scenario", "direction", "method", "MRR", "NDCG@10",
                       "HR@10", "seeds", "sig"]
    print()
    print(runners.format_rows(aggregated, columns=display_columns))
    print("\n(* = best model significantly better than the runner-up, "
          "paired t-test on reciprocal ranks, p < 0.05)")
    ann_rows = result.ann_rows()
    if ann_rows:
        print("\nANN serving smoke (spec.ann_check — IVF recall vs exact "
              "retrieval per trained CDRIB job):")
        print(runners.format_rows(ann_rows, columns=[
            "scenario", "model", "seed", "direction", "num_items",
            "num_clusters", "nprobe", "k", "recall_vs_exact"]))

    tables_dir = os.path.join(output_dir, "tables")
    per_job = save_rows_csv(result.rows(), os.path.join(tables_dir, "per_job.csv"))
    agg_csv = save_rows_csv(aggregated, os.path.join(tables_dir, "aggregate.csv"))
    agg_md = save_rows_markdown(
        aggregated, os.path.join(tables_dir, "aggregate.md"),
        columns=display_columns,
        title=f"Suite {spec.name} — {spec.description or 'aggregated results'}")
    for path in (per_job, agg_csv, agg_md):
        save_run_manifest(path, {
            "experiment": "suite",
            "suite": spec.name,
            "spec_sha256": result.spec_sha256,
            "rows": len(aggregated if path != per_job else result.rows()),
        })
    print(f"\nwrote {per_job}, {agg_csv} and {agg_md} "
          f"(manifest: {os.path.join(output_dir, 'suite_manifest.json')})")
    return 0


def save_rows(rows: List[dict], path: str) -> str:
    """Write rows to ``path``, choosing the format from the file extension."""
    if path.endswith(".json"):
        return save_rows_json(rows, path)
    if path.endswith(".csv"):
        return save_rows_csv(rows, path)
    raise ValueError(f"unsupported output extension for {path!r} (use .csv or .json)")


def parse_int_list(value: str, flag: str, parser: argparse.ArgumentParser
                   ) -> List[int]:
    """Parse a comma-separated list of positive integers for ``flag``."""
    try:
        numbers = [int(piece) for piece in value.split(",") if piece.strip()]
    except ValueError:
        parser.error(f"{flag} must be comma-separated integers, got {value!r}")
    if not numbers or any(number < 1 for number in numbers):
        parser.error(f"{flag} must all be >= 1, got {value!r}")
    return numbers


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    batch_sizes = parse_int_list(args.batch_sizes, "--batch-sizes", parser)
    workers = parse_int_list(args.workers, "--workers", parser)
    nprobes = (parse_int_list(args.nprobes, "--nprobes", parser)
               if args.nprobes is not None else None)
    backends = [piece.strip() for piece in args.backends.split(",")
                if piece.strip()]
    if not backends or any(backend not in ("exact", "ivf")
                           for backend in backends):
        parser.error(f"--backends must be a comma-separated subset of "
                     f"exact,ivf — got {args.backends!r}")
    if args.requests < 1:
        parser.error(f"--requests must be >= 1, got {args.requests}")
    if args.bench_json is not None and args.experiment != "bench-serve":
        parser.error("--bench-json only applies to the bench-serve experiment")
    if args.top_k < 1:
        parser.error(f"--top-k must be >= 1, got {args.top_k}")
    if args.epochs is not None and args.epochs < 1:
        parser.error(f"--epochs must be >= 1, got {args.epochs}")
    if args.num_users < 1:
        parser.error(f"--num-users must be >= 1, got {args.num_users}")
    if args.nprobe is not None and args.nprobe < 1:
        parser.error(f"--nprobe must be >= 1, got {args.nprobe}")
    if args.num_items < 1:
        parser.error(f"--num-items must be >= 1, got {args.num_items}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.experiment == "suite":
        # The suite writes a directory of artifacts, not a single rows file,
        # so it bypasses the generic --output handling below; --profile and
        # --epochs apply as spec overrides rather than being ignored.
        from .suite import SuiteSpecError

        try:
            return run_suite_command(args.spec, args.output, jobs=args.jobs,
                                     resume=not args.no_resume,
                                     profile_override=args.profile,
                                     epochs_override=args.epochs)
        except SuiteSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    rows = run_experiment(args.experiment, args.scenario, args.profile,
                          include_savae=not args.no_savae,
                          batch_sizes=batch_sizes, top_k=args.top_k,
                          save_path=args.save, resume_path=args.resume,
                          checkpoint_dir=args.checkpoint_dir,
                          epochs=args.epochs, engine=args.engine,
                          checkpoint=args.checkpoint, num_users=args.num_users,
                          index_backend=args.index_backend, nprobe=args.nprobe,
                          index_dir=args.index_dir, num_items=args.num_items,
                          workers=workers, requests=args.requests,
                          backends=backends, nprobes=nprobes)
    print(runners.format_rows(rows))
    if args.bench_json:
        from .loadgen import save_bench_serve

        artifact = save_bench_serve(rows, args.bench_json, config={
            "experiment": args.experiment,
            "scenario": args.scenario,
            "profile": get_profile(args.profile).name,
            "batch_sizes": batch_sizes,
            "workers": workers,
            "backends": backends,
            "nprobes": nprobes,
            "requests": args.requests,
            "top_k": args.top_k,
        })
        print(f"\nwrote BENCH_serve artifact to {artifact}")
    if args.save:
        print(f"\nsaved checkpoint to {args.save}")
    if args.output:
        written = save_rows(rows, args.output)
        manifest = save_run_manifest(written, {
            "experiment": args.experiment,
            "scenario": args.scenario,
            # Resolve the profile the run actually used (REPRO_BENCH_PROFILE
            # or the 'fast' default when --profile was omitted) so archived
            # rows stay attributable; with --checkpoint the scenario/profile
            # of record come from the artifact's own manifest instead.
            "profile": get_profile(args.profile).name,
            "rows": len(rows),
            "checkpoint": args.checkpoint or args.save,
        })
        print(f"\nwrote {len(rows)} rows to {written} (manifest: {manifest})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
