"""Experiment configuration and runners for every table / figure in the paper."""

from .config import PROFILES, ExperimentProfile, get_profile
from .reporting import (
    load_rows_csv,
    load_rows_json,
    save_rows_csv,
    save_rows_json,
    summarize_by,
)
from .runners import (
    build_paper_scenario,
    format_rows,
    make_evaluator,
    run_ablation,
    run_beta_sweep,
    run_dataset_statistics,
    run_interaction_groups,
    run_layer_sweep,
    run_main_comparison,
    run_overlap_ratio,
    run_serving_benchmark,
    run_training_benchmark,
    train_cdrib,
)

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "build_paper_scenario",
    "make_evaluator",
    "train_cdrib",
    "run_dataset_statistics",
    "run_main_comparison",
    "run_ablation",
    "run_overlap_ratio",
    "run_interaction_groups",
    "run_beta_sweep",
    "run_layer_sweep",
    "run_serving_benchmark",
    "run_training_benchmark",
    "format_rows",
    "save_rows_json",
    "save_rows_csv",
    "load_rows_json",
    "load_rows_csv",
    "summarize_by",
]
