#!/usr/bin/env python3
"""Documentation linter (CI gate): docstrings + markdown code blocks.

Two checks, both exiting 1 on any problem:

**Docstring lint.**  Every public module under the target package
directories must carry a module docstring, and every public class /
function / method defined there must carry one too ("public" = the name
does not start with an underscore).  The default targets are the public
subsystems — ``repro.serve``, ``repro.io``, ``repro.experiments``,
``repro.eval`` and ``repro.graph``.

**Markdown code-block lint.**  Every fenced code block tagged ``python`` or
``bash`` in ``docs/*.md`` and ``README.md`` must reference things that
exist: dotted ``repro.*`` module paths and imported names must resolve
under ``src/``, ``python -m repro...`` module paths must exist, repo file
paths (``examples/...``, ``benchmarks/...``) must exist, and CLI
sub-commands / ``--flags`` on ``repro`` CLI lines must appear in the CLI
source — so documentation examples cannot silently rot when code moves.

Usage::

    python tools/lint_docs.py                 # everything (CI default)
    python tools/lint_docs.py src/repro/serve # docstrings of one package
    python tools/lint_docs.py docs/SERVING.md # one markdown file
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

DEFAULT_TARGETS = [
    "src/repro/serve",
    "src/repro/io",
    "src/repro/experiments",
    "src/repro/eval",
    "src/repro/graph",
]

#: Markdown files whose code blocks are linted by default.
DEFAULT_DOCS = ["README.md", "docs"]

#: Where dotted ``repro.*`` references resolve.
SRC_ROOT = "src"

#: The CLI source that must mention every sub-command / flag used in docs.
CLI_SOURCE = "src/repro/experiments/cli.py"

_CODE_BLOCK_RE = re.compile(r"^```(python|bash)\s*$(.*?)^```\s*$",
                            re.MULTILINE | re.DOTALL)
_MODULE_REF_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_IMPORT_RE = re.compile(
    r"^\s*from\s+(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)*)\s+import\s+([^(#\n]+)$",
    re.MULTILINE)
_REPO_PATH_RE = re.compile(
    r"\b(?:examples|benchmarks|tests|tools|docs|src)/[\w./-]+")
_FLAG_RE = re.compile(r"(?<![\w-])(--[a-z][\w-]*)")


# --------------------------------------------------------------------------- #
# Docstring lint
# --------------------------------------------------------------------------- #
def iter_public_defs(tree: ast.Module):
    """Yield (name, node) for public top-level and class-level definitions."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not child.name.startswith("_"):
                            yield f"{node.name}.{child.name}", child


def lint_file(path: Path) -> list:
    """Return a list of human-readable problems found in one module."""
    problems = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}: missing module docstring")
    for name, node in iter_public_defs(tree):
        if ast.get_docstring(node) is None:
            problems.append(f"{path}:{node.lineno}: missing docstring on {name!r}")
    return problems


# --------------------------------------------------------------------------- #
# Markdown code-block lint
# --------------------------------------------------------------------------- #
def _resolve_module_prefix(parts, root: Path):
    """Walk dotted parts down ``root``; return (resolved_dir_or_file, rest).

    ``parts`` starts with ``"repro"``.  Packages resolve as directories,
    modules as ``<name>.py``; the first part that is neither is returned
    with everything after it as the unresolved (symbol) remainder.
    """
    location = root / SRC_ROOT
    for position, part in enumerate(parts):
        if (location / part).is_dir():
            location = location / part
            continue
        if (location / f"{part}.py").is_file():
            return location / f"{part}.py", parts[position + 1:]
        return location, parts[position:]
    return location, []


def _symbol_defined_under(symbol: str, location: Path) -> bool:
    """Whether ``symbol`` appears as a word in a module file or package."""
    if location.is_file():
        files = [location]
    else:
        files = sorted(location.glob("*.py"))
    pattern = re.compile(rf"\b{re.escape(symbol)}\b")
    return any(pattern.search(f.read_text(encoding="utf-8")) for f in files)


def check_module_reference(ref: str, root: Path):
    """Validate one dotted ``repro.*`` reference; return a problem or None."""
    parts = ref.split(".")
    location, rest = _resolve_module_prefix(parts, root)
    if location == root / SRC_ROOT / "repro" and rest and rest[0] != "repro":
        # The walk never left src/repro's parent: broken first component.
        return f"module path {ref!r} does not resolve under {SRC_ROOT}/"
    if not location.exists():
        return f"module path {ref!r} does not resolve under {SRC_ROOT}/"
    if rest:
        # Only the first unresolved component needs to exist as a symbol —
        # deeper attributes (methods of a class etc.) are out of scope for
        # a "simple existence check".
        if not _symbol_defined_under(rest[0], location):
            return (f"{ref!r}: name {rest[0]!r} not found in "
                    f"{location.relative_to(root)}")
    return None


def _split_import_names(raw: str):
    for piece in raw.split(","):
        name = piece.strip().split(" as ")[0].strip()
        if name and name != "*" and re.fullmatch(r"[A-Za-z_]\w*", name):
            yield name


def _lint_python_block(block: str, root: Path):
    problems = []
    for ref in sorted(set(_MODULE_REF_RE.findall(block))):
        problem = check_module_reference(ref, root)
        if problem:
            problems.append(problem)
    for module, names in _IMPORT_RE.findall(block):
        location, rest = _resolve_module_prefix(module.split("."), root)
        if rest or not location.exists():
            continue  # already reported by the module-path check above
        for name in _split_import_names(names):
            if not _symbol_defined_under(name, location):
                problems.append(f"import {name!r} not found in module "
                                f"{module!r}")
    return problems


def _strip_env_prefix(tokens):
    while tokens and re.fullmatch(r"[A-Z_][A-Z0-9_]*=\S*", tokens[0]):
        tokens = tokens[1:]
    return tokens


def _lint_bash_block(block: str, root: Path, cli_source: str):
    problems = []
    # Join backslash continuations so a wrapped CLI invocation is one line.
    lines = re.sub(r"\\\s*\n", " ", block).splitlines()
    for line in lines:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        for match in re.finditer(r"python\s+-m\s+(repro(?:\.\w+)*)", line):
            location, rest = _resolve_module_prefix(match.group(1).split("."), root)
            if rest or not location.exists():
                problems.append(f"python -m target {match.group(1)!r} does "
                                f"not resolve under {SRC_ROOT}/")
        for path_ref in _REPO_PATH_RE.findall(line):
            if not (root / path_ref).exists():
                problems.append(f"path {path_ref!r} does not exist")
        tokens = _strip_env_prefix(line.split())
        is_cli_line = ("repro.experiments.cli" in line
                       or (tokens and tokens[0] == "repro"))
        if not is_cli_line:
            continue
        for flag in _FLAG_RE.findall(line):
            if f'"{flag}"' not in cli_source:
                problems.append(f"CLI flag {flag!r} not defined in {CLI_SOURCE}")
        # First positional token after the CLI entry is the sub-command.
        if "repro.experiments.cli" in line:
            after = line.split("repro.experiments.cli", 1)[1].split()
        else:
            after = tokens[1:]
        subcommand = next((tok for tok in after if not tok.startswith("-")), None)
        if subcommand and re.fullmatch(r"[a-z][a-z0-9_-]*", subcommand):
            if f'"{subcommand}"' not in cli_source:
                problems.append(f"CLI sub-command {subcommand!r} not defined "
                                f"in {CLI_SOURCE}")
    return problems


def lint_markdown_file(path: Path, root: Path = Path(".")) -> list:
    """Check every python/bash code block of one markdown file."""
    cli_path = root / CLI_SOURCE
    cli_source = cli_path.read_text(encoding="utf-8") if cli_path.is_file() else ""
    text = path.read_text(encoding="utf-8")
    problems = []
    for match in _CODE_BLOCK_RE.finditer(text):
        language, block = match.group(1), match.group(2)
        lineno = text.count("\n", 0, match.start()) + 1
        if language == "python":
            found = _lint_python_block(block, root)
        else:
            found = _lint_bash_block(block, root, cli_source)
        problems.extend(f"{path}:{lineno}: {problem}" for problem in found)
    return problems


def iter_markdown_targets(targets, root: Path):
    """Expand markdown targets: files stay, directories glob ``*.md``."""
    for target in targets:
        path = root / target
        if path.is_dir():
            yield from sorted(path.glob("*.md"))
        elif path.suffix == ".md":
            yield path


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def main(argv: list) -> int:
    """Lint the given targets; with none, lint everything (the CI default).

    Without ``--docs``: arguments ending in ``.md`` get the markdown
    code-block check, other arguments get the docstring check.  With
    ``--docs``: every argument (file or directory) is a markdown target,
    defaulting to ``DEFAULT_DOCS`` when none are given.  No arguments at
    all runs both checks over ``DEFAULT_TARGETS`` and ``DEFAULT_DOCS``.
    """
    args = [arg for arg in argv if arg != "--docs"]
    if not argv:
        module_targets = [Path(t) for t in DEFAULT_TARGETS]
        doc_targets = list(DEFAULT_DOCS)
    elif "--docs" in argv:
        module_targets = []
        doc_targets = args or list(DEFAULT_DOCS)
    else:
        module_targets = [Path(a) for a in args if not a.endswith(".md")]
        doc_targets = [a for a in args if a.endswith(".md")]

    problems = []
    checked = 0
    for target in module_targets:
        if not target.exists():
            problems.append(f"{target}: target directory does not exist")
            continue
        for path in sorted(target.rglob("*.py")):
            if path.name.startswith("_") and path.name != "__init__.py":
                continue
            checked += 1
            problems.extend(lint_file(path))
    for path in iter_markdown_targets(doc_targets, Path(".")):
        checked += 1
        problems.extend(lint_markdown_file(path, root=Path(".")))
    for problem in problems:
        print(problem)
    print(f"lint_docs: checked {checked} file(s), {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
