#!/usr/bin/env python3
"""Docstring linter for public modules (CI gate).

Fails (exit code 1) if any public module under the given package directories
lacks a module docstring, or if a public class / function / method defined
there lacks a docstring.  "Public" means the name does not start with an
underscore.  Used by the CI workflow to keep the public subsystems —
``repro.serve``, ``repro.io``, ``repro.experiments`` and ``repro.eval`` —
fully documented; run manually with::

    python tools/lint_docs.py [dir ...]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_TARGETS = [
    "src/repro/serve",
    "src/repro/io",
    "src/repro/experiments",
    "src/repro/eval",
]


def iter_public_defs(tree: ast.Module):
    """Yield (name, node) for public top-level and class-level definitions."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node.name, node
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not child.name.startswith("_"):
                            yield f"{node.name}.{child.name}", child


def lint_file(path: Path) -> list:
    """Return a list of human-readable problems found in one module."""
    problems = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}: missing module docstring")
    for name, node in iter_public_defs(tree):
        if ast.get_docstring(node) is None:
            problems.append(f"{path}:{node.lineno}: missing docstring on {name!r}")
    return problems


def main(argv: list) -> int:
    """Lint every ``*.py`` file under the target directories."""
    targets = [Path(arg) for arg in argv] or [Path(t) for t in DEFAULT_TARGETS]
    problems = []
    checked = 0
    for target in targets:
        if not target.exists():
            problems.append(f"{target}: target directory does not exist")
            continue
        for path in sorted(target.rglob("*.py")):
            if path.name.startswith("_") and path.name != "__init__.py":
                continue
            checked += 1
            problems.extend(lint_file(path))
    for problem in problems:
        print(problem)
    print(f"lint_docs: checked {checked} module(s), {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
